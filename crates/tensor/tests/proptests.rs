//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use sparseinfer_tensor::gemv::{gemv, gemv_transposed};
use sparseinfer_tensor::sign::{count_negative_products, PackedSignMatrix, SignPack};
use sparseinfer_tensor::{F16, Matrix, QuantizedMatrix, Vector};

fn finite_f32() -> impl Strategy<Value = f32> {
    // Values in a range representable in f16 without overflow, excluding 0 so
    // sign comparisons are unambiguous.
    prop_oneof![(-1000.0f32..-1e-3), (1e-3f32..1000.0)]
}

proptest! {
    #[test]
    fn sign_pack_roundtrips_bits(values in prop::collection::vec(finite_f32(), 1..200)) {
        let pack = SignPack::pack(&values);
        prop_assert_eq!(pack.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(pack.bit(i), v.is_sign_negative());
        }
    }

    #[test]
    fn xor_popcount_equals_scalar_count(
        pair in prop::collection::vec((finite_f32(), finite_f32()), 1..300)
    ) {
        let a: Vec<f32> = pair.iter().map(|(x, _)| *x).collect();
        let b: Vec<f32> = pair.iter().map(|(_, y)| *y).collect();
        let pa = SignPack::pack(&a);
        let pb = SignPack::pack(&b);
        prop_assert_eq!(pa.xor_popcount(&pb), count_negative_products(&a, &b));
    }

    #[test]
    fn f16_roundtrip_preserves_sign_and_bounds_error(v in finite_f32()) {
        let h = F16::from_f32(v);
        let back = h.to_f32();
        prop_assert_eq!(h.is_sign_negative(), v.is_sign_negative());
        // f16 has 11 significand bits: relative error bounded by 2^-11.
        let rel = ((back - v) / v).abs();
        prop_assert!(rel <= 1.0 / 2048.0, "v={v} back={back} rel={rel}");
    }

    #[test]
    fn int8_quantization_preserves_nonunderflow_signs(
        rows in 1usize..6, cols in 1usize..40,
        seed in 0u64..1000
    ) {
        let mut rng = sparseinfer_tensor::Prng::seed(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let q = QuantizedMatrix::quantize(&m);
        for r in 0..rows {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    prop_assert_eq!(*qv < 0, m[(r, c)] < 0.0);
                }
            }
        }
    }

    #[test]
    fn gemv_is_linear_in_x(
        seed in 0u64..500, rows in 1usize..8, cols in 1usize..32, scale in -4.0f32..4.0
    ) {
        let mut rng = sparseinfer_tensor::Prng::seed(seed);
        let w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(cols, |_| rng.normal(0.0, 1.0) as f32);
        let mut sx = x.clone();
        sx.scale(scale);
        let y1 = gemv(&w, &sx);
        let mut y2 = gemv(&w, &x);
        y2.scale(scale);
        for (a, b) in y1.iter().zip(y2.iter()) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn transposed_gemv_agrees_with_materialized_transpose(
        seed in 0u64..500, rows in 1usize..8, cols in 1usize..16
    ) {
        let mut rng = sparseinfer_tensor::Prng::seed(seed);
        let w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(rows, |_| rng.normal(0.0, 1.0) as f32);
        let a = gemv_transposed(&w, &x);
        let b = gemv(&w.transposed(), &x);
        for (u, v) in a.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-4);
        }
    }

    #[test]
    fn packed_matrix_equals_per_row_packs(
        seed in 0u64..500, rows in 1usize..6, cols in 1usize..80
    ) {
        let mut rng = sparseinfer_tensor::Prng::seed(seed);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let pm = PackedSignMatrix::pack(&m);
        for r in 0..rows {
            let expected = SignPack::pack(m.row(r));
            prop_assert_eq!(pm.row(r), expected.words());
        }
    }
}
