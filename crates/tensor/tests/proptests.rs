//! Property-style tests for the tensor substrate, driven by seeded
//! pseudo-random sweeps (the workspace builds offline, so the `proptest`
//! crate is replaced by explicit [`Prng`] loops over the same properties).

use sparseinfer_tensor::gemv::{gemv, gemv_transposed};
use sparseinfer_tensor::sign::{count_negative_products, PackedSignMatrix, SignPack};
use sparseinfer_tensor::{Matrix, Prng, QuantizedMatrix, Vector, F16};

/// A value in a range representable in f16 without overflow, excluding a
/// band around 0 so sign comparisons are unambiguous.
fn finite_f32(rng: &mut Prng) -> f32 {
    let magnitude = (1e-3 + rng.uniform() * 999.0) as f32;
    if rng.flip(0.5) {
        -magnitude
    } else {
        magnitude
    }
}

#[test]
fn sign_pack_roundtrips_bits() {
    let mut rng = Prng::seed(101);
    for trial in 0..64 {
        let len = 1 + rng.below(199);
        let values: Vec<f32> = (0..len).map(|_| finite_f32(&mut rng)).collect();
        let pack = SignPack::pack(&values);
        assert_eq!(pack.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            assert_eq!(pack.bit(i), v.is_sign_negative(), "trial {trial} bit {i}");
        }
    }
}

#[test]
fn xor_popcount_equals_scalar_count() {
    let mut rng = Prng::seed(102);
    for trial in 0..64 {
        let len = 1 + rng.below(299);
        let a: Vec<f32> = (0..len).map(|_| finite_f32(&mut rng)).collect();
        let b: Vec<f32> = (0..len).map(|_| finite_f32(&mut rng)).collect();
        let pa = SignPack::pack(&a);
        let pb = SignPack::pack(&b);
        assert_eq!(
            pa.xor_popcount(&pb),
            count_negative_products(&a, &b),
            "trial {trial} len {len}"
        );
    }
}

#[test]
fn f16_roundtrip_preserves_sign_and_bounds_error() {
    let mut rng = Prng::seed(103);
    for _ in 0..512 {
        let v = finite_f32(&mut rng);
        let h = F16::from_f32(v);
        let back = h.to_f32();
        assert_eq!(h.is_sign_negative(), v.is_sign_negative());
        // f16 has 11 significand bits: relative error bounded by 2^-11.
        let rel = ((back - v) / v).abs();
        assert!(rel <= 1.0 / 2048.0, "v={v} back={back} rel={rel}");
    }
}

#[test]
fn int8_quantization_preserves_nonunderflow_signs() {
    for seed in 0..48u64 {
        let mut rng = Prng::seed(seed);
        let rows = 1 + rng.below(5);
        let cols = 1 + rng.below(39);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let q = QuantizedMatrix::quantize(&m);
        for r in 0..rows {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    assert_eq!(*qv < 0, m[(r, c)] < 0.0, "seed {seed} ({r},{c})");
                }
            }
        }
    }
}

#[test]
fn gemv_is_linear_in_x() {
    for seed in 0..48u64 {
        let mut rng = Prng::seed(seed);
        let rows = 1 + rng.below(7);
        let cols = 1 + rng.below(31);
        let scale = (rng.uniform() * 8.0 - 4.0) as f32;
        let w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(cols, |_| rng.normal(0.0, 1.0) as f32);
        let mut sx = x.clone();
        sx.scale(scale);
        let y1 = gemv(&w, &sx);
        let mut y2 = gemv(&w, &x);
        y2.scale(scale);
        for (a, b) in y1.iter().zip(y2.iter()) {
            assert!(
                (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                "seed {seed}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn transposed_gemv_agrees_with_materialized_transpose() {
    for seed in 0..48u64 {
        let mut rng = Prng::seed(seed ^ 0xA5A5);
        let rows = 1 + rng.below(7);
        let cols = 1 + rng.below(15);
        let w = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(rows, |_| rng.normal(0.0, 1.0) as f32);
        let a = gemv_transposed(&w, &x);
        let b = gemv(&w.transposed(), &x);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-4, "seed {seed}: {u} vs {v}");
        }
    }
}

#[test]
fn packed_matrix_equals_per_row_packs() {
    for seed in 0..48u64 {
        let mut rng = Prng::seed(seed ^ 0x5A5A);
        let rows = 1 + rng.below(5);
        let cols = 1 + rng.below(79);
        let m = Matrix::from_fn(rows, cols, |_, _| rng.normal(0.0, 1.0) as f32);
        let pm = PackedSignMatrix::pack(&m);
        for r in 0..rows {
            let expected = SignPack::pack(m.row(r));
            assert_eq!(pm.row(r), expected.words(), "seed {seed} row {r}");
        }
    }
}
