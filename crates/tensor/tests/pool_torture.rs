//! Torture coverage for the persistent parked-worker pool: lifecycle,
//! reuse, panic containment and degenerate inputs. These are the scenarios
//! a per-call scoped-spawn design got for free (every call had fresh
//! threads) and a parked design must prove it still handles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use sparseinfer_tensor::{ParallelOptions, ThreadPool};

#[test]
fn drop_while_parked_shuts_down_cleanly() {
    // Workers that never received any work must still park out and join.
    for threads in [2, 4, 8] {
        let pool = ThreadPool::new(ParallelOptions::threads(threads));
        drop(pool); // must not hang or leak
    }
}

#[test]
fn drop_after_use_joins_workers() {
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    let mut out = vec![0.0f32; 4096];
    pool.run_chunks(&mut out, 1, |off, chunk| {
        for (i, v) in chunk.iter_mut().enumerate() {
            *v = (off + i) as f32;
        }
    });
    assert_eq!(out[4095], 4095.0);
    drop(pool);
}

#[test]
fn clone_keeps_workers_alive_until_the_last_handle_drops() {
    let pool = ThreadPool::new(ParallelOptions::threads(2));
    let clone = pool.clone();
    drop(pool);
    // The clone still dispatches to the shared workers.
    let mut out = vec![0.0f32; 1024];
    clone.run_chunks(&mut out, 1, |_, chunk| chunk.fill(3.0));
    assert!(out.iter().all(|v| *v == 3.0));
}

#[test]
fn many_consecutive_dispatches_reuse_the_same_workers() {
    // 500 back-to-back dispatches through one pool: every one must see
    // freshly parked workers (no lost wakeups, no stale tasks).
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    let mut out = vec![0.0f32; 2048];
    for round in 0..500usize {
        let bias = round as f32;
        pool.run_chunks(&mut out, 1, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (off + i) as f32 + bias;
            }
        });
        assert_eq!(out[0], bias, "round {round}");
        assert_eq!(out[2047], 2047.0 + bias, "round {round}");
    }
}

#[test]
fn alternating_run_chunks_and_run_tasks_share_the_pool() {
    let pool = ThreadPool::new(ParallelOptions::threads(3));
    let mut floats = vec![0.0f32; 999];
    let mut counters = vec![0usize; 17];
    for round in 1..=50usize {
        pool.run_chunks(&mut floats, 1, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ((off + i) * round) as f32;
            }
        });
        pool.run_tasks(&mut counters, |i, c| *c += i);
        assert_eq!(floats[998], (998 * round) as f32);
    }
    for (i, c) in counters.iter().enumerate() {
        assert_eq!(*c, i * 50);
    }
}

#[test]
fn worker_panic_propagates_without_deadlocking_peers() {
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    let mut out = vec![0.0f32; 4096];
    // Chunk 0 always runs on a parked worker (the caller takes the last
    // chunk), so this exercises the worker-side panic path.
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.run_chunks(&mut out, 1, |off, _chunk| {
            if off == 0 {
                panic!("kernel exploded in a worker");
            }
        });
    }));
    assert!(result.is_err(), "the worker panic must reach the caller");

    // The pool survives: peers were not deadlocked mid-dispatch and the
    // next dispatch runs normally on the same workers.
    pool.run_chunks(&mut out, 1, |off, chunk| {
        for (i, v) in chunk.iter_mut().enumerate() {
            *v = (off + i) as f32;
        }
    });
    assert_eq!(out[4095], 4095.0);
}

#[test]
fn caller_chunk_panic_still_waits_for_workers() {
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    let touched = AtomicUsize::new(0);
    let mut out = vec![0.0f32; 4096];
    let last_offset = 3072; // the caller's chunk at 4 workers
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.run_chunks(&mut out, 1, |off, chunk| {
            touched.fetch_add(chunk.len(), Ordering::SeqCst);
            if off == last_offset {
                panic!("kernel exploded on the calling thread");
            }
        });
    }));
    assert!(result.is_err());
    // Every worker chunk completed before the panic unwound out of the
    // dispatch — the borrow behind the chunks stayed valid throughout.
    assert_eq!(touched.load(Ordering::SeqCst), 4096);
    // And the pool remains usable.
    pool.run_tasks(&mut [1usize, 2, 3][..], |_, v| *v += 1);
}

#[test]
fn run_tasks_on_an_empty_slice_is_a_no_op() {
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    let mut empty: [u64; 0] = [];
    pool.run_tasks(&mut empty, |_, _| panic!("must never be called"));
    // `run_chunks` degenerates to one inline call over the (empty) slice:
    // nothing is dispatched to workers and nothing can be written.
    let calls = AtomicUsize::new(0);
    let mut out: Vec<f32> = Vec::new();
    pool.run_chunks(&mut out, 1, |off, chunk| {
        calls.fetch_add(1, Ordering::SeqCst);
        assert_eq!((off, chunk.len()), (0, 0));
    });
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn single_item_run_tasks_stays_inline() {
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    let caller = std::thread::current().id();
    let mut ids = vec![None; 1];
    pool.run_tasks(&mut ids, |_, id| *id = Some(std::thread::current().id()));
    assert_eq!(ids[0], Some(caller), "one item must not pay dispatch");
}

#[test]
fn concurrent_dispatch_from_two_threads_is_safe() {
    // Two threads sharing one pool handle: one wins the dispatch flag, the
    // other falls back to inline execution. Either way every element is
    // written exactly once with the correct value.
    let pool = ThreadPool::new(ParallelOptions::threads(4));
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let pool = pool.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    let mut out = vec![0.0f32; 1024];
                    pool.run_chunks(&mut out, 1, |off, chunk| {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = (off + i) as f32;
                        }
                    });
                    for (i, v) in out.iter().enumerate() {
                        assert_eq!(*v, i as f32);
                    }
                }
            });
        }
    });
}
