//! Software IEEE-754 binary16 ("half") emulation.
//!
//! The paper's GPU implementation stores weights in FP16; the training-free
//! predictor only ever consults the MSB, so it is *unchanged* by the FP16
//! representation (§IV-A: "as long as the sign bit, i.e., MSB, can be
//! extracted, it can be applied directly, regardless of the quantization
//! scheme"). This module provides a bit-exact f32↔f16 conversion used by the
//! quantization-robustness tests and by the memory accounting (2 bytes per
//! weight).

/// An IEEE-754 binary16 value stored as its raw bit pattern.
///
/// Conversions implement round-to-nearest-even, the hardware default.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::F16;
///
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// assert!(!h.is_sign_negative());
/// assert!(F16::from_f32(-0.0).is_sign_negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
            let m = if mantissa != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | m);
        }

        // Re-bias exponent: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Round mantissa from 23 to 10 bits (RNE).
            let mant = mantissa >> 13;
            let round_bits = mantissa & 0x1FFF;
            let halfway = 0x1000;
            let mut h = sign | (((unbiased + 15) as u16) << 10) | (mant as u16);
            if round_bits > halfway || (round_bits == halfway && (mant & 1) == 1) {
                h = h.wrapping_add(1); // may carry into exponent; that is correct RNE
            }
            return F16(h);
        }
        if unbiased >= -25 {
            // Subnormal range.
            let shift = (-14 - unbiased) as u32; // 0..=11
            let full = 0x0080_0000 | mantissa; // implicit leading 1
            let shifted = full >> (13 + shift);
            let round_bits = full & ((1u32 << (13 + shift)) - 1);
            let halfway = 1u32 << (13 + shift - 1);
            let mut h = sign | (shifted as u16);
            if round_bits > halfway || (round_bits == halfway && (shifted & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts back to `f32` (exact; every f16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mantissa = (self.0 & 0x03FF) as u32;
        let bits = if exp == 0x1F {
            // Inf / NaN
            sign | 0x7F80_0000 | (mantissa << 13)
        } else if exp == 0 {
            if mantissa == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize.
                let mut e = -1i32;
                let mut m = mantissa;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                // value = (1 + m/1024) * 2^(e - 13); rebias for f32.
                let exp32 = (e - 13 + 127) as u32;
                sign | (exp32 << 23) | (m << 13)
            }
        } else {
            let exp32 = exp + 127 - 15;
            sign | (exp32 << 23) | (mantissa << 13)
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Whether the sign bit (MSB) is set — the only bit the SparseInfer
    /// predictor ever reads.
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Converts a whole slice to f16, returning the raw half-precision buffer.
pub fn quantize_slice(values: &[f32]) -> Vec<F16> {
    values.iter().map(|v| F16::from_f32(*v)).collect()
}

/// Converts a half-precision buffer back to f32.
pub fn dequantize_slice(values: &[F16]) -> Vec<f32> {
    values.iter().map(|v| v.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for v in [-4.0f32, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0, 1024.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn signed_zero_preserved() {
        assert!(F16::from_f32(-0.0).is_sign_negative());
        assert!(!F16::from_f32(0.0).is_sign_negative());
        assert_eq!(F16::from_f32(-0.0).to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let h = F16::from_f32(1e9);
        assert_eq!(h.to_f32(), f32::INFINITY);
        let h = F16::from_f32(-1e9);
        assert_eq!(h.to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_round_trips_as_nan() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn tiny_values_flush_toward_signed_zero() {
        let h = F16::from_f32(-1e-12);
        assert!(h.is_sign_negative());
        assert_eq!(h.to_f32(), -0.0);
    }

    #[test]
    fn subnormals_round_trip_with_bounded_error() {
        // Smallest positive f16 subnormal is 2^-24 ≈ 5.96e-8.
        let v = 3.0e-7f32;
        let back = F16::from_f32(v).to_f32();
        assert!((back - v).abs() < 6e-8, "got {back}");
    }

    #[test]
    fn rne_rounds_to_even_mantissa() {
        // 2049 is exactly halfway between representable 2048 and 2050 in f16;
        // RNE must pick 2048 (even mantissa).
        assert_eq!(F16::from_f32(2049.0).to_f32(), 2048.0);
        // 2051 is halfway between 2050 and 2052; RNE picks 2052.
        assert_eq!(F16::from_f32(2051.0).to_f32(), 2052.0);
    }

    #[test]
    fn sign_bit_always_preserved_by_conversion() {
        // The predictor-correctness property: quantization never flips a sign.
        let mut v = -1.0e-30f32;
        for _ in 0..60 {
            let h = F16::from_f32(v);
            assert_eq!(h.is_sign_negative(), v.is_sign_negative());
            v *= 10.0;
        }
    }

    #[test]
    fn max_constant_is_65504() {
        assert_eq!(F16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn slice_helpers_round_trip() {
        let values = vec![0.25, -0.75, 3.0];
        let q = quantize_slice(&values);
        assert_eq!(dequantize_slice(&q), values);
    }
}
