//! Dense `f32` vector used for activations and hidden states.

/// A dense, heap-allocated `f32` vector.
///
/// `Vector` is the activation container used throughout the workspace: model
/// hidden states, gate/up projections, logits. It deliberately exposes its
/// storage as a slice so kernels can iterate without abstraction overhead.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::Vector;
///
/// let v = Vector::from_fn(4, |i| i as f32);
/// assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(v.dot(&v).unwrap(), 14.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a zero-filled vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector by evaluating `f` at every index.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f32) -> Self {
        Self {
            data: (0..len).map(f).collect(),
        }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Number of elements the buffer can hold without reallocating (memory
    /// accounting uses this, not `len`, to count retained heap).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Inner product with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::DimensionMismatch`](crate::ShapeError) if the
    /// lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f32, crate::ShapeError> {
        if self.len() != other.len() {
            return Err(crate::ShapeError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Element-wise (Hadamard) product, used for the gate application step of
    /// the gated MLP (`h3 = h1 ⊙ h2`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::DimensionMismatch`](crate::ShapeError) if the
    /// lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector, crate::ShapeError> {
        if self.len() != other.len() {
            return Err(crate::ShapeError::DimensionMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(Vector::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        ))
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; residual additions inside the model are
    /// structurally guaranteed to agree, so this is a programming error.
    pub fn add_assign(&mut self, other: &Vector) {
        assert_eq!(self.len(), other.len(), "vector add length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Resizes to `len`, filling any new tail elements with `value`. Does
    /// not allocate while `len` stays within the buffer's capacity — the
    /// property the workspace hot path relies on.
    pub fn resize(&mut self, len: usize, value: f32) {
        self.data.resize(len, value);
    }

    /// Shortens to `len` elements (no-op if already shorter). Never
    /// allocates or shrinks capacity.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Replaces the contents with a copy of `src`, resizing as needed (no
    /// allocation while `src.len()` fits the existing capacity).
    pub fn copy_from(&mut self, src: &[f32]) {
        self.data.clear();
        self.data.extend_from_slice(src);
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Fraction of elements that are exactly zero — the *activation sparsity*
    /// of this vector in the paper's sense.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| **v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Index of the maximum element (greedy decoding argmax). Ties resolve to
    /// the lowest index; an empty vector returns `None`.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, v) in self.data.iter().enumerate() {
            if *v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Iterates over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Self { data }
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f32> for Vector {
    fn extend<I: IntoIterator<Item = f32>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(5);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert!(v.as_slice().iter().all(|x| *x == 0.0));
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn dot_product_matches_manual_sum() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        let b = Vector::from_vec(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        assert!(matches!(
            a.dot(&b),
            Err(crate::ShapeError::DimensionMismatch {
                expected: 3,
                actual: 4
            })
        ));
    }

    #[test]
    fn hadamard_is_elementwise() {
        let a = Vector::from_vec(vec![1.0, -2.0, 0.0]);
        let b = Vector::from_vec(vec![3.0, 3.0, 9.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, -6.0, 0.0]);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let v = Vector::from_vec(vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(v.sparsity(), 0.5);
        assert_eq!(Vector::zeros(0).sparsity(), 0.0);
    }

    #[test]
    fn argmax_picks_first_maximum() {
        let v = Vector::from_vec(vec![1.0, 5.0, 5.0, 0.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Vector::from_vec(vec![1.0, 2.0]);
        a.add_assign(&Vector::from_vec(vec![3.0, 4.0]));
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn norm_is_euclidean() {
        let v = Vector::from_vec(vec![3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn resize_fill_copy_from_manage_length_in_place() {
        let mut v = Vector::from_vec(vec![1.0, 2.0]);
        v.resize(4, 9.0);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 9.0, 9.0]);
        v.truncate(3);
        assert_eq!(v.len(), 3);
        v.fill(0.5);
        assert_eq!(v.as_slice(), &[0.5, 0.5, 0.5]);
        v.copy_from(&[7.0]);
        assert_eq!(v.as_slice(), &[7.0]);
    }

    #[test]
    fn collect_and_extend() {
        let mut v: Vector = (0..3).map(|i| i as f32).collect();
        v.extend([9.0]);
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 9.0]);
    }
}
