//! Dense row-major `f32` matrix used for model weights.

use crate::{ShapeError, Vector};

/// A dense, row-major `f32` matrix.
///
/// In the SparseInfer setting a weight matrix `W ∈ R^{k×d}` is stored row-major
/// precisely because activation sparsity is exploited *per row*: if output
/// element `i` is predicted sparse, row `W_i` (one contiguous stripe of
/// memory) is never loaded. [`Matrix::row`] therefore returns a contiguous
/// slice, which is what the skip logic in the `sparse` crate operates on.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// assert_eq!(m[(0, 2)], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The contiguous slice holding row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Read-only view of the whole row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the whole row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the transposed matrix (allocates).
    ///
    /// The paper stores `W_down` transposed at model-load time so that output
    /// sparsity skips *rows* instead of columns (§IV-B4); this is the helper
    /// that performs that one-time transformation.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Iterates over rows as contiguous slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// Multiplies a row of this matrix with a vector (inner product).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::DimensionMismatch`] if `x.len() != self.cols()`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_dot(&self, r: usize, x: &Vector) -> Result<f32, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok(self
            .row(r)
            .iter()
            .zip(x.as_slice())
            .map(|(w, xi)| w * xi)
            .sum())
    }

    /// Total number of `f32` elements.
    pub fn element_count(&self) -> usize {
        self.data.len()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_vec_validates_buffer_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![0.0; 5]),
            Err(ShapeError::BadBuffer {
                rows: 2,
                cols: 2,
                len: 5
            })
        ));
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_dot_matches_manual() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let x = Vector::from_vec(vec![1.0, 2.0, 3.0]);
        // row 1 = [1, 2, 3]
        assert_eq!(m.row_dot(1, &x).unwrap(), 1.0 + 4.0 + 9.0);
    }

    #[test]
    fn row_dot_rejects_bad_shape() {
        let m = Matrix::zeros(2, 3);
        let x = Vector::zeros(2);
        assert!(m.row_dot(0, &x).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.row(2);
    }

    #[test]
    fn iter_rows_yields_every_row() {
        let m = Matrix::from_fn(3, 2, |r, _| r as f32);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[2.0, 2.0]);
    }

    #[test]
    fn index_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m[(1, 0)] = 7.0;
        assert_eq!(m.row(1), &[7.0, 0.0]);
    }
}
