//! Per-row symmetric INT8 quantization.
//!
//! A second quantization scheme (besides [`crate::f16`]) used to demonstrate
//! the paper's claim that the sign-bit predictor is robust to the storage
//! format: symmetric INT8 maps `w` to `round(w / scale)` with a per-row
//! `scale = max|w| / 127`, which preserves the sign of every element (up to
//! values that quantize to zero, which contribute nothing to the inner
//! product anyway).

use crate::gemv::{dot_q8, DOT_LANES, QUANT_BLOCK};
use crate::{sign::PackedSignMatrix, Matrix};

/// A matrix quantized to INT8 with one `f32` scale per row.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::{Matrix, QuantizedMatrix};
///
/// let m = Matrix::from_fn(2, 4, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5));
/// let q = QuantizedMatrix::quantize(&m);
/// let back = q.dequantize();
/// for r in 0..2 {
///     for c in 0..4 {
///         assert!((back[(r, c)] - m[(r, c)]).abs() < 0.05);
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    values: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` row by row with symmetric scaling.
    pub fn quantize(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut values = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for row in m.iter_rows() {
            let maxabs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
            scales.push(scale);
            for v in row {
                let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
                values.push(q);
            }
        }
        Self {
            rows,
            cols,
            values,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantized row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.values[r * self.cols..(r + 1) * self.cols]
    }

    /// Per-row scale factors.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the full-precision approximation.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.values[r * self.cols + c]) * self.scales[r]
        })
    }

    /// Packs the sign bits of the *quantized* representation.
    ///
    /// This is the INT8 path of the paper's portability claim: the predictor
    /// consumes MSBs of whatever format the weights are stored in. Elements
    /// that quantized to exactly 0 pack as "positive"; they are products that
    /// contribute nothing, and the Gaussian-symmetry argument is unaffected.
    pub fn packed_signs(&self) -> PackedSignMatrix {
        let as_f32 = Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.values[r * self.cols + c])
        });
        PackedSignMatrix::pack(&as_f32)
    }

    /// Storage footprint in bytes: one `i8` per element plus one `f32` scale
    /// per row.
    pub fn size_bytes(&self) -> usize {
        self.values.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Inner product of quantized row `r` with an f32 vector, dequantizing on
    /// the fly (the way a W8A32 GEMV kernel consumes the weights).
    ///
    /// Uses the same eight-lane accumulate and fixed reduction tree as
    /// [`crate::gemv::dot`] (a per-row scale is one block spanning the whole
    /// row), replacing the original single-accumulator loop — allocation-free
    /// and deterministic at any chunking.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn row_dot(&self, r: usize, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.cols, "row_dot length mismatch");
        let q = self.row(r);
        let main = q.len() - q.len() % DOT_LANES;
        let mut acc = [0.0f32; DOT_LANES];
        let (q_main, q_tail) = q.split_at(main);
        let (x_main, x_tail) = x.split_at(main.min(x.len()));
        for (ca, cb) in q_main
            .chunks_exact(DOT_LANES)
            .zip(x_main.chunks_exact(DOT_LANES))
        {
            for l in 0..DOT_LANES {
                acc[l] += f32::from(ca[l]) * cb[l];
            }
        }
        for (l, (qv, xv)) in q_tail.iter().zip(x_tail).enumerate() {
            acc[l] += f32::from(*qv) * xv;
        }
        let sum = ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
        sum * self.scales[r]
    }
}

/// A matrix quantized to INT8 with one `f32` scale per [`QUANT_BLOCK`]
/// columns of each row — the storage format of the fused block-dequant GEMV
/// ([`crate::gemv::dot_q8`]).
///
/// Compared to the per-row [`QuantizedMatrix`], per-block scales bound the
/// quantization error by the local (not row-wide) magnitude, and they map
/// one-to-one onto the fused kernel's block loop: the row is dequantized
/// *inside* the eight-lane accumulate, never materialized as `f32`.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::{BlockQuantizedMatrix, Matrix};
///
/// let m = Matrix::from_fn(2, 64, |r, c| (r as f32 + 1.0) * ((c as f32) - 31.5) / 32.0);
/// let q = BlockQuantizedMatrix::quantize(&m);
/// let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
/// let exact: f32 = m.row(1).iter().zip(&x).map(|(w, xi)| w * xi).sum();
/// assert!((q.row_dot(1, &x) - exact).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockQuantizedMatrix {
    rows: usize,
    cols: usize,
    values: Vec<i8>,
    /// One scale per `QUANT_BLOCK` columns per row, row-major.
    scales: Vec<f32>,
    /// Scale blocks per row (`cols.div_ceil(QUANT_BLOCK)`).
    row_blocks: usize,
}

impl BlockQuantizedMatrix {
    /// Quantizes `m` with symmetric per-block scaling (`scale = max|w| / 127`
    /// over each block; an all-zero block takes scale 1).
    pub fn quantize(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let row_blocks = cols.div_ceil(QUANT_BLOCK);
        let mut values = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows * row_blocks);
        for row in m.iter_rows() {
            for block in row.chunks(QUANT_BLOCK) {
                let maxabs = block.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
                scales.push(scale);
                for v in block {
                    values.push((v / scale).round().clamp(-127.0, 127.0) as i8);
                }
            }
        }
        Self {
            rows,
            cols,
            values,
            scales,
            row_blocks,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scale blocks per row.
    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    /// The quantized row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.values[r * self.cols..(r + 1) * self.cols]
    }

    /// The per-block scales of row `r` (block `b` covers columns
    /// `b * QUANT_BLOCK ..`).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_scales(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.scales[r * self.row_blocks..(r + 1) * self.row_blocks]
    }

    /// Reconstructs the full-precision approximation.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.values[r * self.cols + c])
                * self.scales[r * self.row_blocks + c / QUANT_BLOCK]
        })
    }

    /// Storage footprint in bytes: one `i8` per element plus one `f32` scale
    /// per block.
    pub fn size_bytes(&self) -> usize {
        self.values.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Fused block-dequant inner product of row `r` with `x` — one call to
    /// [`crate::gemv::dot_q8`], so the reduction order (and therefore the
    /// bits) is identical however callers partition rows across threads.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn row_dot(&self, r: usize, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.cols, "row_dot length mismatch");
        dot_q8(self.row(r), self.row_scales(r), x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_fn(6, 32, |r, c| ((r * 31 + c * 17) % 23) as f32 / 11.0 - 1.0)
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            let tol = q.scales()[r] * 0.5 + 1e-6;
            for c in 0..m.cols() {
                assert!(
                    (back[(r, c)] - m[(r, c)]).abs() <= tol,
                    "({r},{c}): {} vs {}",
                    back[(r, c)],
                    m[(r, c)]
                );
            }
        }
    }

    #[test]
    fn signs_preserved_for_non_underflowing_values() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        for r in 0..m.rows() {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    assert_eq!((*qv < 0), m[(r, c)] < 0.0, "sign flipped at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn zero_row_quantizes_without_dividing_by_zero() {
        let m = Matrix::zeros(2, 8);
        let q = QuantizedMatrix::quantize(&m);
        assert!(q.row(0).iter().all(|v| *v == 0));
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn row_dot_tracks_full_precision_dot() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        for r in 0..m.rows() {
            let exact: f32 = m.row(r).iter().zip(&x).map(|(w, xi)| w * xi).sum();
            let approx = q.row_dot(r, &x);
            assert!(
                (exact - approx).abs() < 0.25,
                "row {r}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn size_accounting_is_elements_plus_scales() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(4, 16));
        assert_eq!(q.size_bytes(), 4 * 16 + 4 * 4);
    }

    #[test]
    fn block_quantize_round_trip_error_is_bounded_by_half_block_scale() {
        let m = Matrix::from_fn(5, 100, |r, c| {
            // Mixed magnitudes so per-block scales differ within a row.
            let base = ((r * 53 + c * 29) % 31) as f32 / 7.0 - 2.0;
            if c / QUANT_BLOCK == 1 {
                base * 20.0
            } else {
                base
            }
        });
        let q = BlockQuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let tol = q.row_scales(r)[c / QUANT_BLOCK] * 0.5 + 1e-6;
                assert!(
                    (back[(r, c)] - m[(r, c)]).abs() <= tol,
                    "({r},{c}): {} vs {}",
                    back[(r, c)],
                    m[(r, c)]
                );
            }
        }
    }

    #[test]
    fn block_scales_beat_row_scales_on_mixed_magnitude_rows() {
        // One huge block inflates a row-wide scale and wrecks the small
        // blocks; per-block scales keep their error local.
        let m = Matrix::from_fn(1, 96, |_, c| {
            if c < QUANT_BLOCK {
                1000.0 + c as f32
            } else {
                ((c * 13) % 17) as f32 / 100.0
            }
        });
        let per_row = QuantizedMatrix::quantize(&m).dequantize();
        let per_block = BlockQuantizedMatrix::quantize(&m).dequantize();
        let err = |back: &Matrix| -> f32 {
            (QUANT_BLOCK..96)
                .map(|c| (back[(0, c)] - m[(0, c)]).abs())
                .sum()
        };
        assert!(
            err(&per_block) < err(&per_row) / 10.0,
            "block {} vs row {}",
            err(&per_block),
            err(&per_row)
        );
    }

    #[test]
    fn block_quantized_row_dot_matches_fused_kernel_reference_bitwise() {
        let m = sample_matrix();
        let q = BlockQuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..m.cols()).map(|i| (i as f32 * 0.31).cos()).collect();
        for r in 0..m.rows() {
            let via_matrix = q.row_dot(r, &x);
            let via_reference =
                crate::gemv::reference::dot_q8_blocks(q.row(r), q.row_scales(r), &x);
            assert_eq!(via_matrix.to_bits(), via_reference.to_bits(), "row {r}");
        }
    }

    #[test]
    fn block_quantized_unaligned_tail_block_round_trips() {
        // 41 columns: one full block + a 9-column tail block.
        let m = Matrix::from_fn(3, 41, |r, c| ((r * 7 + c * 3) % 13) as f32 / 5.0 - 1.0);
        let q = BlockQuantizedMatrix::quantize(&m);
        assert_eq!(q.row_blocks(), 2);
        assert_eq!(q.row_scales(2).len(), 2);
        let back = q.dequantize();
        for r in 0..3 {
            for c in 0..41 {
                let tol = q.row_scales(r)[c / QUANT_BLOCK] * 0.5 + 1e-6;
                assert!((back[(r, c)] - m[(r, c)]).abs() <= tol, "({r},{c})");
            }
        }
    }

    #[test]
    fn block_quantized_size_is_elements_plus_block_scales() {
        let q = BlockQuantizedMatrix::quantize(&Matrix::zeros(4, 100));
        // 4 rows × 100 int8 + 4 rows × 4 blocks × 4-byte scales.
        assert_eq!(q.size_bytes(), 4 * 100 + 4 * 4 * 4);
        // ~4x smaller than f32 storage, scales included.
        let fp32 = 4 * 100 * std::mem::size_of::<f32>();
        let ratio = fp32 as f64 / q.size_bytes() as f64;
        assert!((3.4..4.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn block_quantize_preserves_signs_and_zero_blocks() {
        let mut m = Matrix::from_fn(2, 64, |_, c| (c as f32 - 31.5) / 8.0);
        for c in 0..QUANT_BLOCK {
            m[(1, c)] = 0.0;
        }
        let q = BlockQuantizedMatrix::quantize(&m);
        assert!(q.row(1)[..QUANT_BLOCK].iter().all(|v| *v == 0));
        assert_eq!(q.row_scales(1)[0], 1.0, "zero block takes unit scale");
        for r in 0..2 {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    assert_eq!((*qv < 0), m[(r, c)] < 0.0, "sign flipped at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn packed_signs_match_source_signs_where_nonzero() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        let signs = q.packed_signs();
        for r in 0..m.rows() {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    let bit = (signs.row(r)[c / 32] >> (c % 32)) & 1 == 1;
                    assert_eq!(bit, m[(r, c)] < 0.0);
                }
            }
        }
    }
}
