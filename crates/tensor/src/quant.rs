//! Per-row symmetric INT8 quantization.
//!
//! A second quantization scheme (besides [`crate::f16`]) used to demonstrate
//! the paper's claim that the sign-bit predictor is robust to the storage
//! format: symmetric INT8 maps `w` to `round(w / scale)` with a per-row
//! `scale = max|w| / 127`, which preserves the sign of every element (up to
//! values that quantize to zero, which contribute nothing to the inner
//! product anyway).

use crate::{sign::PackedSignMatrix, Matrix};

/// A matrix quantized to INT8 with one `f32` scale per row.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::{Matrix, QuantizedMatrix};
///
/// let m = Matrix::from_fn(2, 4, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5));
/// let q = QuantizedMatrix::quantize(&m);
/// let back = q.dequantize();
/// for r in 0..2 {
///     for c in 0..4 {
///         assert!((back[(r, c)] - m[(r, c)]).abs() < 0.05);
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    values: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `m` row by row with symmetric scaling.
    pub fn quantize(m: &Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let mut values = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for row in m.iter_rows() {
            let maxabs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
            scales.push(scale);
            for v in row {
                let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
                values.push(q);
            }
        }
        Self {
            rows,
            cols,
            values,
            scales,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantized row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.values[r * self.cols..(r + 1) * self.cols]
    }

    /// Per-row scale factors.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the full-precision approximation.
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.values[r * self.cols + c]) * self.scales[r]
        })
    }

    /// Packs the sign bits of the *quantized* representation.
    ///
    /// This is the INT8 path of the paper's portability claim: the predictor
    /// consumes MSBs of whatever format the weights are stored in. Elements
    /// that quantized to exactly 0 pack as "positive"; they are products that
    /// contribute nothing, and the Gaussian-symmetry argument is unaffected.
    pub fn packed_signs(&self) -> PackedSignMatrix {
        let as_f32 = Matrix::from_fn(self.rows, self.cols, |r, c| {
            f32::from(self.values[r * self.cols + c])
        });
        PackedSignMatrix::pack(&as_f32)
    }

    /// Storage footprint in bytes: one `i8` per element plus one `f32` scale
    /// per row.
    pub fn size_bytes(&self) -> usize {
        self.values.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Inner product of quantized row `r` with an f32 vector, dequantizing on
    /// the fly (the way a W8A32 GEMV kernel consumes the weights).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn row_dot(&self, r: usize, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.cols, "row_dot length mismatch");
        let scale = self.scales[r];
        self.row(r)
            .iter()
            .zip(x)
            .map(|(q, xi)| f32::from(*q) * xi)
            .sum::<f32>()
            * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_fn(6, 32, |r, c| ((r * 31 + c * 17) % 23) as f32 / 11.0 - 1.0)
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        let back = q.dequantize();
        for r in 0..m.rows() {
            let tol = q.scales()[r] * 0.5 + 1e-6;
            for c in 0..m.cols() {
                assert!(
                    (back[(r, c)] - m[(r, c)]).abs() <= tol,
                    "({r},{c}): {} vs {}",
                    back[(r, c)],
                    m[(r, c)]
                );
            }
        }
    }

    #[test]
    fn signs_preserved_for_non_underflowing_values() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        for r in 0..m.rows() {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    assert_eq!((*qv < 0), m[(r, c)] < 0.0, "sign flipped at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn zero_row_quantizes_without_dividing_by_zero() {
        let m = Matrix::zeros(2, 8);
        let q = QuantizedMatrix::quantize(&m);
        assert!(q.row(0).iter().all(|v| *v == 0));
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn row_dot_tracks_full_precision_dot() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.37).sin()).collect();
        for r in 0..m.rows() {
            let exact: f32 = m.row(r).iter().zip(&x).map(|(w, xi)| w * xi).sum();
            let approx = q.row_dot(r, &x);
            assert!(
                (exact - approx).abs() < 0.25,
                "row {r}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn size_accounting_is_elements_plus_scales() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(4, 16));
        assert_eq!(q.size_bytes(), 4 * 16 + 4 * 4);
    }

    #[test]
    fn packed_signs_match_source_signs_where_nonzero() {
        let m = sample_matrix();
        let q = QuantizedMatrix::quantize(&m);
        let signs = q.packed_signs();
        for r in 0..m.rows() {
            for (c, qv) in q.row(r).iter().enumerate() {
                if *qv != 0 {
                    let bit = (signs.row(r)[c / 32] >> (c % 32)) & 1 == 1;
                    assert_eq!(bit, m[(r, c)] < 0.0);
                }
            }
        }
    }
}
