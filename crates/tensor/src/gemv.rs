//! Dense matrix–vector kernels.
//!
//! During LLM decoding every linear layer degenerates to a GEMV (`y = W·x`
//! with a single-token `x`), which is memory-bandwidth bound: each weight is
//! loaded exactly once per token. These reference kernels are the dense
//! baseline that the `sparse` crate's row-skipping kernels are verified
//! against, and that plays the role of llama.cpp in the benchmarks.

use crate::{Matrix, ShapeError, Vector};

/// Computes `y = W · x` where `W` is `rows × cols` and `x` has `cols`
/// elements.
///
/// # Panics
///
/// Panics if `x.len() != w.cols()`. Model plumbing guarantees shapes; a
/// mismatch is a bug, not a recoverable condition. Use [`try_gemv`] for the
/// checked variant.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::{Matrix, Vector, gemv::gemv};
///
/// let w = Matrix::from_fn(2, 2, |r, c| if r == c { 2.0 } else { 0.0 });
/// let y = gemv(&w, &Vector::from_vec(vec![1.0, 3.0]));
/// assert_eq!(y.as_slice(), &[2.0, 6.0]);
/// ```
pub fn gemv(w: &Matrix, x: &Vector) -> Vector {
    try_gemv(w, x).expect("gemv shape mismatch")
}

/// Checked variant of [`gemv`].
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if `x.len() != w.cols()`.
pub fn try_gemv(w: &Matrix, x: &Vector) -> Result<Vector, ShapeError> {
    if x.len() != w.cols() {
        return Err(ShapeError::DimensionMismatch {
            expected: w.cols(),
            actual: x.len(),
        });
    }
    let xs = x.as_slice();
    let mut out = Vec::with_capacity(w.rows());
    for row in w.iter_rows() {
        let mut acc = 0.0f32;
        for (wi, xi) in row.iter().zip(xs) {
            acc += wi * xi;
        }
        out.push(acc);
    }
    Ok(Vector::from_vec(out))
}

/// Computes `y = Wᵀ · x` without materializing the transpose, i.e.
/// `y[c] = Σ_r W[r][c] · x[r]`.
///
/// This is the access pattern of the down projection *before* the paper's
/// load-time transposition: output elements accumulate across rows, which on
/// a GPU forces `atomicAdd` across warps (§IV-B4). The `sparse` crate prefers
/// [`gemv`] on a pre-transposed matrix; this kernel exists as the baseline
/// and for verification.
///
/// # Panics
///
/// Panics if `x.len() != w.rows()`.
pub fn gemv_transposed(w: &Matrix, x: &Vector) -> Vector {
    assert_eq!(x.len(), w.rows(), "gemv_transposed shape mismatch");
    let mut out = vec![0.0f32; w.cols()];
    for (r, row) in w.iter_rows().enumerate() {
        let xr = x[r];
        if xr == 0.0 {
            continue;
        }
        for (c, wi) in row.iter().enumerate() {
            out[c] += wi * xr;
        }
    }
    Vector::from_vec(out)
}

/// Computes the dense matrix–matrix product `A · B` (`m×k` times `k×n`).
///
/// Only used by the DejaVu-style predictor baseline (low-rank projections)
/// and by tests; decode-path math is all GEMV.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let arow = a.row(i);
        for (l, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let orow = out.row_mut(i);
            for (j, &bv) in brow.iter().enumerate() {
                orow[j] += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_identity() {
        let w = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(gemv(&w, &x), x);
    }

    #[test]
    fn try_gemv_rejects_mismatch() {
        let w = Matrix::zeros(2, 3);
        let x = Vector::zeros(2);
        assert!(try_gemv(&w, &x).is_err());
    }

    #[test]
    fn transposed_gemv_matches_explicit_transpose() {
        let w = Matrix::from_fn(3, 4, |r, c| (r as f32) - (c as f32) * 0.5);
        let x = Vector::from_vec(vec![1.0, 2.0, -1.0]);
        let via_kernel = gemv_transposed(&w, &x);
        let via_transpose = gemv(&w.transposed(), &x);
        for (a, b) in via_kernel.iter().zip(via_transpose.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gemm_matches_manual_2x2() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemv_zero_rows_gives_empty_output() {
        let w = Matrix::zeros(0, 4);
        let x = Vector::zeros(4);
        assert!(gemv(&w, &x).is_empty());
    }
}
