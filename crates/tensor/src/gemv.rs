//! Dense matrix–vector kernels.
//!
//! During LLM decoding every linear layer degenerates to a GEMV (`y = W·x`
//! with a single-token `x`), which is memory-bandwidth bound: each weight is
//! loaded exactly once per token. These reference kernels are the dense
//! baseline that the `sparse` crate's row-skipping kernels are verified
//! against, and that plays the role of llama.cpp in the benchmarks.
//!
//! # Kernel shape
//!
//! The inner dot product is a *chunked multi-accumulator* loop
//! ([`dot`]): eight independent partial sums, combined in a fixed tree at
//! the end. A single-accumulator loop chains every FMA through one register
//! and caps throughput at one add per FP-add latency; eight independent
//! chains break the dependency and let rustc autovectorize. The reduction
//! order is **fixed and shared by every path** — sequential, row-partitioned
//! parallel, dense and sparse — so all of them produce bit-identical
//! outputs. The pre-optimization scalar forms survive in [`mod@reference`] and
//! the test suite proves exact equivalence of the lane-ordered scalar form
//! and close agreement of the single-accumulator form.
//!
//! Output-buffer (`*_into`) variants write into caller-provided storage so
//! the decode hot path can recycle buffers through a
//! [`Workspace`](crate::Workspace) instead of allocating per call; the
//! original allocating entry points survive as thin wrappers.

use crate::pool::ThreadPool;
use crate::{Matrix, ShapeError, Vector};

/// Number of independent accumulators in the unrolled dot product. Eight
/// `f32` lanes fill one AVX2 register; on narrower ISAs the compiler splits
/// the array into two or four vector registers, still breaking the
/// dependency chain.
pub const DOT_LANES: usize = 8;

/// Columns per scale block of the fused int8 kernels ([`dot_q8`] and
/// [`crate::quant::BlockQuantizedMatrix`]): a multiple of [`DOT_LANES`], so
/// a block's eight-lane accumulate never straddles a scale boundary and the
/// lane assignment inside every block matches the f32 kernel's.
pub const QUANT_BLOCK: usize = 32;

/// Minimum rows per worker before a GEMV fans out to threads; below this
/// the spawn cost of a scoped thread exceeds the row work.
const MIN_ROWS_PER_WORKER: usize = 64;

/// Chunked multi-accumulator dot product with a fixed reduction order:
/// element `i` accumulates into lane `i % 8`, and the eight lanes combine
/// as `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
///
/// Every kernel in the workspace reduces through this function, which is
/// what makes dense/sparse and sequential/parallel paths bit-identical.
///
/// # Panics
///
/// Panics (debug) if the slices differ in length; release builds truncate
/// to the shorter operand, which shape-checked callers never hit.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    let main = a.len() - a.len() % DOT_LANES;
    let mut acc = [0.0f32; DOT_LANES];
    let (a_main, a_tail) = a.split_at(main);
    let (b_main, b_tail) = b.split_at(main.min(b.len()));
    for (ca, cb) in a_main
        .chunks_exact(DOT_LANES)
        .zip(b_main.chunks_exact(DOT_LANES))
    {
        for l in 0..DOT_LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    for (l, (x, y)) in a_tail.iter().zip(b_tail).enumerate() {
        acc[l] += x * y;
    }
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Fused block-dequant dot product: int8 weights with one `f32` scale per
/// [`QUANT_BLOCK`] columns, dequantized on the fly — the quantized row is
/// never materialized as `f32` (each block is expanded into a
/// [`QUANT_BLOCK`]-element stack buffer that lives entirely in registers).
///
/// The reduction order is **exactly [`dot`]'s applied to the dequantized
/// row**: element `i` accumulates `(f32(q[i]) * scales[i / QUANT_BLOCK]) *
/// x[i]` into lane `i % 8`, and the eight lanes combine in the same fixed
/// tree. Folding the scale into the dequantize (rather than into each
/// product, or once per block sum) is what lets the compiler hoist one
/// broadcast per block and vectorize the int8→f32 converts. The order is a
/// pure function of the element index, so every caller — sequential or
/// row-partitioned across a [`crate::ThreadPool`] — produces
/// bit-identical results ([`reference::dot_q8_blocks`] is the scalar
/// restatement, asserted bitwise-equal, as is [`dot`] on the pre-dequantized
/// row).
///
/// # Panics
///
/// Panics (debug) if `q` and `x` differ in length or `scales` does not hold
/// one entry per started block; release builds truncate to the shorter
/// operand, which shape-checked callers never hit.
///
/// `inline(never)`: when this body is inlined into a caller that also
/// writes through a `&mut [f32]` (the row-partitioned GEMV closures), LLVM
/// stops vectorizing the i8→f32 convert loop and the kernel runs ~3×
/// slower than the standalone instantiation. Forcing the call keeps the
/// vectorized codegen at every call site; the per-call overhead is noise
/// against a whole row's work.
#[inline(never)]
pub fn dot_q8(q: &[i8], scales: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), x.len(), "dot_q8 operand length mismatch");
    debug_assert_eq!(
        scales.len(),
        q.len().div_ceil(QUANT_BLOCK),
        "dot_q8 scale count mismatch"
    );
    let mut acc = [0.0f32; DOT_LANES];
    let full_blocks = q.len() / QUANT_BLOCK;
    let main = full_blocks * QUANT_BLOCK;
    for b in 0..full_blocks {
        let scale = scales[b];
        // Fixed-size array views elide the bounds checks that would
        // otherwise defeat autovectorization of the convert loop.
        let qb: &[i8; QUANT_BLOCK] = q[b * QUANT_BLOCK..(b + 1) * QUANT_BLOCK]
            .try_into()
            .expect("full block");
        let xb: &[f32; QUANT_BLOCK] = x[b * QUANT_BLOCK..(b + 1) * QUANT_BLOCK]
            .try_into()
            .expect("full block");
        let mut deq = [0.0f32; QUANT_BLOCK];
        for (d, qv) in deq.iter_mut().zip(qb) {
            *d = f32::from(*qv) * scale;
        }
        for c in 0..QUANT_BLOCK / DOT_LANES {
            for l in 0..DOT_LANES {
                acc[l] += deq[c * DOT_LANES + l] * xb[c * DOT_LANES + l];
            }
        }
    }
    if main < q.len() {
        let scale = scales[full_blocks];
        for (i, (qv, xv)) in q[main..].iter().zip(&x[main..]).enumerate() {
            acc[i % DOT_LANES] += f32::from(*qv) * scale * xv;
        }
    }
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Computes `y = W · x` where `W` is `rows × cols` and `x` has `cols`
/// elements.
///
/// # Panics
///
/// Panics if `x.len() != w.cols()`. Model plumbing guarantees shapes; a
/// mismatch is a bug, not a recoverable condition. Use [`try_gemv`] for the
/// checked variant.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::{Matrix, Vector, gemv::gemv};
///
/// let w = Matrix::from_fn(2, 2, |r, c| if r == c { 2.0 } else { 0.0 });
/// let y = gemv(&w, &Vector::from_vec(vec![1.0, 3.0]));
/// assert_eq!(y.as_slice(), &[2.0, 6.0]);
/// ```
pub fn gemv(w: &Matrix, x: &Vector) -> Vector {
    try_gemv(w, x).expect("gemv shape mismatch")
}

/// Checked variant of [`gemv`].
///
/// # Errors
///
/// Returns [`ShapeError::DimensionMismatch`] if `x.len() != w.cols()`.
pub fn try_gemv(w: &Matrix, x: &Vector) -> Result<Vector, ShapeError> {
    if x.len() != w.cols() {
        return Err(ShapeError::DimensionMismatch {
            expected: w.cols(),
            actual: x.len(),
        });
    }
    let mut out = Vector::zeros(0);
    gemv_into(w, x, &ThreadPool::single(), &mut out);
    Ok(out)
}

/// `y = W · x` into a caller-provided buffer, row-partitioned across
/// `pool`'s workers. `out` is resized to `w.rows()` (no allocation when its
/// capacity suffices) and every element is overwritten. Bit-identical for
/// every thread count: each output row is one [`dot`] with a fixed
/// reduction order, and chunking only selects which rows a worker computes.
///
/// # Panics
///
/// Panics if `x.len() != w.cols()`.
pub fn gemv_into(w: &Matrix, x: &Vector, pool: &ThreadPool, out: &mut Vector) {
    assert_eq!(x.len(), w.cols(), "gemv shape mismatch");
    let xs = x.as_slice();
    out.resize(w.rows(), 0.0);
    pool.run_chunks(out.as_mut_slice(), MIN_ROWS_PER_WORKER, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = dot(w.row(offset + i), xs);
        }
    });
}

/// Computes `y = Wᵀ · x` without materializing the transpose, i.e.
/// `y[c] = Σ_r W[r][c] · x[r]`.
///
/// This is the access pattern of the down projection *before* the paper's
/// load-time transposition: output elements accumulate across rows, which on
/// a GPU forces `atomicAdd` across warps (§IV-B4). The `sparse` crate prefers
/// [`gemv`] on a pre-transposed matrix; this kernel exists as the baseline
/// and for verification.
///
/// # Panics
///
/// Panics if `x.len() != w.rows()`.
pub fn gemv_transposed(w: &Matrix, x: &Vector) -> Vector {
    assert_eq!(x.len(), w.rows(), "gemv_transposed shape mismatch");
    let mut out = vec![0.0f32; w.cols()];
    for (r, row) in w.iter_rows().enumerate() {
        let xr = x[r];
        if xr == 0.0 {
            continue;
        }
        for (c, wi) in row.iter().enumerate() {
            out[c] += wi * xr;
        }
    }
    Vector::from_vec(out)
}

/// Computes the dense matrix–matrix product `A · B` (`m×k` times `k×n`).
///
/// Only used by the DejaVu-style predictor baseline (low-rank projections)
/// and by tests; decode-path math is all GEMV.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "gemm inner dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        let arow = a.row(i);
        for (l, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(l);
            let orow = out.row_mut(i);
            for (j, &bv) in brow.iter().enumerate() {
                orow[j] += av * bv;
            }
        }
    }
    out
}

/// Pre-optimization scalar kernels, kept as verification references and as
/// the "before" baseline for the self-timed benchmarks.
///
/// [`reference::dot_lanes`] reproduces the unrolled kernel's exact lane
/// assignment and reduction tree in plain scalar code — the test suite
/// asserts **bitwise** equality with [`dot`]. [`reference::dot_scalar`] is
/// the original single-accumulator loop (different reduction order, so only
/// approximately equal), and [`reference::gemv`] the original allocating
/// GEMV built on it.
pub mod reference {
    use super::DOT_LANES;
    use crate::{Matrix, Vector};

    /// The seed implementation: one accumulator, strictly left-to-right.
    pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    /// Scalar re-statement of the unrolled kernel's reduction order:
    /// element `i` accumulates into lane `i % 8`, lanes combine in the same
    /// fixed tree. Bit-identical to [`super::dot`] by construction.
    pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; DOT_LANES];
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            acc[i % DOT_LANES] += x * y;
        }
        ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
    }

    /// The seed GEMV: allocating, single-accumulator rows.
    pub fn gemv(w: &Matrix, x: &Vector) -> Vector {
        let xs = x.as_slice();
        let mut out = Vec::with_capacity(w.rows());
        for row in w.iter_rows() {
            out.push(dot_scalar(row, xs));
        }
        Vector::from_vec(out)
    }

    /// Scalar re-statement of the fused block-dequant kernel's reduction
    /// order — which is [`dot_lanes`]' order applied to the dequantized
    /// row: element `i` accumulates
    /// `(f32(q[i]) * scales[i / QUANT_BLOCK]) * x[i]` into lane `i % 8`,
    /// lanes combine in the fixed tree. Bit-identical to [`super::dot_q8`]
    /// by construction.
    pub fn dot_q8_blocks(q: &[i8], scales: &[f32], x: &[f32]) -> f32 {
        let mut acc = [0.0f32; DOT_LANES];
        for (i, (qv, xv)) in q.iter().zip(x).enumerate() {
            acc[i % DOT_LANES] += f32::from(*qv) * scales[i / super::QUANT_BLOCK] * xv;
        }
        ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ParallelOptions;
    use crate::Prng;

    #[test]
    fn gemv_identity() {
        let w = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = Vector::from_vec(vec![1.0, -2.0, 3.0]);
        assert_eq!(gemv(&w, &x), x);
    }

    #[test]
    fn try_gemv_rejects_mismatch() {
        let w = Matrix::zeros(2, 3);
        let x = Vector::zeros(2);
        assert!(try_gemv(&w, &x).is_err());
    }

    #[test]
    fn unrolled_dot_is_bitwise_equal_to_lane_ordered_scalar() {
        let mut rng = Prng::seed(11);
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 64, 100, 448, 1210] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal(0.1, 2.0) as f32).collect();
            let unrolled = dot(&a, &b);
            let scalar = reference::dot_lanes(&a, &b);
            assert_eq!(
                unrolled.to_bits(),
                scalar.to_bits(),
                "len {len}: {unrolled} vs {scalar}"
            );
        }
    }

    #[test]
    fn unrolled_dot_tracks_single_accumulator_reference() {
        let mut rng = Prng::seed(12);
        for len in [5usize, 64, 333, 1024] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0) as f32).collect();
            let unrolled = dot(&a, &b);
            let scalar = reference::dot_scalar(&a, &b);
            let scale = 1.0 + a.iter().map(|v| v.abs()).sum::<f32>();
            assert!(
                (unrolled - scalar).abs() / scale < 1e-5,
                "len {len}: {unrolled} vs {scalar}"
            );
        }
    }

    #[test]
    fn gemv_matches_reference_within_tolerance() {
        let mut rng = Prng::seed(13);
        let w = Matrix::from_fn(37, 129, |_, _| rng.normal(0.0, 0.5) as f32);
        let x = Vector::from_fn(129, |_| rng.normal(0.2, 1.0) as f32);
        let fast = gemv(&w, &x);
        let slow = reference::gemv(&w, &x);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn gemv_into_is_bitwise_identical_across_thread_counts() {
        let mut rng = Prng::seed(14);
        let w = Matrix::from_fn(301, 96, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(96, |_| rng.normal(0.0, 1.0) as f32);
        let mut expected = Vector::zeros(0);
        gemv_into(&w, &x, &ThreadPool::single(), &mut expected);
        assert_eq!(expected, gemv(&w, &x), "wrapper must share the kernel");
        for threads in [2, 4] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut out = Vector::zeros(0);
            gemv_into(&w, &x, &pool, &mut out);
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn gemv_into_overwrites_stale_output() {
        let w = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        let x = Vector::from_vec(vec![5.0, -6.0]);
        let mut out = Vector::from_vec(vec![9.0; 7]);
        gemv_into(&w, &x, &ThreadPool::single(), &mut out);
        assert_eq!(out.as_slice(), &[5.0, -6.0]);
    }

    #[test]
    fn transposed_gemv_matches_explicit_transpose() {
        let w = Matrix::from_fn(3, 4, |r, c| (r as f32) - (c as f32) * 0.5);
        let x = Vector::from_vec(vec![1.0, 2.0, -1.0]);
        let via_kernel = gemv_transposed(&w, &x);
        let via_transpose = gemv(&w.transposed(), &x);
        for (a, b) in via_kernel.iter().zip(via_transpose.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gemm_matches_manual_2x2() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemv_zero_rows_gives_empty_output() {
        let w = Matrix::zeros(0, 4);
        let x = Vector::zeros(4);
        assert!(gemv(&w, &x).is_empty());
    }

    /// A seeded int8 row + per-block scales + f32 input of length `len`.
    fn q8_case(seed: u64, len: usize) -> (Vec<i8>, Vec<f32>, Vec<f32>) {
        let mut rng = Prng::seed(seed);
        let q: Vec<i8> = (0..len)
            .map(|_| (rng.normal(0.0, 40.0) as f32).clamp(-127.0, 127.0) as i8)
            .collect();
        let scales: Vec<f32> = (0..len.div_ceil(QUANT_BLOCK))
            .map(|_| (rng.normal(0.0, 1.0) as f32).abs() * 0.01 + 1e-4)
            .collect();
        let x: Vec<f32> = (0..len).map(|_| rng.normal(0.1, 1.0) as f32).collect();
        (q, scales, x)
    }

    #[test]
    fn fused_q8_dot_is_bitwise_equal_to_block_ordered_scalar() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 64, 100, 448, 1210] {
            let (q, scales, x) = q8_case(21 + len as u64, len);
            let fused = dot_q8(&q, &scales, &x);
            let scalar = reference::dot_q8_blocks(&q, &scales, &x);
            assert_eq!(
                fused.to_bits(),
                scalar.to_bits(),
                "len {len}: {fused} vs {scalar}"
            );
        }
    }

    #[test]
    fn fused_q8_dot_is_bitwise_equal_to_the_dequantized_f32_dot() {
        // The contract in one line: dequantizing the row up front and
        // running the f32 kernel is *bitwise* the same computation — the
        // fused kernel only avoids materializing `deq`.
        for len in [0usize, 1, 31, 32, 33, 100, 448, 1210] {
            let (q, scales, x) = q8_case(77 + len as u64, len);
            let deq: Vec<f32> = q
                .iter()
                .enumerate()
                .map(|(i, v)| f32::from(*v) * scales[i / QUANT_BLOCK])
                .collect();
            let fused = dot_q8(&q, &scales, &x);
            let via_f32 = dot(&deq, &x);
            assert_eq!(
                fused.to_bits(),
                via_f32.to_bits(),
                "len {len}: {fused} vs {via_f32}"
            );
        }
    }

    #[test]
    fn quant_block_is_a_lane_multiple() {
        // The invariant the fused kernel's determinism rests on: a scale
        // block never splits an eight-lane accumulate.
        assert_eq!(QUANT_BLOCK % DOT_LANES, 0);
    }
}
