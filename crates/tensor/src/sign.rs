//! Sign-bit packing and XOR/popcount primitives.
//!
//! This module is the Rust analogue of the paper's §IV-B1/§IV-B2 CUDA code:
//! the sign bits (MSBs) of 32 consecutive `f32` values are packed into one
//! `u32` word. The predictor then XORs the packed signs of a weight row with
//! the packed signs of the input vector — a set bit in the result marks an
//! element-wise product that will be *negative* — and popcounts the result.
//!
//! IEEE-754 detail: the sign bit of `-0.0` is set and the sign bit of `+0.0`
//! is clear, so packing is exactly `f32::is_sign_negative`. A zero element
//! contributes nothing to the inner product either way, and with continuous
//! weight distributions exact zeros are measure-zero; the paper's predictor
//! makes the same approximation.

/// Lanes per packed word — mirrors the CUDA warp size, which the paper's
/// kernel exploits so that one warp processes one packed word per thread.
pub const LANES: usize = 32;

/// Independent accumulators in the unrolled XOR+popcount sweep. Popcounts
/// are integer sums, so any accumulator count yields the exact same result;
/// four chains are enough to hide the popcount latency.
const POPC_LANES: usize = 4;

/// Packs the sign bits of `values` into `words` in place (bit `j` of word
/// `i` = sign of element `i*32+j`), reusing the buffer's capacity — the
/// per-token packing step of the predictor, allocation-free after warm-up.
pub fn pack_signs_into(values: &[f32], words: &mut Vec<u32>) {
    words.clear();
    words.resize(values.len().div_ceil(LANES), 0);
    for (chunk, word) in values.chunks(LANES).zip(words.iter_mut()) {
        let mut w = 0u32;
        for (j, v) in chunk.iter().enumerate() {
            w |= u32::from(v.is_sign_negative()) << j;
        }
        *word = w;
    }
}

/// Chunked multi-accumulator XOR+popcount sweep:
/// `Σ popcount(a[i] ^ b[i])` over the common length. Integer addition is
/// associative, so the unrolling is exactly equivalent to the scalar sweep
/// (asserted by tests) while breaking the add dependency chain.
#[inline]
pub fn xor_popcount_words(a: &[u32], b: &[u32]) -> u32 {
    let main = a.len().min(b.len());
    let main = main - main % POPC_LANES;
    let mut acc = [0u32; POPC_LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(POPC_LANES)
        .zip(b[..main].chunks_exact(POPC_LANES))
    {
        for l in 0..POPC_LANES {
            acc[l] += (ca[l] ^ cb[l]).count_ones();
        }
    }
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        acc[0] += (x ^ y).count_ones();
    }
    acc[0] + acc[1] + acc[2] + acc[3]
}

/// Packed sign bits of an `f32` sequence, 32 signs per `u32` word.
///
/// Bit `j` of word `i` holds the sign of element `i * 32 + j` (1 = negative).
/// When the element count is not a multiple of 32, the trailing bits of the
/// last word are zero (treated as "positive", contributing to `N_pos`); model
/// dimensions in practice are multiples of 32, matching the paper's kernel
/// which assumes `ncols % 32 == 0`.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::SignPack;
///
/// let signs = SignPack::pack(&[1.0, -1.0, 3.5, -0.0]);
/// assert_eq!(signs.bit(0), false);
/// assert_eq!(signs.bit(1), true);
/// assert_eq!(signs.bit(3), true); // -0.0 has its sign bit set
/// assert_eq!(signs.count_negative(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignPack {
    words: Vec<u32>,
    len: usize,
}

impl SignPack {
    /// Packs the sign bits of `values` (1 = negative).
    pub fn pack(values: &[f32]) -> Self {
        let mut words = Vec::new();
        pack_signs_into(values, &mut words);
        Self {
            words,
            len: values.len(),
        }
    }

    /// Packs sign bits from raw IEEE-754 bit patterns (e.g. stored `f16` or
    /// quantized payloads where only the MSB is consulted).
    pub fn pack_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        for b in bits {
            if len.is_multiple_of(LANES) {
                words.push(0);
            }
            if b {
                *words.last_mut().expect("just pushed") |= 1u32 << (len % LANES);
            }
            len += 1;
        }
        Self { words, len }
    }

    /// Number of packed sign bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of `u32` words backing this pack.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The packed words (bit `j` of word `i` = sign of element `i*32+j`).
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Sign bit of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "sign index {i} out of bounds ({} bits)",
            self.len
        );
        (self.words[i / LANES] >> (i % LANES)) & 1 == 1
    }

    /// Total number of negative elements.
    pub fn count_negative(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Core predictor primitive: the number of element-wise products
    /// `a[i] * b[i]` that are predicted *negative*, computed as
    /// `Σ popcount(self.words[i] XOR other.words[i])`.
    ///
    /// This mirrors lines 6–9 of the paper's Listing 1 exactly (one XOR and
    /// one `__popc` per packed word).
    ///
    /// # Panics
    ///
    /// Panics if the two packs have different lengths.
    pub fn xor_popcount(&self, other: &SignPack) -> u32 {
        assert_eq!(
            self.len, other.len,
            "xor_popcount requires equal-length sign packs"
        );
        xor_popcount_words(&self.words, &other.words)
    }

    /// Memory footprint of the packed representation in bytes.
    ///
    /// Used for the paper's §V-A2 memory accounting (337.5 MB for the 13B
    /// model: `k × d/32 × 4 bytes × layers`).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>()
    }
}

/// Packed sign bits for every row of a matrix, the predictor's load-time
/// artifact (§IV-B1: "pack the sign bits of 32 consecutive elements in
/// `W_gate` into a 32-bit integer when the model is loaded").
///
/// Rows are stored contiguously so that, like the CUDA kernel, a consumer can
/// stream `row_words` per row with perfectly coalesced accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSignMatrix {
    words: Vec<u32>,
    rows: usize,
    cols: usize,
    row_words: usize,
}

impl PackedSignMatrix {
    /// Packs the sign bits of every row of `m`.
    pub fn pack(m: &crate::Matrix) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        let row_words = cols.div_ceil(LANES);
        let mut words = vec![0u32; rows * row_words];
        for (r, row) in m.iter_rows().enumerate() {
            let base = r * row_words;
            for (i, v) in row.iter().enumerate() {
                if v.is_sign_negative() {
                    words[base + i / LANES] |= 1u32 << (i % LANES);
                }
            }
        }
        Self {
            words,
            rows,
            cols,
            row_words,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (unpacked) columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Packed words per row.
    pub fn row_words(&self) -> usize {
        self.row_words
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[u32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.words[r * self.row_words..(r + 1) * self.row_words]
    }

    /// Number of predicted-negative products between row `r` and the packed
    /// input signs — `Σ popcount(W_signs[r] XOR X_signs)`.
    ///
    /// # Panics
    ///
    /// Panics if `x_signs.len() != self.cols()`.
    pub fn row_xor_popcount(&self, r: usize, x_signs: &SignPack) -> u32 {
        assert_eq!(
            x_signs.len(),
            self.cols,
            "input sign pack length must equal matrix columns"
        );
        xor_popcount_words(self.row(r), x_signs.words())
    }

    /// [`row_xor_popcount`](Self::row_xor_popcount) against raw packed
    /// words (the predictor's per-session scratch buffer).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != self.row_words()`.
    pub fn row_xor_popcount_words(&self, r: usize, words: &[u32]) -> u32 {
        assert_eq!(
            words.len(),
            self.row_words,
            "packed input words must match row word count"
        );
        xor_popcount_words(self.row(r), words)
    }

    /// Memory footprint in bytes (the §V-A2 accounting unit).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>()
    }
}

/// Counts negative element-wise products exactly, without packing — the
/// scalar reference the packed path is property-tested against.
pub fn count_negative_products(a: &[f32], b: &[f32]) -> u32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .filter(|(x, y)| x.is_sign_negative() != y.is_sign_negative())
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn pack_sets_expected_bits() {
        let p = SignPack::pack(&[-1.0, 2.0, -3.0, 4.0]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.words()[0], 0b0101);
        assert_eq!(p.count_negative(), 2);
    }

    #[test]
    fn negative_zero_counts_as_negative_sign() {
        let p = SignPack::pack(&[-0.0, 0.0]);
        assert!(p.bit(0));
        assert!(!p.bit(1));
    }

    #[test]
    fn pack_spans_multiple_words() {
        let values: Vec<f32> = (0..70)
            .map(|i| if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let p = SignPack::pack(&values);
        assert_eq!(p.word_count(), 3);
        assert_eq!(
            p.count_negative(),
            values.iter().filter(|v| **v < 0.0).count() as u32
        );
        for (i, v) in values.iter().enumerate() {
            assert_eq!(p.bit(i), *v < 0.0, "bit {i}");
        }
    }

    #[test]
    fn xor_popcount_equals_scalar_negative_product_count() {
        let a: Vec<f32> = (0..96).map(|i| ((i * 37 + 11) % 17) as f32 - 8.0).collect();
        let b: Vec<f32> = (0..96).map(|i| ((i * 53 + 5) % 19) as f32 - 9.0).collect();
        // Avoid exact zeros: shift by 0.5 where zero.
        let a: Vec<f32> = a.iter().map(|v| if *v == 0.0 { 0.5 } else { *v }).collect();
        let b: Vec<f32> = b.iter().map(|v| if *v == 0.0 { 0.5 } else { *v }).collect();
        let pa = SignPack::pack(&a);
        let pb = SignPack::pack(&b);
        assert_eq!(pa.xor_popcount(&pb), count_negative_products(&a, &b));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn xor_popcount_rejects_length_mismatch() {
        let a = SignPack::pack(&[1.0; 32]);
        let b = SignPack::pack(&[1.0; 64]);
        let _ = a.xor_popcount(&b);
    }

    #[test]
    fn packed_matrix_rows_match_individual_packs() {
        let m = Matrix::from_fn(5, 64, |r, c| ((r * 64 + c) as f32).sin() - 0.1);
        let pm = PackedSignMatrix::pack(&m);
        assert_eq!(pm.rows(), 5);
        assert_eq!(pm.cols(), 64);
        assert_eq!(pm.row_words(), 2);
        for r in 0..5 {
            let individual = SignPack::pack(m.row(r));
            assert_eq!(pm.row(r), individual.words(), "row {r}");
            let xs = SignPack::pack(m.row((r + 1) % 5));
            assert_eq!(pm.row_xor_popcount(r, &xs), individual.xor_popcount(&xs));
        }
    }

    #[test]
    fn packed_matrix_size_matches_paper_formula() {
        // Paper §V-A2: 13824 rows × 160 words × 4 bytes per layer.
        // Use a scaled-down shape with the same arithmetic.
        let m = Matrix::zeros(128, 320);
        let pm = PackedSignMatrix::pack(&m);
        assert_eq!(pm.size_bytes(), 128 * (320 / 32) * 4);
    }

    #[test]
    fn unrolled_sweep_equals_scalar_sweep_exactly() {
        // Integer sums are order-independent: the 4-accumulator sweep must
        // agree with the plain scalar loop on every length, tail included.
        for len in [0usize, 1, 3, 4, 5, 8, 11, 16, 64] {
            let a: Vec<u32> = (0..len)
                .map(|i| (i as u32).wrapping_mul(2654435761))
                .collect();
            let b: Vec<u32> = (0..len).map(|i| (i as u32).wrapping_mul(40503)).collect();
            let scalar: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
            assert_eq!(xor_popcount_words(&a, &b), scalar, "len {len}");
        }
    }

    #[test]
    fn pack_signs_into_reuses_buffer_and_matches_pack() {
        let values: Vec<f32> = (0..70).map(|i| (i as f32 * 0.7).sin() - 0.2).collect();
        let mut words = Vec::new();
        pack_signs_into(&values, &mut words);
        assert_eq!(words, SignPack::pack(&values).words());
        // Repacking shorter data reuses the buffer (stale words cleared).
        pack_signs_into(&values[..10], &mut words);
        assert_eq!(words, SignPack::pack(&values[..10]).words());
    }

    #[test]
    fn pack_bits_round_trip() {
        let bits = [true, false, true, true, false];
        let p = SignPack::pack_bits(bits.iter().copied());
        assert_eq!(p.len(), 5);
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(p.bit(i), *b);
        }
    }
}
