//! Seeded pseudo-random sampling for reproducible experiments.
//!
//! Every stochastic piece of the workspace (synthetic weights, task
//! generation, predictor training, samplers) draws from a [`Prng`] with an
//! explicit seed, so each experiment binary regenerates bit-identical data.
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman & Vigna) seeded through SplitMix64 — no external crates, so
//! the workspace builds in fully offline environments. Gaussian sampling is
//! the Box–Muller transform on top of the uniform source.

/// A seeded pseudo-random number generator with Gaussian sampling.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::Prng;
///
/// let mut a = Prng::seed(42);
/// let mut b = Prng::seed(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0)); // reproducible
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    state: [u64; 4],
    cached_normal: Option<f64>,
}

/// SplitMix64 step, used to expand the 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            state,
            cached_normal: None,
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give each layer /
    /// task / trial its own stream without coupling draw counts.
    pub fn fork(&mut self, salt: u64) -> Prng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Prng::seed(s)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply range reduction (Lemire); the bias for 64-bit
        // draws against usize bounds is far below observability.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn flip(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal sample via Box–Muller (with caching of the second
    /// variate).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Fills a fresh `f32` buffer with `N(mean, std_dev)` samples.
    pub fn normal_vec(&mut self, len: usize, mean: f64, std_dev: f64) -> Vec<f32> {
        (0..len)
            .map(|_| self.normal(mean, std_dev) as f32)
            .collect()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed(7);
        let mut b = Prng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed(1);
        let mut b = Prng::seed(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn standard_normal_moments_are_plausible() {
        let mut rng = Prng::seed(123);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_applies_affine_transform() {
        let mut rng = Prng::seed(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn flip_probability_tracks_p() {
        let mut rng = Prng::seed(5);
        let hits = (0..10_000).filter(|_| rng.flip(0.9)).count();
        assert!((8800..=9200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed(11);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>()); // overwhelmingly likely
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent = Prng::seed(42);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.uniform(), c2.uniform());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Prng::seed(0).below(0);
    }
}
