//! Histograms and summary statistics.
//!
//! Used to regenerate the paper's Fig. 2 (distributions of `X`, `W_gate,i`
//! and `Y = X ⊙ W_gate,i`) and to validate the Gaussian-symmetry assumption
//! the predictor rests on.

/// Running summary statistics (count, mean, variance, min/max, sign split).
///
/// Welford's algorithm is used so very long activation streams stay
/// numerically stable.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::stats::Summary;
///
/// let mut s = Summary::new();
/// s.extend([1.0, -1.0, 3.0, -3.0]);
/// assert_eq!(s.mean(), 0.0);
/// assert_eq!(s.negative_fraction(), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    negatives: u64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            negatives: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value < 0.0 {
            self.negatives += 1;
        }
    }

    /// Adds every observation of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }

    /// Builds a summary from a slice of `f32`.
    pub fn from_slice(values: &[f32]) -> Self {
        let mut s = Self::new();
        s.extend(values.iter().map(|v| *v as f64));
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fraction of strictly negative observations — the quantity the
    /// predictor's symmetry assumption (≈ 0.5 for zero-mean products) is
    /// judged by.
    pub fn negative_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.negatives as f64 / self.count as f64
        }
    }
}

/// A fixed-range histogram with uniform bins.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::stats::Histogram;
///
/// let mut h = Histogram::new(-1.0, 1.0, 4);
/// h.extend([-0.9, -0.1, 0.1, 0.9, 5.0]);
/// assert_eq!(h.counts(), &[1, 1, 1, 1]);
/// assert_eq!(h.outliers(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds one observation; values outside `[lo, hi)` count as outliers.
    pub fn push(&mut self, value: f64) {
        if value < self.lo || value >= self.hi || value.is_nan() {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((value - self.lo) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // guard against float edge effects
        }
        self.counts[idx] += 1;
    }

    /// Adds every observation of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.counts().len()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin {i} out of bounds");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Renders a fixed-width ASCII bar chart, one line per bin — how the
    /// `fig2_distributions` binary prints the paper's density plots.
    pub fn render_ascii(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, c) in self.counts.iter().enumerate() {
            let bar = (c * width as u64 / peak) as usize;
            out.push_str(&format!(
                "{:>9.4} | {}{}  {}\n",
                self.bin_center(i),
                "#".repeat(bar),
                " ".repeat(width - bar),
                c
            ));
        }
        out
    }
}

/// Pearson skewness proxy `(mean - median-free) = mean / std_dev` of a slice;
/// used to characterize the early-layer "narrow, near-zero" inputs from the
/// paper's Fig. 2 discussion.
pub fn standardized_mean(values: &[f32]) -> f64 {
    let s = Summary::from_slice(values);
    if s.std_dev() == 0.0 {
        0.0
    } else {
        s.mean() / s.std_dev()
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 erf approximation (|error| < 1.5e-7),
/// ample for sparsity calibration.
pub fn normal_cdf(x: f64) -> f64 {
    // Φ(x) = 0.5 * (1 + erf(x / sqrt(2)))
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal quantile function `Φ⁻¹(p)` (Acklam's rational
/// approximation, |relative error| < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_counts_negatives() {
        let s = Summary::from_slice(&[-1.0, -2.0, 3.0, 0.0]);
        assert_eq!(s.negative_fraction(), 0.5);
    }

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.negative_fraction(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 9.99, 10.0, -0.1, f64::NAN]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.extend([0.1, 0.5, 0.5, 0.9]);
        let art = h.render_ascii(10);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bin_histogram_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p} x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn standardized_mean_zero_for_symmetric() {
        assert_eq!(standardized_mean(&[1.0, -1.0, 2.0, -2.0]), 0.0);
        assert!(standardized_mean(&[1.0, 1.0, 1.0]) == 0.0); // zero variance guard
    }
}
