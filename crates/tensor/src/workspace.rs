//! Reusable scratch buffers for the allocation-free decode hot path.
//!
//! Every kernel in the seed implementation heap-allocated its output
//! (`Vec::with_capacity` per GEMV, per activation, per mask). At decode
//! time that is pure overhead: the same sizes recur every token, so after
//! the first step the allocator is only recycling what it just freed — at
//! the cost of lock traffic and cache pollution on every call.
//!
//! A [`Workspace`] is a small LIFO arena of recycled `f32` buffers. Kernels
//! [`take`](Workspace::take) a buffer, write every element they own, and
//! [`give`](Workspace::give) it back; because a decode step performs the
//! same sequence of takes and gives every token, buffer sizes stabilize
//! after one warm-up step and **steady-state decode performs zero heap
//! allocations** (proven by the workspace integration tests with a counting
//! allocator).
//!
//! Buffers returned by [`take`](Workspace::take) have *unspecified
//! contents* — callers must write every element they read (kernels do; the
//! sparse GEMV writes `0.0` to skipped rows and the dot product to active
//! rows, each exactly once). [`take_zeroed`](Workspace::take_zeroed) exists
//! for accumulation patterns.

use crate::Vector;

/// A LIFO pool of recycled `f32` scratch buffers.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let a = ws.take_zeroed(128);
/// assert_eq!(a.len(), 128);
/// ws.give(a); // recycled: the next take of ≤ 128 elements will not allocate
/// let b = ws.take(64);
/// assert_eq!(b.len(), 64);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer of length `len` with **unspecified contents** (stale
    /// values from a previous use). Reuses the most recently returned
    /// buffer when possible; allocates only while the pool is still warming
    /// up or a larger length than ever seen is requested.
    pub fn take(&mut self, len: usize) -> Vector {
        let mut buf = self.pool.pop().unwrap_or_default();
        if buf.len() < len {
            // Grows only beyond the largest size this buffer has held;
            // within capacity this writes the new tail without allocating.
            buf.resize(len, 0.0);
        } else {
            buf.truncate(len);
        }
        Vector::from_vec(buf)
    }

    /// Takes a zero-filled buffer of length `len`.
    pub fn take_zeroed(&mut self, len: usize) -> Vector {
        let mut v = self.take(len);
        v.fill(0.0);
        v
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, v: Vector) {
        self.pool.push(v.into_vec());
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total bytes held by pooled buffers (capacity, not length) — the
    /// workspace's contribution to a per-session memory estimate.
    pub fn pooled_bytes(&self) -> u64 {
        self.pool
            .iter()
            .map(|b| (b.capacity() * std::mem::size_of::<f32>()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_the_same_buffer() {
        let mut ws = Workspace::new();
        let mut a = ws.take(100);
        a[0] = 42.0;
        ws.give(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(100);
        assert_eq!(ws.pooled(), 0);
        // Contents are unspecified but the capacity was reused: the stale
        // value written above is still visible, proving no fresh allocation.
        assert_eq!(b[0], 42.0);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.fill(7.0);
        ws.give(a);
        let b = ws.take_zeroed(8);
        assert!(b.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn shrinking_take_truncates_without_reallocating() {
        let mut ws = Workspace::new();
        ws.give(Vector::zeros(256));
        let v = ws.take(16);
        assert_eq!(v.len(), 16);
        ws.give(v);
        assert!(ws.pooled_bytes() >= 256 * 4, "capacity must be retained");
    }

    #[test]
    fn empty_workspace_allocates_on_demand() {
        let mut ws = Workspace::new();
        let v = ws.take(10);
        assert_eq!(v.len(), 10);
        assert_eq!(ws.pooled(), 0);
    }
}
