//! Reusable scratch buffers for the allocation-free decode hot path.
//!
//! Every kernel in the seed implementation heap-allocated its output
//! (`Vec::with_capacity` per GEMV, per activation, per mask). At decode
//! time that is pure overhead: the same sizes recur every token, so after
//! the first step the allocator is only recycling what it just freed — at
//! the cost of lock traffic and cache pollution on every call.
//!
//! A [`Workspace`] is a small LIFO arena of recycled `f32` buffers. Kernels
//! [`take`](Workspace::take) a buffer, write every element they own, and
//! [`give`](Workspace::give) it back; because a decode step performs the
//! same sequence of takes and gives every token, buffer sizes stabilize
//! after one warm-up step and **steady-state decode performs zero heap
//! allocations** (proven by the workspace integration tests with a counting
//! allocator).
//!
//! Buffers returned by [`take`](Workspace::take) have *unspecified
//! contents* — callers must write every element they read (kernels do; the
//! sparse GEMV writes `0.0` to skipped rows and the dot product to active
//! rows, each exactly once). [`take_zeroed`](Workspace::take_zeroed) exists
//! for accumulation patterns.

use crate::Vector;

/// A LIFO pool of recycled `f32` scratch buffers.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let a = ws.take_zeroed(128);
/// assert_eq!(a.len(), 128);
/// ws.give(a); // recycled: the next take of ≤ 128 elements will not allocate
/// let b = ws.take(64);
/// assert_eq!(b.len(), 64);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer of length `len` with **unspecified contents** (stale
    /// values from a previous use). Reuses the **best-fitting** pooled
    /// buffer: the smallest capacity that already holds `len`, falling back
    /// to the largest buffer (the one needing the least regrowth) when none
    /// fits. Allocates only while the pool is still warming up or a larger
    /// length than ever seen is requested — in particular, a mixed-size
    /// take/give pattern (small give followed by a large take) reuses the
    /// idle large buffer instead of regrowing the small one.
    pub fn take(&mut self, len: usize) -> Vector {
        let mut best: Option<(usize, usize, bool)> = None; // (index, capacity, fits)
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            let fits = cap >= len;
            let better = match best {
                None => true,
                Some((_, best_cap, best_fits)) => match (fits, best_fits) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => cap < best_cap,
                    (false, false) => cap > best_cap,
                },
            };
            if better {
                best = Some((i, cap, fits));
            }
        }
        let mut buf = match best {
            Some((i, _, _)) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        if buf.len() < len {
            // Grows only beyond the largest capacity in the pool; within
            // capacity this writes the new tail without allocating.
            buf.resize(len, 0.0);
        } else {
            buf.truncate(len);
        }
        Vector::from_vec(buf)
    }

    /// Takes a zero-filled buffer of length `len`.
    pub fn take_zeroed(&mut self, len: usize) -> Vector {
        let mut v = self.take(len);
        v.fill(0.0);
        v
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, v: Vector) {
        self.pool.push(v.into_vec());
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total bytes held by pooled buffers (capacity, not length) — the
    /// workspace's contribution to a per-session memory estimate.
    pub fn pooled_bytes(&self) -> u64 {
        self.pool
            .iter()
            .map(|b| (b.capacity() * std::mem::size_of::<f32>()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_the_same_buffer() {
        let mut ws = Workspace::new();
        let mut a = ws.take(100);
        a[0] = 42.0;
        ws.give(a);
        assert_eq!(ws.pooled(), 1);
        let b = ws.take(100);
        assert_eq!(ws.pooled(), 0);
        // Contents are unspecified but the capacity was reused: the stale
        // value written above is still visible, proving no fresh allocation.
        assert_eq!(b[0], 42.0);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.fill(7.0);
        ws.give(a);
        let b = ws.take_zeroed(8);
        assert!(b.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn shrinking_take_truncates_without_reallocating() {
        let mut ws = Workspace::new();
        ws.give(Vector::zeros(256));
        let v = ws.take(16);
        assert_eq!(v.len(), 16);
        ws.give(v);
        assert!(ws.pooled_bytes() >= 256 * 4, "capacity must be retained");
    }

    #[test]
    fn mixed_size_take_prefers_the_best_fitting_buffer() {
        // Regression: with LIFO reuse, giving a big buffer back *before* a
        // small one meant the next big take popped the small buffer and
        // regrew it while the big one idled in the pool.
        let mut ws = Workspace::new();
        let mut big = Vector::zeros(1024);
        big[0] = 42.0;
        let mut small = Vector::zeros(16);
        small[0] = 7.0;
        ws.give(big);
        ws.give(small); // most recent — the old LIFO pick for any take
        let bytes_before = ws.pooled_bytes();

        let b = ws.take(1024);
        assert_eq!(b[0], 42.0, "must reuse the idle 1024-buffer, not regrow");
        let s = ws.take(16);
        assert_eq!(s[0], 7.0, "the small buffer serves the small take");

        // No buffer was regrown: total pooled capacity is unchanged after
        // a full give-back.
        ws.give(b);
        ws.give(s);
        assert_eq!(ws.pooled_bytes(), bytes_before, "no reallocation");
    }

    #[test]
    fn unfittable_take_grows_the_largest_buffer() {
        let mut ws = Workspace::new();
        ws.give(Vector::zeros(8));
        ws.give(Vector::zeros(128));
        let v = ws.take(256); // nothing fits: the 128-buffer grows (least regrowth)
        assert_eq!(v.len(), 256);
        assert_eq!(ws.pooled(), 1, "the 8-buffer stays pooled untouched");
        assert_eq!(ws.pooled_bytes(), 8 * 4);
    }

    #[test]
    fn empty_workspace_allocates_on_demand() {
        let mut ws = Workspace::new();
        let v = ws.take(10);
        assert_eq!(v.len(), 10);
        assert_eq!(ws.pooled(), 0);
    }
}
