//! A tiny scoped-thread pool for deterministic data-parallel kernels.
//!
//! The decode hot path is memory-bandwidth bound, and one core cannot
//! saturate the memory system of a modern machine; the paper's CUDA kernels
//! row-partition every GEMV across warps for exactly this reason. This
//! module is the CPU analogue: a dependency-free helper that splits an
//! output slice into contiguous chunks and computes each chunk on its own
//! `std::thread::scope` thread.
//!
//! Determinism is by construction, not by luck: every output element has a
//! **single writer**, and the arithmetic performed for one element does not
//! depend on how the slice was chunked. Running with 1, 2 or 4 threads
//! therefore produces bit-identical results (proven by the workspace
//! integration tests), which is what lets the serving layer turn the
//! `threads` knob freely without perturbing decoded tokens.
//!
//! With `threads == 1` every entry point degenerates to an inline call with
//! zero overhead (no spawn, no allocation) — the default for engines, so
//! the allocation-free guarantee of the workspace hot path is preserved.

/// User-facing parallelism knob, plumbed through `EngineBuilder` and
/// `Batch`.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::pool::ParallelOptions;
///
/// assert_eq!(ParallelOptions::default().threads, 1);
/// assert_eq!(ParallelOptions::threads(4).threads, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Number of worker threads kernels may fan out to (≥ 1).
    pub threads: usize,
}

impl ParallelOptions {
    /// Single-threaded execution (the default; zero overhead).
    pub fn single() -> Self {
        Self { threads: 1 }
    }

    /// Fan out to `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        Self { threads }
    }
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self::single()
    }
}

/// A reusable handle that row-partitions kernel work across scoped threads.
///
/// The pool is a *policy* object (how many workers to fan out to); workers
/// themselves are scoped `std::thread`s spawned per call, so borrowed data
/// flows into kernels without `'static` bounds or unsafe code, and the pool
/// is trivially `Copy` + `Send` + `Sync`.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::pool::{ParallelOptions, ThreadPool};
///
/// let pool = ThreadPool::new(ParallelOptions::threads(2));
/// let mut out = vec![0.0f32; 1000];
/// pool.run_chunks(&mut out, 1, |offset, chunk| {
///     for (i, slot) in chunk.iter_mut().enumerate() {
///         *slot = (offset + i) as f32;
///     }
/// });
/// assert_eq!(out[999], 999.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool fanning out to `options.threads` workers.
    pub fn new(options: ParallelOptions) -> Self {
        Self {
            threads: options.threads.max(1),
        }
    }

    /// The single-threaded pool (inline execution, zero overhead).
    pub fn single() -> Self {
        Self { threads: 1 }
    }

    /// Number of workers this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many workers would actually be used for `len` items at a minimum
    /// chunk size of `min_chunk` (small problems stay single-threaded —
    /// spawning threads for a 64-row GEMV costs more than it saves).
    fn effective_workers(&self, len: usize, min_chunk: usize) -> usize {
        if self.threads <= 1 || len == 0 {
            return 1;
        }
        self.threads.min(len / min_chunk.max(1)).max(1)
    }

    /// Splits `out` into at most [`threads`](Self::threads) contiguous
    /// chunks and runs `f(chunk_offset, chunk)` on each, in parallel. Each
    /// element of `out` is written by exactly one worker; results are
    /// bit-identical to the single-threaded call as long as `f`'s work per
    /// element does not depend on the chunking (true for every kernel in
    /// this workspace: chunk boundaries select *which rows/columns* a
    /// worker computes, never *how*).
    pub fn run_chunks<F>(&self, out: &mut [f32], min_chunk: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let workers = self.effective_workers(out.len(), min_chunk);
        if workers <= 1 {
            f(0, out);
            return;
        }
        let chunk = out.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = out;
            let mut offset = 0usize;
            while rest.len() > chunk {
                let (head, tail) = rest.split_at_mut(chunk);
                let off = offset;
                scope.spawn(move || f(off, head));
                offset += chunk;
                rest = tail;
            }
            // The last chunk runs on the calling thread.
            f(offset, rest);
        });
    }

    /// Runs `f(index, item)` over every item, partitioned across workers.
    /// Items are mutated independently (single writer each), so the result
    /// is identical to the sequential loop regardless of thread count. Used
    /// by the batch scheduler to advance independent decode sessions
    /// concurrently.
    pub fn run_tasks<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let workers = self.effective_workers(items.len(), 1);
        if workers <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest = items;
            let mut offset = 0usize;
            while rest.len() > chunk {
                let (head, tail) = rest.split_at_mut(chunk);
                let off = offset;
                scope.spawn(move || {
                    for (i, item) in head.iter_mut().enumerate() {
                        f(off + i, item);
                    }
                });
                offset += chunk;
                rest = tail;
            }
            for (i, item) in rest.iter_mut().enumerate() {
                f(offset + i, item);
            }
        });
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::single();
        let mut out = vec![0.0f32; 10];
        pool.run_chunks(&mut out, 1, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (off + i) as f32 + 1.0;
            }
        });
        assert_eq!(out[0], 1.0);
        assert_eq!(out[9], 10.0);
    }

    #[test]
    fn chunked_results_match_sequential_for_every_thread_count() {
        let compute = |off: usize, chunk: &mut [f32]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let x = (off + i) as f32;
                *v = x * 0.5 - 3.0;
            }
        };
        let mut expected = vec![0.0f32; 1003];
        ThreadPool::single().run_chunks(&mut expected, 1, compute);
        for threads in [2, 3, 4, 8] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut out = vec![0.0f32; 1003];
            pool.run_chunks(&mut out, 1, compute);
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn small_problems_stay_single_threaded() {
        let pool = ThreadPool::new(ParallelOptions::threads(8));
        assert_eq!(pool.effective_workers(10, 64), 1);
        assert_eq!(pool.effective_workers(1024, 64), 8);
        assert_eq!(pool.effective_workers(0, 1), 1);
        // Every element still gets written.
        let mut out = vec![0.0f32; 10];
        pool.run_chunks(&mut out, 64, |_, chunk| chunk.fill(1.0));
        assert!(out.iter().all(|v| *v == 1.0));
    }

    #[test]
    fn run_tasks_visits_every_item_once() {
        for threads in [1, 2, 5] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut items = vec![0usize; 97];
            pool.run_tasks(&mut items, |i, item| *item = i + 1);
            for (i, item) in items.iter().enumerate() {
                assert_eq!(*item, i + 1, "{threads} threads, item {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        let _ = ParallelOptions::threads(0);
    }
}
