//! A persistent parked-worker thread pool for deterministic data-parallel
//! kernels.
//!
//! The decode hot path is memory-bandwidth bound, and one core cannot
//! saturate the memory system of a modern machine; the paper's CUDA kernels
//! row-partition every sparse GEMV across warps for exactly this reason.
//! This module is the CPU analogue: a dependency-free pool that splits an
//! output slice into contiguous chunks and computes each chunk on its own
//! worker thread.
//!
//! Workers are **long-lived and parked**, not spawned per call. The first
//! design of this pool used `std::thread::scope` per kernel call, which is
//! beautifully safe but pays the ~tens-of-µs thread spawn cost on every
//! sub-millisecond GEMV — exactly the overhead that capped multi-core
//! scaling (see the `spawn_dispatch` vs `parked_dispatch` entries in
//! `BENCH_kernels.json`). Now each [`ThreadPool`] owns `threads - 1` worker
//! threads parked on per-worker condvars; a dispatch deposits one chunk
//! descriptor per worker, runs the final chunk on the calling thread, and
//! blocks until every worker has signalled completion. Steady-state
//! dispatch performs **zero heap allocations** (descriptors live on the
//! caller's stack, mailboxes are preallocated), preserving the
//! allocation-free guarantee of the workspace hot path at `threads > 1`.
//!
//! Determinism is by construction, not by luck: every output element has a
//! **single writer**, chunk boundaries are a pure function of `(len,
//! threads, min_chunk)`, and the arithmetic performed for one element does
//! not depend on how the slice was chunked. Running with 1, 2 or 4 threads
//! therefore produces bit-identical results (proven by the workspace
//! integration tests), which is what lets the serving layer turn the
//! `threads` knob freely without perturbing decoded tokens.
//!
//! With `threads == 1` every entry point degenerates to an inline call with
//! zero overhead (no workers, no synchronization, no allocation) — the
//! default for engines.
//!
//! # Safety
//!
//! This is the one module in the library crates that uses `unsafe` (the
//! crate is `#![deny(unsafe_code)]` with a local allow here). Feeding
//! borrowed, non-`'static` chunks to long-lived threads requires erasing
//! lifetimes — the same thing `std::thread::scope` and rayon do internally.
//! The invariants that make it sound are small and local:
//!
//! * A `Task` (erased closure pointer + chunk pointer/len) is only ever
//!   created inside [`ThreadPool::run_chunks`] / [`ThreadPool::run_tasks`],
//!   which do not return (or unwind) until the completion counter says
//!   every deposited task has finished. Workers never touch a task after
//!   decrementing that counter, so the borrows behind the raw pointers are
//!   live for every access.
//! * Chunks are produced by `split_at_mut`, so they are disjoint and
//!   `&mut`-unique; `T: Send` and `F: Sync` bounds carry over from the
//!   public signatures exactly as they did for scoped threads.
//! * Worker panics are caught, forwarded, and re-raised on the calling
//!   thread after all peers finish — a panicking kernel can neither
//!   deadlock parked peers nor let the caller return while a worker still
//!   holds a borrow.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// User-facing parallelism knob, plumbed through `EngineBuilder` and
/// `Batch`.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::pool::ParallelOptions;
///
/// assert_eq!(ParallelOptions::default().threads, 1);
/// assert_eq!(ParallelOptions::threads(4).threads, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Number of worker threads kernels may fan out to (≥ 1).
    pub threads: usize,
}

impl ParallelOptions {
    /// Single-threaded execution (the default; zero overhead).
    pub fn single() -> Self {
        Self { threads: 1 }
    }

    /// Fan out to `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(threads: usize) -> Self {
        assert!(threads >= 1, "thread count must be at least 1");
        Self { threads }
    }
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self::single()
    }
}

/// Signature every chunk of work is erased to: `(closure, base pointer,
/// global offset, element count)`. Monomorphized trampolines
/// ([`chunk_trampoline`], [`tasks_trampoline`]) rebuild the typed slice and
/// closure on the worker side.
type RawKernel = unsafe fn(*const (), *mut u8, usize, usize);

/// One chunk descriptor deposited into a worker's mailbox. Stack-allocated
/// by the dispatching call; never outlives it (see module safety notes).
struct Task {
    kernel: RawKernel,
    ctx: *const (),
    base: *mut u8,
    offset: usize,
    len: usize,
}

// SAFETY: the raw pointers stand for a `&F` and a `&mut [T]` whose referents
// the dispatching thread keeps alive (and unaliased) until the completion
// counter reports the task done; `F: Sync` and `T: Send` are enforced by the
// public entry points that create tasks.
unsafe impl Send for Task {}

/// Rebuilds `(offset, &mut [f32])` from an erased task and calls `f` — the
/// worker-side half of [`ThreadPool::run_chunks`].
unsafe fn chunk_trampoline<F>(ctx: *const (), base: *mut u8, offset: usize, len: usize)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    // SAFETY: `ctx` points to an `F` and `base..base+len` to a disjoint
    // `&mut [f32]` chunk, both alive for the duration of the dispatch (see
    // module safety notes).
    let f = unsafe { &*(ctx as *const F) };
    let chunk = unsafe { std::slice::from_raw_parts_mut(base as *mut f32, len) };
    f(offset, chunk);
}

/// Rebuilds `(start index, &mut [T])` from an erased task and runs `f` over
/// every item — the worker-side half of [`ThreadPool::run_tasks`].
unsafe fn tasks_trampoline<T, F>(ctx: *const (), base: *mut u8, offset: usize, len: usize)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    // SAFETY: as in `chunk_trampoline`, with `base` pointing at a disjoint
    // `&mut [T]` chunk of `len` items starting at global index `offset`.
    let f = unsafe { &*(ctx as *const F) };
    let items = unsafe { std::slice::from_raw_parts_mut(base as *mut T, len) };
    for (i, item) in items.iter_mut().enumerate() {
        f(offset + i, item);
    }
}

/// One worker's parking spot: a task slot plus the condvar the worker waits
/// on while the slot is empty.
struct Mailbox {
    slot: Mutex<MailSlot>,
    wake: Condvar,
}

#[derive(Default)]
struct MailSlot {
    task: Option<Task>,
    shutdown: bool,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            slot: Mutex::new(MailSlot::default()),
            wake: Condvar::new(),
        }
    }
}

/// Completion state of the in-flight dispatch (at most one per pool).
#[derive(Default)]
struct DoneState {
    /// Worker tasks deposited but not yet finished.
    pending: usize,
    /// First panic payload caught on a worker, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    mailboxes: Box<[Mailbox]>,
    done: Mutex<DoneState>,
    all_done: Condvar,
    /// Guards the single-dispatch invariant: a nested or concurrent
    /// `run_*` call on the same pool falls back to inline execution
    /// (results are identical either way) instead of corrupting the
    /// completion counter.
    dispatching: AtomicBool,
}

/// Never-poisoned lock: kernels run outside every lock (and worker panics
/// are caught before touching one), so a poisoned mutex can only mean a
/// panic in this module's own bookkeeping — carrying on with the inner
/// value is strictly better than cascading the abort.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The parked-worker loop: wait for a task (or shutdown), run it with
/// panics contained, report completion, park again.
fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    let mailbox = &shared.mailboxes[index];
    loop {
        let task = {
            let mut slot = lock(&mailbox.slot);
            loop {
                if slot.shutdown {
                    return;
                }
                if let Some(task) = slot.task.take() {
                    break task;
                }
                slot = mailbox
                    .wake
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatching thread keeps the task's referents alive
        // until we decrement `pending` below (module safety notes).
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            (task.kernel)(task.ctx, task.base, task.offset, task.len)
        }));
        let mut done = lock(&shared.done);
        if let Err(payload) = result {
            done.panic.get_or_insert(payload);
        }
        done.pending -= 1;
        if done.pending == 0 {
            shared.all_done.notify_one();
        }
    }
}

/// Owns the worker threads; dropped when the last [`ThreadPool`] clone
/// goes away, which parks-out and joins every worker.
struct PoolHandle {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        for mailbox in self.shared.mailboxes.iter() {
            lock(&mailbox.slot).shutdown = true;
            mailbox.wake.notify_one();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A reusable handle that row-partitions kernel work across persistent,
/// parked worker threads.
///
/// The pool is a cheap `Arc`-backed clone handle: `threads - 1` workers are
/// spawned once at construction and parked on condvars between kernel
/// calls; cloning shares them, and dropping the last handle shuts them down
/// and joins them. Dispatching a kernel deposits chunk descriptors into the
/// workers' mailboxes (no allocation, no spawn) and runs the final chunk on
/// the calling thread.
///
/// # Example
///
/// ```
/// use sparseinfer_tensor::pool::{ParallelOptions, ThreadPool};
///
/// let pool = ThreadPool::new(ParallelOptions::threads(2));
/// let mut out = vec![0.0f32; 1000];
/// pool.run_chunks(&mut out, 1, |offset, chunk| {
///     for (i, slot) in chunk.iter_mut().enumerate() {
///         *slot = (offset + i) as f32;
///     }
/// });
/// assert_eq!(out[999], 999.0);
/// ```
#[derive(Clone)]
pub struct ThreadPool {
    threads: usize,
    /// `None` for the single-threaded pool (inline execution).
    inner: Option<Arc<PoolHandle>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field(
                "parked_workers",
                &self.inner.as_ref().map_or(0, |_| self.threads - 1),
            )
            .finish()
    }
}

impl ThreadPool {
    /// A pool fanning out to `options.threads` workers: `threads - 1`
    /// parked worker threads are spawned now (the calling thread is the
    /// last worker of every dispatch).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a worker thread (resource
    /// exhaustion at construction time — never during dispatch; a built
    /// pool spawns nothing more). Construct pools at startup, where
    /// aborting is the reasonable response, rather than per request.
    pub fn new(options: ParallelOptions) -> Self {
        let threads = options.threads.max(1);
        if threads == 1 {
            return Self::single();
        }
        let shared = Arc::new(PoolShared {
            mailboxes: (1..threads).map(|_| Mailbox::new()).collect(),
            done: Mutex::new(DoneState::default()),
            all_done: Condvar::new(),
            dispatching: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sparseinfer-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        Self {
            threads,
            inner: Some(Arc::new(PoolHandle { shared, workers })),
        }
    }

    /// The single-threaded pool (inline execution, zero overhead, no
    /// worker threads).
    pub fn single() -> Self {
        Self {
            threads: 1,
            inner: None,
        }
    }

    /// Number of workers this pool fans out to (including the calling
    /// thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many workers would actually be used for `len` items at a minimum
    /// chunk size of `min_chunk` (small problems stay single-threaded —
    /// even parked-worker dispatch costs more than a 64-row GEMV saves).
    fn effective_workers(&self, len: usize, min_chunk: usize) -> usize {
        if self.threads <= 1 || len == 0 {
            return 1;
        }
        self.threads.min(len / min_chunk.max(1)).max(1)
    }

    /// Splits `out` into at most [`threads`](Self::threads) contiguous
    /// chunks and runs `f(chunk_offset, chunk)` on each, in parallel. Each
    /// element of `out` is written by exactly one worker; results are
    /// bit-identical to the single-threaded call as long as `f`'s work per
    /// element does not depend on the chunking (true for every kernel in
    /// this workspace: chunk boundaries select *which rows/columns* a
    /// worker computes, never *how*).
    pub fn run_chunks<F>(&self, out: &mut [f32], min_chunk: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let workers = self.effective_workers(out.len(), min_chunk);
        let Some(inner) = self.inner.as_ref().filter(|_| workers > 1) else {
            f(0, out);
            return;
        };
        let chunk = out.len().div_ceil(workers);
        dispatch(
            inner,
            out,
            chunk,
            chunk_trampoline::<F>,
            &raw const f as *const (),
        );
    }

    /// Runs `f(index, item)` over every item, partitioned across workers.
    /// Items are mutated independently (single writer each), so the result
    /// is identical to the sequential loop regardless of thread count. Used
    /// by the batch scheduler to advance independent decode sessions
    /// concurrently.
    pub fn run_tasks<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let workers = self.effective_workers(items.len(), 1);
        let Some(inner) = self.inner.as_ref().filter(|_| workers > 1) else {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        };
        let chunk = items.len().div_ceil(workers);
        dispatch(
            inner,
            items,
            chunk,
            tasks_trampoline::<T, F>,
            &raw const f as *const (),
        );
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::single()
    }
}

/// Clears the pool's dispatch flag even if the dispatch unwinds.
struct DispatchGuard<'p>(&'p PoolShared);

impl Drop for DispatchGuard<'_> {
    fn drop(&mut self) {
        self.0.dispatching.store(false, Ordering::Release);
    }
}

/// The dispatch core shared by `run_chunks` and `run_tasks`: partition
/// `data` into `chunk`-sized pieces, deposit all but the last into worker
/// mailboxes, run the last on the calling thread, and block until every
/// worker task has completed. Allocation-free. Falls back to inline
/// execution when another dispatch is already in flight on this pool
/// (nested or cross-thread use) — the result is identical by the
/// single-writer argument.
fn dispatch<T: Send>(
    inner: &PoolHandle,
    data: &mut [T],
    chunk: usize,
    kernel: RawKernel,
    ctx: *const (),
) {
    let shared = &*inner.shared;
    if shared.dispatching.swap(true, Ordering::Acquire) {
        // SAFETY: inline execution of the whole range; `ctx`/`data` are the
        // caller's live borrows.
        unsafe { kernel(ctx, data.as_mut_ptr() as *mut u8, 0, data.len()) };
        return;
    }
    let guard = DispatchGuard(shared);
    let worker_tasks = data.len().div_ceil(chunk.max(1)).saturating_sub(1);
    // Checked in release builds too, *before* `pending` is set or any task
    // is deposited: the window between a deposit and the completion wait
    // must be panic-free, or unwinding would free the borrows behind
    // in-flight tasks while workers still run them. Today's callers always
    // satisfy this (chunk = len.div_ceil(workers), workers ≤ threads), so
    // the fallback is dead code — but it keeps a future mis-sized `chunk`
    // a correctness non-event instead of a use-after-free.
    if worker_tasks > shared.mailboxes.len() {
        debug_assert!(false, "chunk too small for the worker count");
        // SAFETY: inline execution of the whole range; `ctx`/`data` are
        // the caller's live borrows.
        unsafe { kernel(ctx, data.as_mut_ptr() as *mut u8, 0, data.len()) };
        return;
    }
    lock(&shared.done).pending = worker_tasks;
    let mut rest = data;
    let mut offset = 0usize;
    let mut mailboxes = shared.mailboxes.iter();
    while rest.len() > chunk {
        let (head, tail) = rest.split_at_mut(chunk);
        let mailbox = mailboxes
            .next()
            .expect("worker_tasks <= mailboxes was checked above");
        lock(&mailbox.slot).task = Some(Task {
            kernel,
            ctx,
            base: head.as_mut_ptr() as *mut u8,
            offset,
            len: head.len(),
        });
        mailbox.wake.notify_one();
        offset += chunk;
        rest = tail;
    }
    // The last chunk runs on the calling thread; a panicking kernel must
    // still wait for the workers below before unwinding out.
    let base = rest.as_mut_ptr() as *mut u8;
    let len = rest.len();
    // SAFETY: `rest` is the final disjoint chunk; `ctx` is the caller's
    // live closure.
    let caller_result = catch_unwind(AssertUnwindSafe(|| unsafe {
        kernel(ctx, base, offset, len)
    }));
    let worker_panic = {
        let mut done = lock(&shared.done);
        while done.pending > 0 {
            done = shared
                .all_done
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        done.panic.take()
    };
    drop(guard);
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPool::single();
        let mut out = vec![0.0f32; 10];
        pool.run_chunks(&mut out, 1, |off, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (off + i) as f32 + 1.0;
            }
        });
        assert_eq!(out[0], 1.0);
        assert_eq!(out[9], 10.0);
    }

    #[test]
    fn chunked_results_match_sequential_for_every_thread_count() {
        let compute = |off: usize, chunk: &mut [f32]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let x = (off + i) as f32;
                *v = x * 0.5 - 3.0;
            }
        };
        let mut expected = vec![0.0f32; 1003];
        ThreadPool::single().run_chunks(&mut expected, 1, compute);
        for threads in [2, 3, 4, 8] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut out = vec![0.0f32; 1003];
            pool.run_chunks(&mut out, 1, compute);
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn small_problems_stay_single_threaded() {
        let pool = ThreadPool::new(ParallelOptions::threads(8));
        assert_eq!(pool.effective_workers(10, 64), 1);
        assert_eq!(pool.effective_workers(1024, 64), 8);
        assert_eq!(pool.effective_workers(0, 1), 1);
        // Every element still gets written.
        let mut out = vec![0.0f32; 10];
        pool.run_chunks(&mut out, 64, |_, chunk| chunk.fill(1.0));
        assert!(out.iter().all(|v| *v == 1.0));
    }

    #[test]
    fn run_tasks_visits_every_item_once() {
        for threads in [1, 2, 5] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut items = vec![0usize; 97];
            pool.run_tasks(&mut items, |i, item| *item = i + 1);
            for (i, item) in items.iter().enumerate() {
                assert_eq!(*item, i + 1, "{threads} threads, item {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        let _ = ParallelOptions::threads(0);
    }

    #[test]
    fn clones_share_the_same_workers() {
        let pool = ThreadPool::new(ParallelOptions::threads(3));
        let clone = pool.clone();
        assert_eq!(clone.threads(), 3);
        let (a, b) = (pool.inner.as_ref().unwrap(), clone.inner.as_ref().unwrap());
        assert!(Arc::ptr_eq(a, b), "clone must share the worker set");
        let mut out = vec![0.0f32; 256];
        clone.run_chunks(&mut out, 1, |_, chunk| chunk.fill(2.0));
        assert!(out.iter().all(|v| *v == 2.0));
    }

    #[test]
    fn nested_dispatch_on_the_same_pool_runs_inline() {
        // A kernel that (pathologically) re-enters its own pool must not
        // deadlock: the nested call detects the in-flight dispatch and
        // runs inline.
        let pool = ThreadPool::new(ParallelOptions::threads(2));
        let inner_pool = pool.clone();
        let mut out = vec![0.0f32; 64];
        pool.run_chunks(&mut out, 1, |off, chunk| {
            let mut local = vec![0.0f32; 8];
            inner_pool.run_chunks(&mut local, 1, |_, c| c.fill(1.0));
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (off + i) as f32 + local[0];
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
    }
}
