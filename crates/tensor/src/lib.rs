//! Numeric substrate for the SparseInfer reproduction.
//!
//! This crate provides the low-level building blocks every other crate in the
//! workspace is built on:
//!
//! * [`Vector`] and [`Matrix`] — dense, row-major `f32` containers sized for
//!   LLM decode workloads (matrix–vector products, not general BLAS).
//! * [`gemv`](mod@crate::gemv) — dense matrix–vector kernels (normal and
//!   transposed), the operation that dominates LLM decoding. Inner loops are
//!   chunked multi-accumulator form with a fixed reduction order shared by
//!   every execution path.
//! * [`workspace`](mod@crate::workspace) — recycled scratch buffers making
//!   steady-state decode allocation-free.
//! * [`pool`](mod@crate::pool) — a dependency-free persistent parked-worker
//!   thread pool that row-partitions kernels deterministically
//!   (bit-identical at any thread count) with allocation-free dispatch.
//! * [`sign`](mod@crate::sign) — the paper's key primitive: packing the sign bits
//!   of 32 consecutive `f32` elements into one `u32` word, plus the
//!   XOR/popcount machinery used by the training-free predictor.
//! * [`f16`](mod@crate::f16) and [`quant`](mod@crate::quant) — software half-precision
//!   and per-row INT8 quantization. Both preserve sign bits exactly, which is
//!   what makes the SparseInfer predictor quantization-robust (paper §IV-A).
//! * [`rng`](mod@crate::rng) — seeded Gaussian sampling (Box–Muller) so every
//!   experiment in the workspace is reproducible.
//! * [`stats`](mod@crate::stats) — histograms and moments used to regenerate the
//!   distribution plots (paper Fig. 2).
//!
//! # Example
//!
//! ```
//! use sparseinfer_tensor::{Matrix, Vector, gemv::gemv, sign::SignPack};
//!
//! let w = Matrix::from_fn(4, 64, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -1.0 });
//! let x = Vector::from_fn(64, |i| (i as f32) - 31.5);
//! let y = gemv(&w, &x);
//! assert_eq!(y.len(), 4);
//!
//! // Pack the sign bits of a row and of the input, as the CUDA kernel does.
//! let row_signs = SignPack::pack(w.row(0));
//! let x_signs = SignPack::pack(x.as_slice());
//! let negatives = row_signs.xor_popcount(&x_signs);
//! assert!(negatives <= 64);
//! ```

// `deny`, not `forbid`: the parked-worker pool needs one locally-allowed,
// heavily documented pocket of `unsafe` (feeding borrowed chunks to
// persistent threads — the same thing `std::thread::scope` does inside).
// Every other module rejects `unsafe` outright.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod f16;
pub mod gemv;
pub mod matrix;
pub mod pool;
pub mod quant;
pub mod rng;
pub mod sign;
pub mod stats;
pub mod vector;
pub mod workspace;

pub use f16::F16;
pub use matrix::Matrix;
pub use pool::{ParallelOptions, ThreadPool};
pub use quant::{BlockQuantizedMatrix, QuantizedMatrix};
pub use rng::Prng;
pub use sign::SignPack;
pub use vector::Vector;
pub use workspace::Workspace;

/// Errors produced by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// The operands of a product or element-wise operation disagree in length.
    DimensionMismatch {
        /// Length expected by the operation.
        expected: usize,
        /// Length actually provided.
        actual: usize,
    },
    /// A constructor was given a buffer whose length is not `rows * cols`.
    BadBuffer {
        /// Number of rows requested.
        rows: usize,
        /// Number of columns requested.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            ShapeError::BadBuffer { rows, cols, len } => {
                write!(
                    f,
                    "buffer of length {len} cannot hold a {rows}x{cols} matrix"
                )
            }
        }
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_display_is_lowercase_and_concise() {
        let e = ShapeError::DimensionMismatch {
            expected: 4,
            actual: 3,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 3");
        let e = ShapeError::BadBuffer {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert_eq!(e.to_string(), "buffer of length 5 cannot hold a 2x3 matrix");
    }

    #[test]
    fn error_type_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
