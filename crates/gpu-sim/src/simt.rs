//! Warp-level SIMT simulation of the paper's CUDA kernels.
//!
//! The [`latency`](crate::latency) module treats kernels as roofline
//! aggregates. This module goes one level down and *executes* the structure
//! of Listing 1 and of the sparse GEMV kernel at warp granularity — thread
//! blocks of 32×16 threads, one warp per matrix row, per-iteration coalesced
//! loads, XOR/popcount lanes, a shuffle-based warp reduction, and the
//! row-level skip test — counting instructions, memory transactions and
//! occupancy-limited cycles. It serves three purposes:
//!
//! 1. cross-validate the analytic kernel costs (the two models must agree
//!    within tens of percent);
//! 2. make the paper's scheduling claims checkable — e.g. §IV-B3: because
//!    sparsity is decided *per row* and one warp owns one row, there is no
//!    intra-warp divergence and "no need for additional load balancing";
//! 3. expose microarchitectural counters (transactions, active-warp
//!    fraction) that a roofline cannot.

use sparseinfer_predictor::SkipMask;

use crate::spec::GpuSpec;

/// Threads per warp (fixed by the architecture and by the sign-packing
/// width).
pub const WARP_SIZE: usize = 32;
/// Warps per thread block in the paper's kernels (32×16 threads).
pub const WARPS_PER_BLOCK: usize = 16;

/// Machine parameters for the cycle model.
#[derive(Debug, Clone, PartialEq)]
pub struct SimtMachine {
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Resident warps an SM can interleave (occupancy bound).
    pub warps_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Cycles to issue one ALU instruction per warp.
    pub alu_cycles: f64,
    /// Cycles a 128-byte coalesced DRAM transaction occupies the memory
    /// pipe (derived from bandwidth at simulation time).
    pub bytes_per_transaction: usize,
}

impl SimtMachine {
    /// Jetson Orin AGX GPU: 16 SMs (Ampere, 2048 CUDA cores), ~1.3 GHz.
    pub fn jetson_orin() -> Self {
        Self {
            sm_count: 16,
            warps_per_sm: 48,
            clock_ghz: 1.3,
            alu_cycles: 1.0,
            bytes_per_transaction: 128,
        }
    }
}

/// Counters produced by one simulated kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimtReport {
    /// Thread blocks launched.
    pub blocks: usize,
    /// Warps that did real work (not skipped rows).
    pub active_warps: usize,
    /// Warps that retired immediately (skipped rows).
    pub skipped_warps: usize,
    /// Warp-level ALU instructions issued (XOR, popcount, adds, shuffles,
    /// FMAs counted per warp, as the hardware issues them).
    pub warp_instructions: u64,
    /// 128-byte coalesced memory transactions.
    pub transactions: u64,
    /// Estimated kernel cycles under the max(compute, memory) pipe model.
    pub cycles: f64,
    /// Estimated latency in microseconds.
    pub latency_us: f64,
}

impl SimtReport {
    /// Fraction of launched warps that did real work — the load-balance
    /// statistic behind the paper's "no additional load balancing" claim.
    pub fn active_fraction(&self) -> f64 {
        let total = self.active_warps + self.skipped_warps;
        if total == 0 {
            0.0
        } else {
            self.active_warps as f64 / total as f64
        }
    }
}

/// Simulates the sparsity-prediction kernel of Listing 1 for a `k×d` gate
/// matrix: grid of `ceil(k/16)` blocks, one warp per row, each iteration
/// loading 32 packed sign words (one 128 B transaction), XOR+popcount+add,
/// then a 5-step shuffle reduction and the alpha test.
///
/// # Panics
///
/// Panics if `d` is not a multiple of 32.
pub fn simulate_predictor_kernel(
    d: usize,
    k: usize,
    machine: &SimtMachine,
    spec: &GpuSpec,
) -> SimtReport {
    assert!(
        d.is_multiple_of(32),
        "d must be a multiple of 32 for sign packing"
    );
    let words_per_row = d / 32;
    // Each thread consumes one word per iteration; a warp covers 32 words.
    let iterations = words_per_row.div_ceil(WARP_SIZE);
    let blocks = k.div_ceil(WARPS_PER_BLOCK);

    let mut warp_instructions = 0u64;
    let mut transactions = 0u64;
    for _row in 0..k {
        // Per iteration: one coalesced load of up to 32 words (128 B), one
        // XOR, one popcount, one accumulate.
        warp_instructions += iterations as u64 * 3;
        transactions += iterations as u64;
        // warp_reduce_sum: log2(32) = 5 shuffle+add pairs, then the alpha
        // compare on lane 0.
        warp_instructions += 5 * 2 + 1;
        // The input sign vector is shared across rows and L2-resident after
        // the first row; charge it once per block rather than per warp.
    }
    transactions += (blocks * words_per_row.div_ceil(machine.bytes_per_transaction / 4)) as u64;

    finish_report(blocks, k, 0, warp_instructions, transactions, machine, spec)
}

/// Simulates the sparse GEMV kernel of §IV-B3 on a real [`SkipMask`]: one
/// warp per row; a skipped warp issues only its flag check and retires;
/// active warps stream `cols` FP16 weights in coalesced transactions and
/// accumulate.
///
/// # Panics
///
/// Panics if `mask.len() != rows`.
pub fn simulate_sparse_gemv_kernel(
    rows: usize,
    cols: usize,
    mask: &SkipMask,
    machine: &SimtMachine,
    spec: &GpuSpec,
) -> SimtReport {
    assert_eq!(mask.len(), rows, "mask length");
    let blocks = rows.div_ceil(WARPS_PER_BLOCK);
    let weight_bytes_per_row = cols * 2; // FP16
    let transactions_per_row = weight_bytes_per_row.div_ceil(machine.bytes_per_transaction) as u64;
    // 32 lanes × fp16 elements per transaction; each lane: load+FMA.
    let iterations = cols.div_ceil(WARP_SIZE) as u64;

    let mut warp_instructions = 0u64;
    let mut transactions = 0u64;
    let mut active = 0usize;
    let mut skipped = 0usize;
    for r in 0..rows {
        warp_instructions += 1; // skip-flag test
        if mask.is_skipped(r) {
            skipped += 1;
            continue;
        }
        active += 1;
        warp_instructions += iterations * 2; // load + FMA per iteration
        warp_instructions += 5 * 2 + 1; // reduction + store
        transactions += transactions_per_row;
    }

    finish_report(
        blocks,
        active,
        skipped,
        warp_instructions,
        transactions,
        machine,
        spec,
    )
}

fn finish_report(
    blocks: usize,
    active_warps: usize,
    skipped_warps: usize,
    warp_instructions: u64,
    transactions: u64,
    machine: &SimtMachine,
    spec: &GpuSpec,
) -> SimtReport {
    // Compute pipe: instructions issue across SMs in parallel.
    let issue_slots = (machine.sm_count) as f64;
    let compute_cycles = warp_instructions as f64 * machine.alu_cycles / issue_slots;
    // Memory pipe: transactions are serialized by DRAM bandwidth.
    let bytes = transactions as f64 * machine.bytes_per_transaction as f64;
    let mem_seconds = bytes / spec.stream_bandwidth();
    let mem_cycles = mem_seconds * machine.clock_ghz * 1e9;

    let cycles = compute_cycles.max(mem_cycles);
    let latency_us = cycles / (machine.clock_ghz * 1e9) * 1e6 + spec.kernel_launch_s * 1e6;
    SimtReport {
        blocks,
        active_warps,
        skipped_warps,
        warp_instructions,
        transactions,
        cycles,
        latency_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::kernels;
    use sparseinfer_model::ModelConfig;

    fn setup() -> (SimtMachine, GpuSpec) {
        (SimtMachine::jetson_orin(), GpuSpec::jetson_orin_agx_64gb())
    }

    #[test]
    fn predictor_simt_agrees_with_roofline_model() {
        let (machine, spec) = setup();
        let cfg = ModelConfig::prosparse_13b_paper();
        let simt = simulate_predictor_kernel(cfg.hidden_dim, cfg.mlp_dim, &machine, &spec);
        let analytic = kernels::signbit_predictor(&cfg).latency_us(&spec);
        let ratio = simt.latency_us / analytic;
        assert!(
            (0.5..2.0).contains(&ratio),
            "SIMT {:.1} us vs roofline {analytic:.1} us",
            simt.latency_us
        );
    }

    #[test]
    fn predictor_kernel_shape_matches_listing1() {
        let (machine, spec) = setup();
        let r = simulate_predictor_kernel(5120, 13824, &machine, &spec);
        assert_eq!(r.blocks, 13824usize.div_ceil(16));
        assert_eq!(r.active_warps, 13824); // every row predicted
                                           // d/32 = 160 words per row → 5 iterations of 32 words per warp.
                                           // 3 instructions per iteration + 11 for reduce/compare = 26 per row.
        assert_eq!(r.warp_instructions, 13824 * (5 * 3 + 11));
    }

    #[test]
    fn sparse_gemv_skipped_warps_cost_one_instruction() {
        let (machine, spec) = setup();
        let rows = 1024;
        let cols = 512;
        let all =
            simulate_sparse_gemv_kernel(rows, cols, &SkipMask::all_dense(rows), &machine, &spec);
        let none =
            simulate_sparse_gemv_kernel(rows, cols, &SkipMask::all_skipped(rows), &machine, &spec);
        assert_eq!(none.active_warps, 0);
        assert_eq!(none.warp_instructions, rows as u64); // flag tests only
        assert_eq!(none.transactions, 0);
        assert!(all.warp_instructions > none.warp_instructions * 10);
    }

    #[test]
    fn no_load_imbalance_at_row_granularity() {
        // §IV-B3: row-level sparsity retires whole warps, so the active
        // fraction equals (1 − sparsity) exactly — no straggler lanes.
        let (machine, spec) = setup();
        let rows = 2000; // divisible by 10 so the fraction is exact
        let mask = SkipMask::from_fn(rows, |r| r % 10 != 0); // 90% sparse
        let r = simulate_sparse_gemv_kernel(rows, 1024, &mask, &machine, &spec);
        assert!((r.active_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ninety_percent_sparsity_cuts_most_transactions() {
        let (machine, spec) = setup();
        let rows = 13824;
        let cols = 5120;
        let dense =
            simulate_sparse_gemv_kernel(rows, cols, &SkipMask::all_dense(rows), &machine, &spec);
        let mask = SkipMask::from_fn(rows, |r| r % 10 != 0);
        let sparse = simulate_sparse_gemv_kernel(rows, cols, &mask, &machine, &spec);
        let ratio = sparse.transactions as f64 / dense.transactions as f64;
        assert!((ratio - 0.1).abs() < 0.01, "transaction ratio {ratio}");
        assert!(sparse.latency_us < dense.latency_us / 5.0);
    }

    #[test]
    fn both_kernels_are_memory_bound_on_orin() {
        // The paper's premise: decode kernels are bandwidth-limited.
        let (machine, spec) = setup();
        let cfg = ModelConfig::prosparse_13b_paper();
        let p = simulate_predictor_kernel(cfg.hidden_dim, cfg.mlp_dim, &machine, &spec);
        let compute_cycles = p.warp_instructions as f64 / machine.sm_count as f64;
        assert!(
            p.cycles > compute_cycles,
            "predictor should be memory-bound"
        );
    }
}
