//! Per-token energy estimation.
//!
//! The paper motivates SparseInfer with on-device inference (Jetson-class
//! SoCs), where the energy budget matters as much as latency. Decode-phase
//! energy on such devices is dominated by DRAM traffic — moving a byte from
//! LPDDR costs two orders of magnitude more than a MAC on it — so skipped
//! weight rows translate almost directly into energy savings. This module
//! prices the same kernel descriptors the latency model uses.
//!
//! Energy constants follow the usual architecture-literature figures for a
//! recent LPDDR5 SoC (≈ 12 pJ/byte DRAM, fractions of a pJ per on-chip op);
//! as with latency, *ratios* between engines are the meaningful output.

use crate::kernel::KernelDesc;
use crate::latency::TokenLatency;

/// Energy cost coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy per DRAM byte moved (picojoules).
    pub pj_per_dram_byte: f64,
    /// Energy per FP32 MAC on CUDA cores (picojoules).
    pub pj_per_fp32_mac: f64,
    /// Energy per FP16 MAC on tensor cores (picojoules).
    pub pj_per_tensor_mac: f64,
    /// Energy per 32-bit integer op (picojoules).
    pub pj_per_int_op: f64,
    /// Static (leakage + uncore) power in watts, charged over latency.
    pub static_watts: f64,
}

impl EnergyModel {
    /// Jetson-Orin-class coefficients.
    pub fn jetson_orin() -> Self {
        Self {
            pj_per_dram_byte: 12.0,
            pj_per_fp32_mac: 1.2,
            pj_per_tensor_mac: 0.4,
            pj_per_int_op: 0.3,
            static_watts: 5.0,
        }
    }

    /// Dynamic energy of one kernel in millijoules.
    pub fn kernel_mj(&self, k: &KernelDesc) -> f64 {
        let pj = (k.bytes_streamed + k.bytes_gathered) * self.pj_per_dram_byte
            + k.fp32_macs * self.pj_per_fp32_mac
            + k.tensor_macs * self.pj_per_tensor_mac
            + k.int_ops * self.pj_per_int_op;
        pj * 1e-9
    }

    /// Total per-token energy in millijoules given the aggregate traffic
    /// and the token latency (for the static term).
    pub fn token_mj(
        &self,
        dram_bytes: f64,
        fp32_macs: f64,
        tensor_macs: f64,
        int_ops: f64,
        latency: &TokenLatency,
    ) -> f64 {
        let dynamic_pj = dram_bytes * self.pj_per_dram_byte
            + fp32_macs * self.pj_per_fp32_mac
            + tensor_macs * self.pj_per_tensor_mac
            + int_ops * self.pj_per_int_op;
        let static_mj = self.static_watts * (latency.total_us() * 1e-6) * 1e3;
        dynamic_pj * 1e-9 + static_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::kernels;
    use crate::latency::{
        dense_token_latency, sparseinfer_token_latency, MlpStepSparsity, SparseVariant, DEFAULT_CTX,
    };
    use crate::spec::GpuSpec;
    use sparseinfer_model::ModelConfig;

    #[test]
    fn dram_dominates_kernel_energy_for_gemv() {
        let em = EnergyModel::jetson_orin();
        let k = kernels::dense_gemv(13824, 5120, "gate");
        let total = em.kernel_mj(&k);
        let dram_only = (k.bytes_streamed + k.bytes_gathered) * em.pj_per_dram_byte * 1e-9;
        assert!(dram_only / total > 0.5, "DRAM share {}", dram_only / total);
    }

    #[test]
    fn sparse_token_uses_less_energy_than_dense() {
        let em = EnergyModel::jetson_orin();
        let spec = GpuSpec::jetson_orin_agx_64gb();
        let cfg = ModelConfig::prosparse_13b_paper();

        let dense_lat = dense_token_latency(&spec, &cfg);
        // Dense traffic: all three MLP matrices + attention per layer.
        let d = cfg.hidden_dim as f64;
        let k = cfg.mlp_dim as f64;
        let layers = cfg.n_layers as f64;
        let dense_bytes = layers * (3.0 * d * k + 4.0 * d * d) * 2.0;
        let dense_mj = em.token_mj(dense_bytes, dense_bytes / 2.0, 0.0, 0.0, &dense_lat);

        let per_layer = vec![MlpStepSparsity::with_actual(0.90, 0.93); cfg.n_layers];
        let sparse_lat =
            sparseinfer_token_latency(&spec, &cfg, &per_layer, SparseVariant::fused(), DEFAULT_CTX);
        let sparse_bytes =
            layers * (3.0 * 0.09 * d * k + 4.0 * d * d) * 2.0 + layers * (k * d / 32.0 * 4.0);
        let sparse_mj = em.token_mj(
            sparse_bytes,
            sparse_bytes / 2.0,
            0.0,
            layers * k * d / 16.0,
            &sparse_lat,
        );

        assert!(
            sparse_mj < dense_mj * 0.75,
            "sparse {sparse_mj:.1} mJ vs dense {dense_mj:.1} mJ"
        );
    }

    #[test]
    fn static_term_scales_with_latency() {
        let em = EnergyModel::jetson_orin();
        let short = TokenLatency {
            attention_us: 1000.0,
            ..Default::default()
        };
        let long = TokenLatency {
            attention_us: 2000.0,
            ..Default::default()
        };
        let a = em.token_mj(0.0, 0.0, 0.0, 0.0, &short);
        let b = em.token_mj(0.0, 0.0, 0.0, 0.0, &long);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn predictor_energy_is_negligible_next_to_dense_gate() {
        let em = EnergyModel::jetson_orin();
        let cfg = ModelConfig::prosparse_13b_paper();
        let predictor = em.kernel_mj(&kernels::signbit_predictor(&cfg));
        let gate = em.kernel_mj(&kernels::dense_gemv(cfg.mlp_dim, cfg.hidden_dim, "gate"));
        assert!(
            predictor < gate / 10.0,
            "predictor {predictor} vs gate {gate}"
        );
    }
}
