//! Kernel cost descriptors and the roofline latency rule.

use sparseinfer_model::ModelConfig;

use crate::spec::GpuSpec;

/// The resource footprint of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Label for breakdowns.
    pub name: String,
    /// Bytes read/written as long contiguous streams.
    pub bytes_streamed: f64,
    /// Bytes read as row-granular gathers (sparse row visits).
    pub bytes_gathered: f64,
    /// Bitwise integer operations (XOR + popcount counted separately).
    pub int_ops: f64,
    /// FP32 MACs on CUDA cores.
    pub fp32_macs: f64,
    /// FP16 MACs on tensor cores.
    pub tensor_macs: f64,
}

impl KernelDesc {
    /// A kernel with no work (placeholder for disabled stages).
    pub fn empty(name: &str) -> Self {
        Self {
            name: name.into(),
            bytes_streamed: 0.0,
            bytes_gathered: 0.0,
            int_ops: 0.0,
            fp32_macs: 0.0,
            tensor_macs: 0.0,
        }
    }

    /// Roofline latency in seconds: launch overhead plus the slower of the
    /// memory pipe and the compute pipes.
    pub fn latency_s(&self, spec: &GpuSpec) -> f64 {
        let mem = self.bytes_streamed / spec.stream_bandwidth()
            + self.bytes_gathered / spec.gather_bandwidth();
        let compute = self.int_ops / spec.int_ops_per_s
            + self.fp32_macs / spec.fp32_macs_per_s
            + self.tensor_macs / spec.tensor_macs_per_s;
        spec.kernel_launch_s + mem.max(compute)
    }

    /// Latency in microseconds.
    pub fn latency_us(&self, spec: &GpuSpec) -> f64 {
        self.latency_s(spec) * 1e6
    }
}

/// Bytes per FP16 weight element.
pub const WEIGHT_BYTES: f64 = 2.0;
/// Bytes per FP32 activation element.
pub const ACT_BYTES: f64 = 4.0;

/// Builders for the kernels in the paper's pipeline, all per **one layer**
/// of `config` unless stated otherwise.
pub mod kernels {
    use super::*;

    /// Packing the input vector's sign bits (§IV-B1, decode-time part):
    /// reads `d` floats, writes `d/32` words.
    pub fn pack_x_signs(config: &ModelConfig) -> KernelDesc {
        let d = config.hidden_dim as f64;
        KernelDesc {
            name: "pack_x_signs".into(),
            bytes_streamed: d * ACT_BYTES + d / 32.0 * 4.0,
            bytes_gathered: 0.0,
            int_ops: d,
            fp32_macs: 0.0,
            tensor_macs: 0.0,
        }
    }

    /// The SparseInfer prediction kernel (Listing 1): streams the packed
    /// sign table (`k·d/32` words) and performs one XOR + one popcount per
    /// word.
    pub fn signbit_predictor(config: &ModelConfig) -> KernelDesc {
        let d = config.hidden_dim as f64;
        let k = config.mlp_dim as f64;
        let words = k * d / 32.0;
        KernelDesc {
            name: "signbit_predictor".into(),
            bytes_streamed: words * 4.0 + d / 32.0 * 4.0 + k * 4.0,
            bytes_gathered: 0.0,
            int_ops: 2.0 * words, // XOR + popc per packed word
            fp32_macs: 0.0,
            tensor_macs: 0.0,
        }
    }

    /// The DejaVu/PowerInfer prediction path: two FP16 GEMVs of total size
    /// `d·r + r·k` running on tensor cores, streaming the predictor weights.
    pub fn dejavu_predictor(config: &ModelConfig, rank: usize) -> KernelDesc {
        let macs = config.dejavu_predictor_ops_per_block(rank) as f64;
        KernelDesc {
            name: "dejavu_predictor".into(),
            bytes_streamed: macs * WEIGHT_BYTES,
            bytes_gathered: 0.0,
            int_ops: 0.0,
            fp32_macs: 0.0,
            tensor_macs: macs,
        }
    }

    /// A dense GEMV over a `k×d` FP16 weight matrix (streams the full
    /// matrix).
    pub fn dense_gemv(rows: usize, cols: usize, name: &str) -> KernelDesc {
        let bytes = rows as f64 * cols as f64 * WEIGHT_BYTES;
        KernelDesc {
            name: name.into(),
            bytes_streamed: bytes + cols as f64 * ACT_BYTES + rows as f64 * ACT_BYTES,
            bytes_gathered: 0.0,
            int_ops: 0.0,
            fp32_macs: rows as f64 * cols as f64,
            tensor_macs: 0.0,
        }
    }

    /// A sparse row-skipping GEMV: only `(1 - sparsity)·k` rows are visited,
    /// as row-granular gathers.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn sparse_gemv(rows: usize, cols: usize, sparsity: f64, name: &str) -> KernelDesc {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity {sparsity} out of [0,1]"
        );
        let active = rows as f64 * (1.0 - sparsity);
        KernelDesc {
            name: name.into(),
            bytes_streamed: cols as f64 * ACT_BYTES + rows as f64 * ACT_BYTES,
            bytes_gathered: active * cols as f64 * WEIGHT_BYTES,
            int_ops: rows as f64, // skip-flag test per row
            fp32_macs: active * cols as f64,
            tensor_macs: 0.0,
        }
    }

    /// One attention layer's projections (4 dense `d×d` GEMVs) plus KV-cache
    /// traffic at context length `ctx`, modeled as a single streamed bundle.
    pub fn attention_layer(config: &ModelConfig, ctx: usize) -> KernelDesc {
        let d = config.hidden_dim as f64;
        let proj_bytes = 4.0 * d * d * WEIGHT_BYTES;
        let kv_bytes = 2.0 * ctx as f64 * d * ACT_BYTES;
        KernelDesc {
            name: "attention_layer".into(),
            bytes_streamed: proj_bytes + kv_bytes,
            bytes_gathered: 0.0,
            int_ops: 0.0,
            fp32_macs: 4.0 * d * d + 2.0 * ctx as f64 * d,
            tensor_macs: 0.0,
        }
    }

    /// The LM head GEMV (vocab × d), once per token.
    pub fn lm_head(config: &ModelConfig) -> KernelDesc {
        dense_gemv(config.vocab_size, config.hidden_dim, "lm_head")
    }
}

#[cfg(test)]
mod tests {
    use super::kernels::*;
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::jetson_orin_agx_64gb()
    }

    fn cfg13b() -> ModelConfig {
        ModelConfig::prosparse_13b_paper()
    }

    #[test]
    fn empty_kernel_costs_only_launch() {
        let k = KernelDesc::empty("noop");
        assert!((k.latency_s(&spec()) - spec().kernel_launch_s).abs() < 1e-12);
    }

    #[test]
    fn predictor_kernel_lands_near_paper_70us() {
        // Paper §V-A1: 70 µs per layer on the 13B model.
        let us = signbit_predictor(&cfg13b()).latency_us(&spec());
        assert!(
            (45.0..=95.0).contains(&us),
            "SparseInfer predictor latency {us:.1} µs outside the 70 µs band"
        );
    }

    #[test]
    fn dejavu_predictor_is_roughly_3_to_4x_slower() {
        // Paper §V-A1: 3.66× predictor speedup for SparseInfer.
        let s = spec();
        let si = signbit_predictor(&cfg13b()).latency_us(&s);
        let dv = dejavu_predictor(&cfg13b(), 1024).latency_us(&s);
        let ratio = dv / si;
        assert!(
            (2.5..=5.0).contains(&ratio),
            "predictor latency ratio {ratio:.2} outside the 3.66× band"
        );
    }

    #[test]
    fn dejavu_predictor_is_compute_light_but_memory_heavy() {
        // The paper notes the FP16 predictor runs on tensor cores, so its
        // latency is dominated by streaming 38 MB of weights.
        let s = spec();
        let k = dejavu_predictor(&cfg13b(), 1024);
        let mem = k.bytes_streamed / s.stream_bandwidth();
        let compute = k.tensor_macs / s.tensor_macs_per_s;
        assert!(mem > 10.0 * compute);
    }

    #[test]
    fn sparse_gemv_cost_decreases_with_sparsity() {
        let s = spec();
        let dense = sparse_gemv(13824, 5120, 0.0, "g").latency_us(&s);
        let half = sparse_gemv(13824, 5120, 0.5, "g").latency_us(&s);
        let ninety = sparse_gemv(13824, 5120, 0.9, "g").latency_us(&s);
        assert!(dense > half && half > ninety);
    }

    #[test]
    fn sparse_gemv_at_high_sparsity_beats_dense_stream() {
        // Despite the gather penalty, 90% row skipping must win.
        let s = spec();
        let dense = dense_gemv(13824, 5120, "d").latency_us(&s);
        let sparse = sparse_gemv(13824, 5120, 0.9, "s").latency_us(&s);
        assert!(sparse < dense, "sparse {sparse:.1} vs dense {dense:.1}");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn sparse_gemv_rejects_bad_sparsity() {
        let _ = sparse_gemv(8, 8, 1.5, "bad");
    }
}
