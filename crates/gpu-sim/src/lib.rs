//! Analytic GPU cost model for the SparseInfer reproduction.
//!
//! The paper's latency results were measured on an NVIDIA Jetson Orin AGX
//! 64GB. No such device exists in this environment, so latency experiments
//! run against this cost model instead (see DESIGN.md §2). The model is the
//! standard roofline treatment of decode-phase LLM kernels, which are
//! overwhelmingly **memory-bandwidth bound**:
//!
//! ```text
//! kernel latency = launch overhead
//!                + max( bytes_moved / effective_bandwidth ,
//!                       ops / engine_throughput )
//! ```
//!
//! with three refinements that matter for this paper:
//!
//! * **streamed vs gathered traffic** — dense GEMVs stream whole matrices at
//!   high DRAM efficiency; sparse row-skipping GEMVs visit scattered rows at
//!   markedly lower efficiency (row granularity beats element granularity,
//!   but loses to a full stream);
//! * **engine split** — bitwise XOR/popcount runs on CUDA cores while the
//!   DejaVu predictor's FP16 GEMMs run on tensor cores (the paper notes this
//!   is why its 8.8× op reduction yields "only" 3.66× predictor speedup);
//! * **kernel-launch overhead and CKE** — per-kernel fixed cost, with
//!   [`timeline`] able to overlap steps 1 and 2 on concurrent streams (the
//!   paper's CKE discussion) or fuse them (the `+KF` variant).
//!
//! Calibration anchors (tested in [`latency`]): the SparseInfer predictor
//! costs ≈ 70 µs/layer on 13B dims, ~3.5–4× faster than the DejaVu
//! predictor, dense 13B decode sits in the 100–250 ms/token band with an
//! attention share near the paper's 38%/62% profile.
//!
//! # Example
//!
//! ```
//! use sparseinfer_gpu_sim::{spec::GpuSpec, latency};
//! use sparseinfer_model::ModelConfig;
//!
//! let spec = GpuSpec::jetson_orin_agx_64gb();
//! let cfg = ModelConfig::prosparse_13b_paper();
//! let dense = latency::dense_token_latency(&spec, &cfg);
//! assert!(dense.total_us() > 50_000.0); // decode is slow on an SoC
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod kernel;
pub mod latency;
pub mod simt;
pub mod spec;
pub mod timeline;

pub use kernel::KernelDesc;
pub use latency::{MlpStepSparsity, TokenLatency};
pub use simt::{SimtMachine, SimtReport};
pub use spec::GpuSpec;
