//! Per-token end-to-end latency assembly (the engine behind Fig. 4).
//!
//! A decode step is: per layer, the attention bundle plus the MLP pipeline
//! (with or without prediction), then the LM head. The MLP pipeline's cost
//! is driven by *measured* per-layer, per-step sparsity values produced by
//! the functional engines in `sparseinfer-sparse`, applied to the paper's
//! full model dimensions.

use sparseinfer_model::ModelConfig;

use crate::kernel::{kernels, KernelDesc, ACT_BYTES};
use crate::spec::GpuSpec;
use crate::timeline::{cke_latency_s, fuse, serial_latency_s};

/// Default decode context length used when assembling KV-cache traffic.
pub const DEFAULT_CTX: usize = 256;

/// Sparsity actually available to each MLP step of one layer.
///
/// `gate` comes from the predictor alone (step 1 runs before any exact
/// values exist); `up` and `down` may additionally include actual-sparsity
/// compensation (they are ≥ `gate` when `+AS` is on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpStepSparsity {
    /// Row sparsity applied to the gate projection.
    pub gate: f64,
    /// Row sparsity applied to the up projection.
    pub up: f64,
    /// Row sparsity applied to the down projection.
    pub down: f64,
}

impl MlpStepSparsity {
    /// Same sparsity for all three steps (prediction only, no compensation).
    pub fn uniform(s: f64) -> Self {
        Self {
            gate: s,
            up: s,
            down: s,
        }
    }

    /// Predicted sparsity for the gate, effective (predicted ∪ actual) for
    /// up/down — the `+AS` configuration.
    pub fn with_actual(predicted: f64, effective: f64) -> Self {
        Self {
            gate: predicted,
            up: effective,
            down: effective,
        }
    }
}

/// A per-token latency breakdown in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TokenLatency {
    /// Attention sub-blocks across all layers.
    pub attention_us: f64,
    /// MLP projections across all layers.
    pub mlp_us: f64,
    /// Sparsity prediction across all layers (zero for dense).
    pub predictor_us: f64,
    /// LM head.
    pub head_us: f64,
}

impl TokenLatency {
    /// Total per-token latency (µs).
    pub fn total_us(&self) -> f64 {
        self.attention_us + self.mlp_us + self.predictor_us + self.head_us
    }

    /// Total per-token latency (ms).
    pub fn total_ms(&self) -> f64 {
        self.total_us() / 1000.0
    }

    /// Fraction of the token spent in MLP work (including prediction) —
    /// comparable to the paper's 62% profiling figure for dense decoding.
    pub fn mlp_share(&self) -> f64 {
        (self.mlp_us + self.predictor_us) / self.total_us()
    }
}

fn attention_total(spec: &GpuSpec, config: &ModelConfig, ctx: usize) -> f64 {
    // The attention bundle plus the small per-layer kernels llama.cpp
    // launches around it (norms, RoPE, softmax, residual) — modeled as three
    // extra launches.
    let per_layer =
        kernels::attention_layer(config, ctx).latency_s(spec) + 3.0 * spec.kernel_launch_s;
    per_layer * config.n_layers as f64 * 1e6
}

/// Dense (llama.cpp-baseline) token latency at [`DEFAULT_CTX`].
pub fn dense_token_latency(spec: &GpuSpec, config: &ModelConfig) -> TokenLatency {
    dense_token_latency_at(spec, config, DEFAULT_CTX)
}

/// Dense token latency at an explicit context length.
pub fn dense_token_latency_at(spec: &GpuSpec, config: &ModelConfig, ctx: usize) -> TokenLatency {
    let k = config.mlp_dim;
    let d = config.hidden_dim;
    let gate = kernels::dense_gemv(k, d, "gate");
    let up = kernels::dense_gemv(k, d, "up");
    let mut h3 = KernelDesc::empty("h3_elementwise");
    h3.bytes_streamed = 3.0 * k as f64 * ACT_BYTES;
    let down = kernels::dense_gemv(k, d, "down");
    let per_layer = serial_latency_s(&[gate, up, h3, down], spec);
    TokenLatency {
        attention_us: attention_total(spec, config, ctx),
        mlp_us: per_layer * config.n_layers as f64 * 1e6,
        predictor_us: 0.0,
        head_us: kernels::lm_head(config).latency_s(spec) * 1e6,
    }
}

/// Execution switches for the SparseInfer latency model (the four Fig. 4
/// variants; `+AS` is encoded in the sparsity values themselves via
/// [`MlpStepSparsity::with_actual`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseVariant {
    /// Fuse steps 1–3 into one kernel (one launch, no h1/h2 round trips).
    pub kernel_fusion: bool,
    /// Run steps 1 and 2 on concurrent streams instead of sequentially
    /// (mutually exclusive with fusion and with actual-sparsity use; the
    /// paper's CKE discussion).
    pub concurrent_gate_up: bool,
}

impl SparseVariant {
    /// Sequential, fused — the paper's preferred configuration.
    pub fn fused() -> Self {
        Self {
            kernel_fusion: true,
            concurrent_gate_up: false,
        }
    }

    /// Sequential, unfused.
    pub fn sequential() -> Self {
        Self {
            kernel_fusion: false,
            concurrent_gate_up: false,
        }
    }

    /// CKE: gate and up overlapped on two streams.
    pub fn cke() -> Self {
        Self {
            kernel_fusion: false,
            concurrent_gate_up: true,
        }
    }
}

/// SparseInfer token latency from measured per-layer sparsity.
///
/// # Panics
///
/// Panics if `per_layer.len() != config.n_layers`.
pub fn sparseinfer_token_latency(
    spec: &GpuSpec,
    config: &ModelConfig,
    per_layer: &[MlpStepSparsity],
    variant: SparseVariant,
    ctx: usize,
) -> TokenLatency {
    assert_eq!(
        per_layer.len(),
        config.n_layers,
        "per-layer sparsity length"
    );
    let k = config.mlp_dim;
    let d = config.hidden_dim;

    let mut mlp_s = 0.0;
    let mut predictor_s = 0.0;
    for s in per_layer {
        predictor_s += kernels::pack_x_signs(config).latency_s(spec)
            + kernels::signbit_predictor(config).latency_s(spec);

        let gate = kernels::sparse_gemv(k, d, s.gate, "gate");
        let up = kernels::sparse_gemv(k, d, s.up, "up");
        let mut h3 = KernelDesc::empty("h3_elementwise");
        h3.bytes_streamed = 3.0 * k as f64 * ACT_BYTES;
        let down = kernels::sparse_gemv(k, d, s.down, "down");

        mlp_s += if variant.kernel_fusion {
            // Steps 1–3 in one kernel: one launch; X read once instead of
            // twice; h1/h2 never round-trip; h3 written once (kept in the
            // down kernel's input traffic).
            let mut fused = fuse(&[gate, up, h3], "gate+up+h3");
            fused.bytes_streamed -= d as f64 * ACT_BYTES; // second X load
            fused.bytes_streamed -= 4.0 * k as f64 * ACT_BYTES; // h1,h2 store+load
            serial_latency_s(&[fused, down], spec)
        } else if variant.concurrent_gate_up {
            cke_latency_s(&[gate], &[up], spec) + serial_latency_s(&[h3, down], spec)
        } else {
            serial_latency_s(&[gate, up, h3, down], spec)
        };
    }

    TokenLatency {
        attention_us: attention_total(spec, config, ctx),
        mlp_us: mlp_s * 1e6,
        predictor_us: predictor_s * 1e6,
        head_us: kernels::lm_head(config).latency_s(spec) * 1e6,
    }
}

/// PowerInfer-style token latency: DejaVu prediction (rank `rank`) plus
/// sequential, unfused sparse GEMVs at the trained predictor's sparsity.
///
/// # Panics
///
/// Panics if `per_layer.len() != config.n_layers`.
pub fn powerinfer_token_latency(
    spec: &GpuSpec,
    config: &ModelConfig,
    per_layer: &[MlpStepSparsity],
    rank: usize,
    ctx: usize,
) -> TokenLatency {
    assert_eq!(
        per_layer.len(),
        config.n_layers,
        "per-layer sparsity length"
    );
    let k = config.mlp_dim;
    let d = config.hidden_dim;

    let mut mlp_s = 0.0;
    let mut predictor_s = 0.0;
    for s in per_layer {
        predictor_s += kernels::dejavu_predictor(config, rank).latency_s(spec);
        let gate = kernels::sparse_gemv(k, d, s.gate, "gate");
        let up = kernels::sparse_gemv(k, d, s.up, "up");
        let mut h3 = KernelDesc::empty("h3_elementwise");
        h3.bytes_streamed = 3.0 * k as f64 * ACT_BYTES;
        let down = kernels::sparse_gemv(k, d, s.down, "down");
        mlp_s += serial_latency_s(&[gate, up, h3, down], spec);
    }

    TokenLatency {
        attention_us: attention_total(spec, config, ctx),
        mlp_us: mlp_s * 1e6,
        predictor_us: predictor_s * 1e6,
        head_us: kernels::lm_head(config).latency_s(spec) * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::jetson_orin_agx_64gb()
    }

    fn cfg() -> ModelConfig {
        ModelConfig::prosparse_13b_paper()
    }

    fn typical_si() -> Vec<MlpStepSparsity> {
        vec![MlpStepSparsity::with_actual(0.90, 0.93); 40]
    }

    fn typical_pi() -> Vec<MlpStepSparsity> {
        // The trained predictor misses more sparsity (lower recall) and has
        // no actual-sparsity compensation.
        vec![MlpStepSparsity::uniform(0.72); 40]
    }

    #[test]
    fn dense_13b_token_is_in_the_orin_band() {
        let t = dense_token_latency(&spec(), &cfg());
        let ms = t.total_ms();
        assert!((100.0..=260.0).contains(&ms), "dense token {ms:.1} ms");
    }

    #[test]
    fn dense_profile_matches_paper_split() {
        // Paper §III footnote: attention 38%, MLP 62% during decode.
        let t = dense_token_latency(&spec(), &cfg());
        let share = t.mlp_share();
        assert!((0.52..=0.72).contains(&share), "MLP share {share:.2}");
    }

    #[test]
    fn fig4_ordering_sparseinfer_beats_powerinfer_beats_dense() {
        let s = spec();
        let c = cfg();
        let dense = dense_token_latency(&s, &c).total_us();
        let si =
            sparseinfer_token_latency(&s, &c, &typical_si(), SparseVariant::fused(), DEFAULT_CTX)
                .total_us();
        let pi = powerinfer_token_latency(&s, &c, &typical_pi(), 1024, DEFAULT_CTX).total_us();

        let speedup_si = dense / si;
        let speedup_pi = dense / pi;
        assert!(
            (1.4..=2.6).contains(&speedup_si),
            "SparseInfer speedup {speedup_si:.2} outside the paper band (1.79×)"
        );
        assert!(speedup_pi > 1.0, "PowerInfer must beat dense");
        let ratio = si.min(pi) / si.max(pi);
        let si_over_pi = pi / si;
        assert!(
            si_over_pi > 1.05,
            "SparseInfer must beat PowerInfer (got {si_over_pi:.2}, inv {ratio:.2})"
        );
    }

    #[test]
    fn kernel_fusion_gain_is_positive_but_small() {
        // Paper: "the gain from the kernel fusion turned out to be
        // insignificant".
        let s = spec();
        let c = cfg();
        let fused =
            sparseinfer_token_latency(&s, &c, &typical_si(), SparseVariant::fused(), DEFAULT_CTX)
                .total_us();
        let seq = sparseinfer_token_latency(
            &s,
            &c,
            &typical_si(),
            SparseVariant::sequential(),
            DEFAULT_CTX,
        )
        .total_us();
        assert!(fused < seq);
        assert!(
            (seq - fused) / seq < 0.05,
            "fusion gain {:.3}",
            (seq - fused) / seq
        );
    }

    #[test]
    fn cke_overlap_is_no_worse_than_sequential() {
        let s = spec();
        let c = cfg();
        let seq = sparseinfer_token_latency(
            &s,
            &c,
            &typical_si(),
            SparseVariant::sequential(),
            DEFAULT_CTX,
        )
        .total_us();
        let cke =
            sparseinfer_token_latency(&s, &c, &typical_si(), SparseVariant::cke(), DEFAULT_CTX)
                .total_us();
        assert!(cke <= seq + 1e-6);
    }

    #[test]
    fn lower_sparsity_costs_more() {
        let s = spec();
        let c = cfg();
        let high = vec![MlpStepSparsity::uniform(0.92); 40];
        let low = vec![MlpStepSparsity::uniform(0.80); 40];
        let t_high = sparseinfer_token_latency(&s, &c, &high, SparseVariant::fused(), DEFAULT_CTX)
            .total_us();
        let t_low =
            sparseinfer_token_latency(&s, &c, &low, SparseVariant::fused(), DEFAULT_CTX).total_us();
        assert!(t_low > t_high);
    }

    #[test]
    #[should_panic(expected = "per-layer sparsity length")]
    fn wrong_layer_count_panics() {
        let _ = sparseinfer_token_latency(
            &spec(),
            &cfg(),
            &[MlpStepSparsity::uniform(0.9); 3],
            SparseVariant::fused(),
            DEFAULT_CTX,
        );
    }
}
