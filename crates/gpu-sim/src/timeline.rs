//! Kernel timelines: serial execution, two-stream CKE overlap, and fusion.
//!
//! §IV of the paper discusses two ways to run steps 1 (gate) and 2 (up):
//! concurrently on separate CUDA streams (CKE), or sequentially — the latter
//! enabling kernel fusion and, crucially, actual-sparsity compensation.
//! This module provides the timing composition rules for both.

use crate::kernel::KernelDesc;
use crate::spec::GpuSpec;

/// Total latency of kernels executed back-to-back on one stream.
pub fn serial_latency_s(kernels: &[KernelDesc], spec: &GpuSpec) -> f64 {
    kernels.iter().map(|k| k.latency_s(spec)).sum()
}

/// Latency of two kernel sequences running on concurrent streams (CKE).
///
/// Bandwidth is a shared resource on the Orin SoC, so pure `max()` is
/// optimistic for memory-bound kernels; the model charges the combined
/// memory time but lets launch overheads and compute overlap:
/// `max(streams' compute+launch, total memory time)`.
pub fn cke_latency_s(stream_a: &[KernelDesc], stream_b: &[KernelDesc], spec: &GpuSpec) -> f64 {
    let mem_total: f64 = stream_a
        .iter()
        .chain(stream_b)
        .map(|k| {
            k.bytes_streamed / spec.stream_bandwidth() + k.bytes_gathered / spec.gather_bandwidth()
        })
        .sum();
    let serial_a = serial_latency_s(stream_a, spec);
    let serial_b = serial_latency_s(stream_b, spec);
    serial_a.max(serial_b).max(mem_total)
}

/// Fuses kernels into a single launch: one launch overhead, summed work.
/// Used for the `+KF` variant (steps 1–3 in one kernel), which also removes
/// the intermediate activation round-trips — the caller subtracts those from
/// `bytes_streamed` before fusing.
pub fn fuse(kernels: &[KernelDesc], name: &str) -> KernelDesc {
    let mut out = KernelDesc::empty(name);
    for k in kernels {
        out.bytes_streamed += k.bytes_streamed;
        out.bytes_gathered += k.bytes_gathered;
        out.int_ops += k.int_ops;
        out.fp32_macs += k.fp32_macs;
        out.tensor_macs += k.tensor_macs;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::kernels::sparse_gemv;

    fn spec() -> GpuSpec {
        GpuSpec::jetson_orin_agx_64gb()
    }

    #[test]
    fn serial_is_sum_of_latencies() {
        let a = sparse_gemv(1024, 512, 0.5, "a");
        let b = sparse_gemv(1024, 512, 0.9, "b");
        let s = spec();
        let total = serial_latency_s(&[a.clone(), b.clone()], &s);
        assert!((total - (a.latency_s(&s) + b.latency_s(&s))).abs() < 1e-12);
    }

    #[test]
    fn cke_is_at_least_memory_bound_and_at_most_serial() {
        let a = vec![sparse_gemv(4096, 4096, 0.5, "a")];
        let b = vec![sparse_gemv(4096, 4096, 0.5, "b")];
        let s = spec();
        let cke = cke_latency_s(&a, &b, &s);
        let serial = serial_latency_s(&a, &s) + serial_latency_s(&b, &s);
        assert!(cke <= serial + 1e-12);
        // Memory-bound kernels share bandwidth: overlap saves at most the
        // launch overheads here.
        assert!(cke >= serial - 2.0 * s.kernel_launch_s - 1e-9);
    }

    #[test]
    fn fusion_single_launch_beats_separate_launches() {
        let a = sparse_gemv(256, 256, 0.0, "a");
        let b = sparse_gemv(256, 256, 0.0, "b");
        let s = spec();
        let fused = fuse(&[a.clone(), b.clone()], "a+b").latency_s(&s);
        let serial = serial_latency_s(&[a, b], &s);
        assert!(fused < serial);
        assert!((serial - fused - s.kernel_launch_s).abs() < 1e-9);
    }

    #[test]
    fn fuse_accumulates_all_work() {
        let a = sparse_gemv(128, 64, 0.5, "a");
        let b = sparse_gemv(128, 64, 0.25, "b");
        let f = fuse(&[a.clone(), b.clone()], "f");
        assert!((f.fp32_macs - (a.fp32_macs + b.fp32_macs)).abs() < 1e-9);
        assert!((f.bytes_gathered - (a.bytes_gathered + b.bytes_gathered)).abs() < 1e-9);
    }
}
