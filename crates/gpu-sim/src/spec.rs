//! Device specifications.

/// A GPU device model for the roofline cost estimates.
///
/// All bandwidth figures are in bytes per second; throughputs in operations
/// per second.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Peak DRAM bandwidth (bytes/s).
    pub dram_bytes_per_s: f64,
    /// Fraction of peak achieved by long contiguous streams (dense GEMV).
    pub stream_efficiency: f64,
    /// Fraction of peak achieved by row-granular gathers (sparse GEMV
    /// visiting a scattered subset of rows).
    pub gather_efficiency: f64,
    /// Integer (XOR/popcount) throughput on CUDA cores (ops/s).
    pub int_ops_per_s: f64,
    /// FP32 MAC throughput on CUDA cores (MACs/s).
    pub fp32_macs_per_s: f64,
    /// FP16 MAC throughput on tensor cores (MACs/s).
    pub tensor_macs_per_s: f64,
    /// Fixed kernel launch overhead (seconds).
    pub kernel_launch_s: f64,
}

impl GpuSpec {
    /// NVIDIA Jetson Orin AGX 64GB (the paper's platform): 204.8 GB/s
    /// LPDDR5 shared between CPU and GPU, Ampere GPU with 2048 CUDA cores
    /// and 64 tensor cores at ~1.3 GHz.
    pub fn jetson_orin_agx_64gb() -> Self {
        Self {
            name: "Jetson Orin AGX 64GB".into(),
            dram_bytes_per_s: 204.8e9,
            stream_efficiency: 0.75,
            gather_efficiency: 0.35,
            int_ops_per_s: 2.0e12,
            fp32_macs_per_s: 2.6e12,
            tensor_macs_per_s: 42.0e12,
            kernel_launch_s: 5.0e-6,
        }
    }

    /// NVIDIA Jetson Orin Nano 8GB (the smaller edge target a capacity
    /// plan usually asks about next): 68 GB/s LPDDR5 shared between CPU
    /// and GPU, Ampere GPU with 1024 CUDA cores and 32 tensor cores at
    /// ~0.625 GHz. Same architecture and efficiency profile as the AGX,
    /// one third of the bandwidth and roughly a quarter of the compute.
    pub fn jetson_orin_nano_8gb() -> Self {
        Self {
            name: "Jetson Orin Nano 8GB".into(),
            dram_bytes_per_s: 68.0e9,
            stream_efficiency: 0.75,
            gather_efficiency: 0.35,
            int_ops_per_s: 0.5e12,
            fp32_macs_per_s: 0.64e12,
            tensor_macs_per_s: 10.0e12,
            kernel_launch_s: 5.0e-6,
        }
    }

    /// Effective streamed bandwidth (bytes/s).
    pub fn stream_bandwidth(&self) -> f64 {
        self.dram_bytes_per_s * self.stream_efficiency
    }

    /// Effective gathered bandwidth (bytes/s).
    pub fn gather_bandwidth(&self) -> f64 {
        self.dram_bytes_per_s * self.gather_efficiency
    }

    /// Validates the spec (all quantities strictly positive, efficiencies in
    /// `(0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("dram_bytes_per_s", self.dram_bytes_per_s),
            ("int_ops_per_s", self.int_ops_per_s),
            ("fp32_macs_per_s", self.fp32_macs_per_s),
            ("tensor_macs_per_s", self.tensor_macs_per_s),
        ];
        for (name, v) in positive {
            if v <= 0.0 {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.kernel_launch_s < 0.0 {
            return Err("kernel_launch_s must be non-negative".into());
        }
        for (name, v) in [
            ("stream_efficiency", self.stream_efficiency),
            ("gather_efficiency", self.gather_efficiency),
        ] {
            if !(0.0..=1.0).contains(&v) || v == 0.0 {
                return Err(format!("{name} must be in (0, 1], got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_preset_is_valid() {
        let spec = GpuSpec::jetson_orin_agx_64gb();
        spec.validate().unwrap();
        assert!(spec.stream_bandwidth() < spec.dram_bytes_per_s);
        assert!(spec.gather_bandwidth() < spec.stream_bandwidth());
    }

    #[test]
    fn nano_preset_is_valid_and_strictly_slower_than_agx() {
        let nano = GpuSpec::jetson_orin_nano_8gb();
        nano.validate().unwrap();
        let agx = GpuSpec::jetson_orin_agx_64gb();
        assert!(nano.dram_bytes_per_s < agx.dram_bytes_per_s);
        assert!(nano.fp32_macs_per_s < agx.fp32_macs_per_s);
        assert!(nano.tensor_macs_per_s < agx.tensor_macs_per_s);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut spec = GpuSpec::jetson_orin_agx_64gb();
        spec.stream_efficiency = 1.5;
        assert!(spec.validate().is_err());
        let mut spec = GpuSpec::jetson_orin_agx_64gb();
        spec.dram_bytes_per_s = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = GpuSpec::jetson_orin_agx_64gb();
        spec.kernel_launch_s = -1.0;
        assert!(spec.validate().is_err());
    }
}
