//! **E1 — Table I**: number of operations for prediction and for the MLP
//! block, per decoder layer of ProSparse-Llama2-13B.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin table1_opcounts
//! ```
//!
//! The counts are closed-form in the model dimensions, so this reproduction
//! matches the paper exactly: dense MLP `3·d·k`, PowerInfer predictor
//! `d·r + r·k` (rank 1024), SparseInfer predictor `d·k/32` 32-bit XOR+popc,
//! sparse MLP `3·d·k·(1−0.92)`.

use sparseinfer::model::ModelConfig;
use sparseinfer::sparse::ops::table1;

fn main() {
    let cfg = ModelConfig::prosparse_13b_paper();
    let rows = table1(&cfg, cfg.target_sparsity, 1024);

    println!("Table I: Number of Operations for Prediction and MLP Block");
    println!(
        "(model: {}, sparsity {:.2}, DejaVu rank 1024)\n",
        cfg.name, cfg.target_sparsity
    );
    println!("{:<26} {:>16} {:>16}", "", "Prediction", "MLP Block");
    println!("{}", "-".repeat(60));
    for row in &rows {
        println!(
            "{:<26} {:>16} {:>16}",
            row.engine,
            format_sci(row.prediction_ops),
            format_sci(row.mlp_ops)
        );
    }

    println!("\nPaper reference:");
    println!("{:<26} {:>16} {:>16}", "llama.cpp (dense)", "0", "2.123e8");
    println!("{:<26} {:>16} {:>16}", "PowerInfer", "1.940e7", "1.699e7");
    println!(
        "{:<26} {:>16} {:>16}",
        "SparseInfer (proposed)", "2.211e6", "1.699e7"
    );

    let reduction = rows[1].prediction_ops as f64 / rows[2].prediction_ops as f64;
    println!(
        "\nSparseInfer prediction uses {reduction:.1}x fewer operations than PowerInfer \
         (and they are 32-bit XORs, not FP16 MACs)."
    );
}

fn format_sci(v: u64) -> String {
    if v == 0 {
        return "0".into();
    }
    let exp = (v as f64).log10().floor() as i32;
    let mantissa = v as f64 / 10f64.powi(exp);
    format!("{mantissa:.3}e{exp}")
}
