//! **E5 — Fig. 3**: per-layer precision and recall of the sign-bit
//! predictor on the 7B and 13B simulation models.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin fig3_precision_recall
//! ```
//!
//! Paper shape to reproduce: precision above ~99% in stabilized layers with
//! a visible dip in the early layers; recall high throughout.

use sparseinfer::eval::TaskSuite;
use sparseinfer::model::{MlpTrace, Model};
use sparseinfer::predictor::{
    AlphaSchedule, LayerMetrics, OraclePredictor, SignBitPredictor, SparsityPredictor,
};
use sparseinfer_bench::{build_sim_13b, build_sim_7b};

fn main() {
    for (label, model) in [
        ("ProSparse-7B-sim", build_sim_7b()),
        ("ProSparse-13B-sim", build_sim_13b()),
    ] {
        let metrics = measure(&model);
        println!("=== {label}: per-layer precision / recall (alpha = 1.00) ===");
        println!(
            "{:>5} {:>10} {:>10} {:>10}",
            "layer", "precision", "recall", "sparsity"
        );
        for (l, (p, r)) in metrics.precision_recall_series().iter().enumerate() {
            let c = metrics.layer(l);
            println!(
                "{l:>5} {:>10.4} {:>10.4} {:>10.3}{}",
                p,
                r,
                c.true_sparsity(),
                if l < 4 { "   <- early layer" } else { "" }
            );
        }
        let overall = metrics.overall();
        println!(
            "\noverall: precision {:.4}, recall {:.4}, F1 {:.4}\n",
            overall.precision(),
            overall.recall(),
            overall.f1()
        );

        // The paper's observation: early layers are measurably worse.
        let early: f64 = (0..4).map(|l| metrics.layer(l).precision()).sum::<f64>() / 4.0;
        let n = metrics.n_layers();
        let late: f64 = (n - 4..n)
            .map(|l| metrics.layer(l).precision())
            .sum::<f64>()
            / 4.0;
        println!("early-layer mean precision {early:.4} vs late-layer {late:.4}\n");
    }
}

fn measure(model: &Model) -> LayerMetrics {
    let suite = TaskSuite::gsm8k_syn(3, 17);
    let mut metrics = LayerMetrics::new(model.config().n_layers);
    let mut predictor = SignBitPredictor::from_model(model, AlphaSchedule::uniform(1.0));
    let mut oracle = OraclePredictor::from_model(model);
    for task in &suite.tasks {
        let trace = MlpTrace::capture(model, &task.tokens, 4);
        for s in trace.samples() {
            let predicted = predictor.predict(s.layer, &s.x);
            let truth = oracle.predict(s.layer, &s.x);
            metrics.record(s.layer, &predicted, &truth);
        }
    }
    metrics
}
