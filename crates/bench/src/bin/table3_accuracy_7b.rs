//! **E8 + E9 — Table III**: ProSparse-Llama2-7B(-sim) benchmark accuracy as
//! a function of alpha, plus the random-90% sanity check.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin table3_accuracy_7b
//! ```
//!
//! Paper shape to reproduce (Table III): the 7B model degrades *more* than
//! the 13B at alpha = 1.00 (average -6.45 vs -2.43) and likewise recovers to
//! within 1 point at alpha = 1.03.

use sparseinfer_bench::{build_sim_7b, run_accuracy_table, BASELINES_7B};

fn main() {
    let model = build_sim_7b();
    run_accuracy_table(
        &model,
        4096,
        BASELINES_7B,
        "Table III — ProSparse-Llama2-7B",
    );
    println!("Paper reference (average column): baseline 24.61; alpha 1.00 -> 18.16 (-6.45);");
    println!("1.01 -> 22.24; 1.02 -> 23.41; 1.03 -> 24.28 (-0.33).");
}
