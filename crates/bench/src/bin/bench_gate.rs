//! Bench-regression gate: compares a fresh `BENCH_*.json` (produced by a
//! `SPARSEINFER_BENCH_QUICK=1 SPARSEINFER_BENCH_OUT=<dir>` smoke run)
//! against the committed baseline of the same bench and **fails** (exit 1)
//! when any shared record slowed down by more than the allowed ratio.
//!
//! The default bound is deliberately loose (2.5×): CI runners are noisy and
//! the quick smoke times a single iteration, so the gate is a tripwire for
//! order-of-magnitude regressions (an accidental O(n²), a lost fast path,
//! a byte-count blow-up), not a microbenchmark police. Byte/count records
//! (`*_bytes`, `*_tokens`) are near-deterministic, so the ratio bounds
//! their *increases* tightly. The gate is deliberately **one-sided** —
//! only increases fail — so records whose failure mode is a *decrease*
//! (e.g. warm-prefix skipped tokens dropping to zero) are guarded inside
//! the bench binaries themselves with shape-independent asserts, not here.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--max-ratio R] [--min-delta D]
//! ```
//!
//! A record fails only when the ratio is exceeded **and** the absolute
//! regression is larger than `--min-delta` (default 50, in the record's
//! own unit): a 16 µs dispatch measurement wobbling to 45 µs under a
//! noisy single-iteration smoke is jitter, not a regression, while any
//! slowdown large enough to matter clears both bars.
//!
//! Records present only in the fresh run (new benches) pass; records
//! missing from the fresh run are reported as warnings but do not fail —
//! the committed file may carry full-mode-only measurements.
//!
//! **Per-host baselines.** Reports are stamped with a host fingerprint
//! (core count, or `SPARSEINFER_BENCH_HOST` — see
//! `sparseinfer_bench::host_fingerprint`), and timings only regress
//! meaningfully against a baseline from the same class of machine. When
//! both files carry a fingerprint and they differ, the gate prints the
//! comparison for the log but **passes unconditionally** (warn + exit 0):
//! a 16-core dev box must not be failed against a 1-core CI baseline, and
//! vice versa. The documented fallback for a new host class is to
//! regenerate the committed `BENCH_*.json` on that host (full mode) so
//! subsequent runs enforce again. Baselines predating the fingerprint
//! field are enforced as before.

use std::process::ExitCode;

use sparseinfer_bench::{parse_bench_host, parse_bench_json};

fn usage() -> ExitCode {
    eprintln!("usage: bench_gate <baseline.json> <fresh.json> [--max-ratio R] [--min-delta D]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_ratio = 2.5f64;
    let mut min_delta = 50.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-ratio" || args[i] == "--min-delta" {
            let Some(value) = args.get(i + 1) else {
                return usage();
            };
            let Ok(parsed) = value.parse::<f64>() else {
                return usage();
            };
            if args[i] == "--max-ratio" {
                max_ratio = parsed;
            } else {
                min_delta = parsed;
            }
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.len() != 2 || max_ratio <= 0.0 {
        return usage();
    }

    // Records plus the host fingerprint the report was generated on.
    type Parsed = (Vec<(String, f64)>, Option<String>);
    let read = |path: &str| -> Option<Parsed> {
        match std::fs::read_to_string(path) {
            Ok(json) => Some((parse_bench_json(&json), parse_bench_host(&json))),
            Err(e) => {
                eprintln!("bench_gate: cannot read {path}: {e}");
                None
            }
        }
    };
    let Some((baseline, baseline_host)) = read(&paths[0]) else {
        return ExitCode::FAILURE;
    };
    let Some((fresh, fresh_host)) = read(&paths[1]) else {
        return ExitCode::FAILURE;
    };
    if baseline.is_empty() {
        eprintln!("bench_gate: no records in baseline {}", paths[0]);
        return ExitCode::FAILURE;
    }
    // Timings are per-host: when both reports identify their host and
    // the fingerprints differ, ratios compare different machines, so the
    // run is informational only. (Fallback: regenerate the committed
    // baseline on this host class to re-arm enforcement.)
    let enforce = match (&baseline_host, &fresh_host) {
        (Some(b), Some(f)) if b != f => {
            eprintln!(
                "bench_gate: host mismatch — baseline from '{b}', fresh from '{f}'; \
                 reporting ratios without enforcement (regenerate the committed \
                 baseline on this host to re-arm the gate)"
            );
            false
        }
        _ => true,
    };

    println!(
        "bench_gate: {} (baseline) vs {} (fresh), max ratio {max_ratio:.2}x{}",
        paths[0],
        paths[1],
        if enforce {
            ""
        } else {
            " [advisory: host mismatch]"
        }
    );
    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "record", "baseline", "fresh", "ratio"
    );
    let mut failures = 0usize;
    let mut compared = 0usize;
    for (name, base) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("{name:<40} {base:>12.2} {:>12} {:>8}", "missing", "warn");
            continue;
        };
        if *base <= 0.0 {
            continue; // nothing meaningful to ratio against
        }
        compared += 1;
        let ratio = new / base;
        let regressed = ratio > max_ratio && new - base > min_delta;
        let verdict = if regressed {
            "FAIL"
        } else if ratio > max_ratio {
            "noise" // over-ratio but under the absolute floor
        } else {
            "ok"
        };
        if regressed {
            failures += 1;
        }
        println!("{name:<40} {base:>12.2} {new:>12.2} {ratio:>7.2}{verdict:>5}");
    }
    if compared == 0 {
        eprintln!("bench_gate: no shared records to compare");
        return ExitCode::FAILURE;
    }
    if !enforce {
        println!(
            "bench_gate: {compared} record(s) compared across different hosts — \
             advisory only, passing"
        );
        return ExitCode::SUCCESS;
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} record(s) regressed beyond {max_ratio:.2}x \
             — investigate before merging (or refresh the committed baseline \
             if the change is intentional)"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: {compared} record(s) within {max_ratio:.2}x");
    ExitCode::SUCCESS
}
