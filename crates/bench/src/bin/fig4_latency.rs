//! **E6 — Fig. 4** (plus ablation A1): end-to-end per-token decode latency
//! for llama.cpp (dense), PowerInfer, and four SparseInfer variants
//! (`base`, `+KF`, `+AS`, `+KF+AS`), sweeping `alpha` from 1.00 to 1.03,
//! for the 13B and 7B models.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin fig4_latency
//! ```
//!
//! Pipeline: per-layer predicted/effective sparsity is *measured* on the
//! scaled simulation models (real masks from real decodes), then applied to
//! the paper's full model dimensions inside the Jetson Orin AGX cost model.
//! Paper anchors: SparseInfer+KF+AS at alpha 1.00 ≈ 1.79×/1.74× over
//! llama.cpp (13B/7B) and ≈ 1.27×/1.30× over PowerInfer; speedups shrink
//! slightly as alpha grows; +AS matters, +KF barely.

use sparseinfer::gpu_sim::latency::{
    dense_token_latency, powerinfer_token_latency, sparseinfer_token_latency, MlpStepSparsity,
    SparseVariant, DEFAULT_CTX,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{MlpTrace, Model, ModelConfig};
use sparseinfer::predictor::dejavu::{TrainConfig, Trainer};
use sparseinfer_bench::{
    build_sim_13b, build_sim_7b, measure_predictor_sparsity, measure_sparsity, paper_schedule_for,
    ALPHA_GRID,
};

fn main() {
    let spec = GpuSpec::jetson_orin_agx_64gb();
    let decode_tokens = 24;

    for (paper_cfg, sim) in [
        (ModelConfig::prosparse_13b_paper(), build_sim_13b()),
        (ModelConfig::prosparse_7b_paper(), build_sim_7b()),
    ] {
        println!("=== Fig. 4: {} ===\n", paper_cfg.name);

        let dense = dense_token_latency(&spec, &paper_cfg);
        println!(
            "llama.cpp (dense):      {:>8.1} ms/token  (attention {:.1} ms, MLP {:.1} ms)",
            dense.total_ms(),
            dense.attention_us / 1000.0,
            dense.mlp_us / 1000.0
        );

        // PowerInfer: DejaVu predictor trained on a short trace of the sim
        // model; its delivered sparsity (no actual-sparsity compensation)
        // drives the cost model.
        let pi_sparsity = powerinfer_sparsity(&sim, decode_tokens);
        let pi = powerinfer_token_latency(&spec, &paper_cfg, &pi_sparsity, 1024, DEFAULT_CTX);
        println!(
            "PowerInfer:             {:>8.1} ms/token  ({:.2}x over llama.cpp, predictor {:.1} ms)\n",
            pi.total_ms(),
            dense.total_us() / pi.total_us(),
            pi.predictor_us / 1000.0
        );

        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            "alpha", "base", "+KF", "+AS", "+KF+AS"
        );
        println!("{}", "-".repeat(62));
        for alpha in ALPHA_GRID {
            let schedule = paper_schedule_for(alpha, sim.config().hidden_dim, paper_cfg.hidden_dim);
            let per_layer = measure_sparsity(&sim, schedule, decode_tokens);

            // Without actual sparsity every step sees only the predicted mask.
            let predicted_only: Vec<MlpStepSparsity> = per_layer
                .iter()
                .map(|s| MlpStepSparsity::uniform(s.gate))
                .collect();

            let t = |sp: &[MlpStepSparsity], variant: SparseVariant| {
                sparseinfer_token_latency(&spec, &paper_cfg, sp, variant, DEFAULT_CTX).total_ms()
            };
            let base = t(&predicted_only, SparseVariant::sequential());
            let kf = t(&predicted_only, SparseVariant::fused());
            let as_ = t(&per_layer, SparseVariant::sequential());
            let kfas = t(&per_layer, SparseVariant::fused());

            println!(
                "{:<8.2} {:>9.1} ms {:>9.1} ms {:>9.1} ms {:>9.1} ms   (speedup {:.2}x, vs PI {:.2}x)",
                alpha,
                base,
                kf,
                as_,
                kfas,
                dense.total_ms() / kfas,
                pi.total_ms() / kfas
            );
        }

        // A1 ablation: CKE overlap of steps 1 and 2 versus sequential.
        let per_layer = measure_sparsity(
            &sim,
            paper_schedule_for(1.0, sim.config().hidden_dim, paper_cfg.hidden_dim),
            decode_tokens,
        );
        let predicted_only: Vec<MlpStepSparsity> = per_layer
            .iter()
            .map(|s| MlpStepSparsity::uniform(s.gate))
            .collect();
        let seq = sparseinfer_token_latency(
            &spec,
            &paper_cfg,
            &predicted_only,
            SparseVariant::sequential(),
            DEFAULT_CTX,
        );
        let cke = sparseinfer_token_latency(
            &spec,
            &paper_cfg,
            &predicted_only,
            SparseVariant::cke(),
            DEFAULT_CTX,
        );
        println!(
            "\nA1 (CKE vs sequential, alpha 1.00, no AS): sequential {:.1} ms, CKE {:.1} ms",
            seq.total_ms(),
            cke.total_ms()
        );
        println!(
            "   (memory-bound kernels share DRAM: overlap saves little, and CKE forfeits\n    actual-sparsity compensation — the paper's argument for sequential execution)\n"
        );
    }

    println!("Paper reference (alpha 1.00, +KF+AS): 1.79x (13B) / 1.74x (7B) over llama.cpp;");
    println!("1.27x / 1.30x over PowerInfer. Expect the same ordering and similar factors.");
}

/// Trains the DejaVu baseline on the sim model and measures its delivered
/// per-layer sparsity.
fn powerinfer_sparsity(sim: &Model, decode_tokens: usize) -> Vec<MlpStepSparsity> {
    let trace = MlpTrace::capture(sim, &(1..=10).collect::<Vec<u32>>(), 6);
    let trainer = Trainer::new(TrainConfig {
        rank: 24,
        epochs: 8,
        ..TrainConfig::default()
    });
    let predictor = trainer.train(sim, &trace);
    measure_predictor_sparsity(sim, predictor, decode_tokens)
}
