//! **E4 — Fig. 2**: distributions of the MLP input `X`, a gate row
//! `W_gate,i`, and their element-wise product `Y = X ⊙ W_gate,i` across
//! layers of the 13B simulation model during few-shot-style inference.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin fig2_distributions
//! ```
//!
//! The paper's observations this must reproduce: all three distributions are
//! approximately Gaussian; `Y` is symmetric with near-equal positive and
//! negative mass (the predictor's foundational assumption); early layers
//! have `X` narrowly concentrated near zero.

use sparseinfer::eval::TaskSuite;
use sparseinfer::model::MlpTrace;
use sparseinfer::tensor::stats::{Histogram, Summary};
use sparseinfer_bench::build_sim_13b;

fn main() {
    let model = build_sim_13b();
    let suite = TaskSuite::gsm8k_syn(2, 8);
    let trace = MlpTrace::capture(&model, &suite.tasks[0].tokens, 4);

    let n_layers = model.config().n_layers;
    let show = [0usize, 1, n_layers / 2, n_layers - 1];

    println!("Fig. 2: distributions of X, W_gate,i and Y = X (*) W_gate,i");
    println!("(model: {}, 8-shot-style prompt)\n", model.config().name);

    for layer in show {
        let sample = trace
            .layer_samples(layer)
            .next()
            .expect("trace has samples for every layer");
        let x = sample.x.as_slice();
        let row = model.layers()[layer].mlp().w_gate().row(0);
        let y: Vec<f32> = x.iter().zip(row).map(|(a, b)| a * b).collect();

        let sx = Summary::from_slice(x);
        let sw = Summary::from_slice(row);
        let sy = Summary::from_slice(&y);

        println!("=== layer {layer} ===");
        println!(
            "X:        mean {:+.3}  std {:.3}  neg-frac {:.2}",
            sx.mean(),
            sx.std_dev(),
            sx.negative_fraction()
        );
        println!(
            "W_gate,0: mean {:+.4} std {:.4}  neg-frac {:.2}",
            sw.mean(),
            sw.std_dev(),
            sw.negative_fraction()
        );
        println!(
            "Y:        mean {:+.4} std {:.4}  neg-frac {:.2}  (symmetric ~0.5 expected)",
            sy.mean(),
            sy.std_dev(),
            sy.negative_fraction()
        );

        let span = 3.0 * sy.std_dev().max(1e-6);
        let mut h = Histogram::new(-span, span, 21);
        h.extend(y.iter().map(|v| *v as f64));
        println!("Y histogram:");
        print!("{}", h.render_ascii(40));
        println!();
    }

    println!("Early-layer pathology check (paper: X narrow and near zero in early layers):");
    for layer in [0, n_layers - 1] {
        let s = trace.x_summary(layer);
        println!(
            "  layer {layer:>2}: X mean {:+.3}, std {:.3}",
            s.mean(),
            s.std_dev()
        );
    }
}
