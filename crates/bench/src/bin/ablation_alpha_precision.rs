//! **A2 companion**: predictor precision/recall as a function of alpha —
//! the mechanism behind Tables II/III, shown at the predictor level.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin ablation_alpha_precision
//! ```
//!
//! Expected shape: raising alpha trades recall (missed sparsity → less
//! speedup) for precision (fewer harmful skips → better accuracy), with the
//! early layers benefiting most — which is why the paper applies
//! `alpha > 1` only there.

use sparseinfer::eval::TaskSuite;
use sparseinfer::model::MlpTrace;
use sparseinfer::predictor::{LayerMetrics, OraclePredictor, SignBitPredictor, SparsityPredictor};
use sparseinfer_bench::{build_sim_7b, paper_schedule_for, ALPHA_GRID, EARLY_LAYERS};

fn main() {
    let model = build_sim_7b();
    let suite = TaskSuite::gsm8k_syn(2, 23);
    let trace = MlpTrace::capture(&model, &suite.tasks[0].tokens, 4);
    let mut oracle = OraclePredictor::from_model(&model);

    println!(
        "predictor quality vs alpha ({}, paper-schedule on first {EARLY_LAYERS} layers)\n",
        model.config().name
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "alpha", "early prec", "early rec", "late prec", "late rec", "pred spars"
    );

    for alpha in ALPHA_GRID {
        let schedule = paper_schedule_for(alpha, model.config().hidden_dim, 4096);
        let mut predictor = SignBitPredictor::from_model(&model, schedule);
        let mut metrics = LayerMetrics::new(model.config().n_layers);
        let mut predicted_rows = 0u64;
        let mut total_rows = 0u64;
        for s in trace.samples() {
            let predicted = predictor.predict(s.layer, &s.x);
            let truth = oracle.predict(s.layer, &s.x);
            predicted_rows += predicted.skip_count() as u64;
            total_rows += predicted.len() as u64;
            metrics.record(s.layer, &predicted, &truth);
        }

        let band = |lo: usize, hi: usize| {
            let mut c = sparseinfer::predictor::ConfusionCounts::default();
            for l in lo..hi {
                c.merge(metrics.layer(l));
            }
            c
        };
        let early = band(0, EARLY_LAYERS.min(model.config().n_layers));
        let late = band(
            EARLY_LAYERS.min(model.config().n_layers),
            model.config().n_layers,
        );

        println!(
            "{alpha:>7.2} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.3}",
            early.precision(),
            early.recall(),
            late.precision(),
            late.recall(),
            predicted_rows as f64 / total_rows as f64
        );
    }

    println!("\nReading: precision climbs and recall/predicted-sparsity fall with alpha —");
    println!("the (speed, accuracy) trade the paper's DSE knob exposes. Late layers are");
    println!("untouched by the paper schedule, so their columns stay constant.");
}
