//! **E7 + E9 — Table II**: ProSparse-Llama2-13B(-sim) benchmark accuracy as
//! a function of alpha, plus the random-90% sanity check.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin table2_accuracy_13b
//! # quick mode: SPARSEINFER_QUICK=1 cargo run --release -p sparseinfer-bench --bin table2_accuracy_13b
//! ```
//!
//! Paper shape to reproduce (Table II): degradation is largest at
//! alpha = 1.00 and shrinks monotonically, becoming negligible (< 1 point)
//! at alpha = 1.03; random 90% skipping scores zero.

use sparseinfer_bench::{build_sim_13b, run_accuracy_table, BASELINES_13B};

fn main() {
    let model = build_sim_13b();
    run_accuracy_table(
        &model,
        5120,
        BASELINES_13B,
        "Table II — ProSparse-Llama2-13B",
    );
    println!("Paper reference (average column): baseline 37.76; alpha 1.00 -> 35.33 (-2.43);");
    println!("1.01 -> 36.15; 1.02 -> 37.04; 1.03 -> 37.49 (-0.27).");
}
