//! **E10 — §III footnote**: dense decode time split between self-attention
//! and MLP on ProSparse-Llama2-13B (paper profiling: 38% / 62%).
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin profile_split
//! ```

use sparseinfer::gpu_sim::latency::dense_token_latency_at;
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::ModelConfig;

fn main() {
    let spec = GpuSpec::jetson_orin_agx_64gb();
    let cfg = ModelConfig::prosparse_13b_paper();

    println!("Dense decode profile, {} on {}\n", cfg.name, spec.name);
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>10}",
        "ctx", "attn (ms)", "mlp (ms)", "attn %", "mlp %"
    );
    for ctx in [64usize, 256, 1024, 4096] {
        let t = dense_token_latency_at(&spec, &cfg, ctx);
        let attn_pct = t.attention_us / t.total_us() * 100.0;
        let mlp_pct = t.mlp_us / t.total_us() * 100.0;
        println!(
            "{ctx:>6} {:>12.1} {:>12.1} {:>9.1}% {:>9.1}%",
            t.attention_us / 1000.0,
            t.mlp_us / 1000.0,
            attn_pct,
            mlp_pct
        );
    }
    println!("\nPaper profiling on Jetson Orin AGX: attention 38%, MLP 62%.");
    println!("The MLP share is what SparseInfer attacks; attention stays dense.");
}
