//! **E2 — §V-A1**: predictor latency per layer on the Jetson Orin AGX cost
//! model — SparseInfer's XOR/popcount kernel versus PowerInfer's DejaVu
//! FP16 predictor (rank 1024), ProSparse-Llama2-13B dimensions.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin predictor_latency
//! ```
//!
//! Paper anchor: 70 µs per layer for SparseInfer, 3.66× faster than
//! PowerInfer. The speedup is far below the ~8.8× operation reduction
//! because the FP16 predictor runs on tensor cores while XORs run on CUDA
//! cores — in both cases the kernels are memory-bound.

use sparseinfer::gpu_sim::kernel::kernels;
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::ModelConfig;

fn main() {
    let spec = GpuSpec::jetson_orin_agx_64gb();
    let cfg = ModelConfig::prosparse_13b_paper();

    let pack = kernels::pack_x_signs(&cfg).latency_us(&spec);
    let si = kernels::signbit_predictor(&cfg).latency_us(&spec);
    let dv = kernels::dejavu_predictor(&cfg, 1024).latency_us(&spec);

    println!(
        "Predictor latency per layer ({} on {})\n",
        cfg.name, spec.name
    );
    println!("SparseInfer sign packing (X):   {pack:>9.1} us");
    println!("SparseInfer XOR/popc predictor: {si:>9.1} us   (paper: ~70 us)");
    println!("PowerInfer DejaVu rank 1024:    {dv:>9.1} us");
    println!("\nSpeedup: {:.2}x (paper: 3.66x)", dv / (si + pack));

    println!("\nPer-token totals over {} layers:", cfg.n_layers);
    println!(
        "  SparseInfer: {:>8.2} ms   PowerInfer: {:>8.2} ms",
        (si + pack) * cfg.n_layers as f64 / 1000.0,
        dv * cfg.n_layers as f64 / 1000.0
    );

    println!("\nOperation counts (for reference, Table I):");
    println!(
        "  SparseInfer {:.3e} 32-bit XOR+popc vs PowerInfer {:.3e} FP16 MACs",
        cfg.signbit_predictor_ops_per_block() as f64,
        cfg.dejavu_predictor_ops_per_block(1024) as f64
    );
}
