//! **E3 — §V-A2**: predictor memory usage, PowerInfer (DejaVu rank 1024)
//! versus SparseInfer packed sign bits, on ProSparse-Llama2-13B.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin memory_usage
//! ```

use sparseinfer::model::ModelConfig;
use sparseinfer::predictor::memory::{dejavu_bytes, memory_ratio, signbit_bytes, to_mib};

fn main() {
    let cfg = ModelConfig::prosparse_13b_paper();
    let rank = 1024;

    let dv = dejavu_bytes(&cfg, rank);
    let si = signbit_bytes(&cfg);

    println!(
        "Predictor memory usage ({} layers of {})\n",
        cfg.n_layers, cfg.name
    );
    println!(
        "PowerInfer (DejaVu rank {rank}):  ({}x{rank} + {rank}x{}) x 2 B x {} = {:>8.1} MB",
        cfg.hidden_dim,
        cfg.mlp_dim,
        cfg.n_layers,
        to_mib(dv)
    );
    println!(
        "SparseInfer (packed signs):    {}x{} words x 4 B x {}      = {:>8.1} MB",
        cfg.mlp_dim,
        cfg.hidden_dim / 32,
        cfg.n_layers,
        to_mib(si)
    );
    println!(
        "\nReduction: {:.2}x (paper: 4.38x; 1480 MB vs 337.5 MB)",
        memory_ratio(&cfg, rank)
    );

    let cfg7 = ModelConfig::prosparse_7b_paper();
    println!(
        "\nFor reference, {}: DejaVu {:.1} MB vs packed signs {:.1} MB ({:.2}x)",
        cfg7.name,
        to_mib(dejavu_bytes(&cfg7, rank)),
        to_mib(signbit_bytes(&cfg7)),
        memory_ratio(&cfg7, rank)
    );
}
