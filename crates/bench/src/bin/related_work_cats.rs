//! **A3 (related-work ablation, paper §II)**: ReLUfication + SparseInfer
//! versus CATS/TEAL-style threshold sparsification of a SiLU model.
//!
//! ```text
//! cargo run --release -p sparseinfer-bench --bin related_work_cats
//! ```
//!
//! Claims this checks qualitatively:
//! * SiLU alone has essentially zero exact sparsity (the motivation for
//!   ReLUfication);
//! * a calibrated magnitude threshold recovers sparsity from SiLU without
//!   fine-tuning, but it cannot skip the gate GEMV, so its *weight-traffic*
//!   saving is structurally capped at 2/3 of the MLP;
//! * SparseInfer on the ReLU-fied model skips all three projections and
//!   reaches higher total savings (the paper: CATS ~15% end-to-end speedup
//!   vs SparseInfer ~21% over the state of the art).

use sparseinfer::model::{generator::WeightGenerator, Activation, MlpTrace, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::sparse::cats::{cats_mlp_forward, CatsThresholds};
use sparseinfer::sparse::mlp::{sparse_mlp_forward, MlpOptions};
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::Prng;

fn main() {
    // One SiLU model and one ReLU-fied twin with identical dimensions.
    let mut cfg = ModelConfig::sim_7b();
    cfg.vocab_size = 512;
    let mut silu_cfg = cfg.clone();
    silu_cfg.activation = Activation::Silu;
    let silu_model = WeightGenerator::new(&silu_cfg, 71).build();
    let relu_model = WeightGenerator::new(&cfg, 71).build();

    let trace = MlpTrace::capture(&silu_model, &(1..=10).collect::<Vec<u32>>(), 4);

    // Intrinsic SiLU sparsity (exact zeros).
    let intrinsic: f64 = {
        let mut total = 0usize;
        let mut zeros = 0usize;
        for s in trace.samples() {
            for z in s.preact.iter() {
                total += 1;
                if Activation::Silu.apply(*z) == 0.0 {
                    zeros += 1;
                }
            }
        }
        zeros as f64 / total as f64
    };
    println!("intrinsic SiLU exact-zero sparsity: {intrinsic:.4}  (paper: ~0, the ReLUfication motivation)\n");

    // CATS at several calibrated sparsity targets vs SparseInfer.
    let mut rng = Prng::seed(72);
    let x = sparseinfer::tensor::Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.6, 1.0) as f32);
    let layer = cfg.n_layers - 1;

    println!(
        "{:<28} {:>10} {:>16} {:>14}",
        "method", "sparsity", "weight bytes", "vs dense"
    );
    let mut dense_ops = OpCounter::default();
    let _ = sparse_mlp_forward(
        relu_model.layers()[layer].mlp(),
        &x,
        &sparseinfer::predictor::SkipMask::all_dense(cfg.mlp_dim),
        MlpOptions {
            kernel_fusion: false,
            actual_sparsity: false,
        },
        &mut dense_ops,
    );
    println!(
        "{:<28} {:>10.3} {:>16} {:>14}",
        "dense (llama.cpp)", 0.0, dense_ops.weight_bytes_loaded, "1.000"
    );

    for target in [0.5, 0.7, 0.9] {
        let thresholds = CatsThresholds::calibrate(&trace, Activation::Silu, target);
        let mut ops = OpCounter::default();
        let out = cats_mlp_forward(
            silu_model.layers()[layer].mlp(),
            &x,
            thresholds.threshold(layer),
            &mut ops,
        );
        println!(
            "{:<28} {:>10.3} {:>16} {:>14.3}",
            format!("CATS-style (target {target:.1})"),
            out.sparsity,
            ops.weight_bytes_loaded,
            ops.weight_bytes_loaded as f64 / dense_ops.weight_bytes_loaded as f64
        );
    }

    let mut predictor = SignBitPredictor::from_model(&relu_model, AlphaSchedule::uniform(1.0));
    let mask = predictor.predict(layer, &x);
    let mut ops = OpCounter::default();
    let out = sparse_mlp_forward(
        relu_model.layers()[layer].mlp(),
        &x,
        &mask,
        MlpOptions::default(),
        &mut ops,
    );
    println!(
        "{:<28} {:>10.3} {:>16} {:>14.3}",
        "SparseInfer (ReLU-fied)",
        out.effective_sparsity,
        ops.weight_bytes_loaded,
        ops.weight_bytes_loaded as f64 / dense_ops.weight_bytes_loaded as f64
    );

    println!("\nStructural floor for threshold methods: the gate GEMV (1/3 of MLP weight");
    println!("traffic) is always paid; SparseInfer's predictor skips it too.");
}
