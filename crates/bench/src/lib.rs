//! Shared plumbing for the experiment binaries that regenerate every table
//! and figure of the SparseInfer paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §4 for
//! the index); this library holds the pieces they share: standard model
//! construction, trace capture, per-alpha sparsity measurement, and table
//! formatting.

use sparseinfer::gpu_sim::latency::MlpStepSparsity;
use sparseinfer::model::generator::WeightGenerator;
use sparseinfer::model::{Model, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SparsityPredictor};
use sparseinfer::sparse::engine::{Engine, EngineBuilder, EngineOptions};
use sparseinfer::sparse::request::{generate, GenerateRequest};

/// Seed shared by all experiment binaries so results are reproducible and
/// mutually consistent.
pub const EXPERIMENT_SEED: u64 = 20250331;

/// Number of leading layers the paper applies `alpha > 1` to.
pub const EARLY_LAYERS: usize = 20;

/// The alpha grid of Fig. 4 / Tables II–III.
pub const ALPHA_GRID: [f64; 4] = [1.00, 1.01, 1.02, 1.03];

/// Builds the scaled simulation model standing in for ProSparse-Llama2-13B.
pub fn build_sim_13b() -> Model {
    let mut cfg = ModelConfig::sim_13b();
    cfg.vocab_size = 512; // covers the byte tokenizer's 259 ids
    WeightGenerator::new(&cfg, EXPERIMENT_SEED).build()
}

/// Builds the scaled simulation model standing in for ProSparse-Llama2-7B.
pub fn build_sim_7b() -> Model {
    let mut cfg = ModelConfig::sim_7b();
    cfg.vocab_size = 512;
    WeightGenerator::new(&cfg, EXPERIMENT_SEED + 1).build()
}

/// Maps a paper alpha onto the scaled simulation model, preserving the
/// *statistical strength* of the threshold shift.
///
/// The decision rule `alpha·N_pos < N_neg` moves the skip threshold by
/// `≈ d·(alpha−1)/2` counts, while the count noise is `≈ sqrt(d)/2`; the
/// shift measured in noise units is therefore `(alpha−1)·sqrt(d)`. To make
/// `alpha = 1.03` mean the same thing on a `d = 448` simulacrum as on the
/// paper's `d = 5120` model, the sim uses
/// `1 + (alpha−1)·sqrt(d_paper/d_sim)` (documented in DESIGN.md §2).
pub fn sim_alpha(paper_alpha: f64, sim_dim: usize, paper_dim: usize) -> f64 {
    1.0 + (paper_alpha - 1.0) * (paper_dim as f64 / sim_dim as f64).sqrt()
}

/// The paper-style alpha schedule on a simulation model standing in for a
/// paper model of hidden dimension `paper_dim`: the (dimension-corrected)
/// `alpha` on the first [`EARLY_LAYERS`] layers, 1.0 after.
pub fn paper_schedule_for(alpha: f64, sim_dim: usize, paper_dim: usize) -> AlphaSchedule {
    AlphaSchedule::early_layers(sim_alpha(alpha, sim_dim, paper_dim), EARLY_LAYERS)
}

/// Measures per-layer (predicted, effective) sparsity of the sign-bit
/// predictor on `model` at a given schedule by decoding `tokens` greedy
/// tokens from a fixed prompt.
pub fn measure_sparsity(
    model: &Model,
    schedule: AlphaSchedule,
    tokens: usize,
) -> Vec<MlpStepSparsity> {
    let mut engine = EngineBuilder::new(model)
        .signbit(schedule)
        .options(EngineOptions::sparseinfer())
        .build()
        .expect("signbit predictor covers every model layer");
    let prompt: Vec<u32> = (1..=8).collect();
    let _ = generate(
        engine.as_mut(),
        &GenerateRequest::new(&prompt).max_new(tokens),
    )
    .expect("non-empty prompt");
    let stats = engine.stats().expect("sparse engine has stats");
    let predicted = stats.mean_predicted();
    let effective = stats.mean_effective();
    predicted
        .iter()
        .zip(&effective)
        .map(|(p, e)| MlpStepSparsity::with_actual(*p, *e))
        .collect()
}

/// Measures per-layer sparsity delivered by an arbitrary predictor without
/// actual-sparsity compensation (the PowerInfer path).
pub fn measure_predictor_sparsity<P: SparsityPredictor + 'static>(
    model: &Model,
    predictor: P,
    tokens: usize,
) -> Vec<MlpStepSparsity> {
    let mut engine = EngineBuilder::new(model)
        .predictor(Box::new(predictor))
        .options(EngineOptions::base())
        .build()
        .expect("predictor covers every model layer");
    let prompt: Vec<u32> = (1..=8).collect();
    let _ = generate(
        engine.as_mut(),
        &GenerateRequest::new(&prompt).max_new(tokens),
    )
    .expect("non-empty prompt");
    engine
        .stats()
        .expect("sparse engine has stats")
        .mean_predicted()
        .iter()
        .map(|p| MlpStepSparsity::uniform(*p))
        .collect()
}

/// Right-aligns a float into a fixed-width cell.
pub fn cell(v: f64, width: usize, precision: usize) -> String {
    format!("{v:>width$.precision$}")
}

/// Times `f` over `iters` runs (after a short warmup), prints the mean in
/// microseconds, and returns it — the self-timed backbone of the bench
/// binaries (criterion is unavailable offline).
pub fn time_us<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("{name:<44} {us:>12.2} us/iter");
    us
}

/// Scales an iteration count down to 1 when `SPARSEINFER_BENCH_QUICK` is
/// set — the CI smoke mode that keeps the bench binaries compiling *and
/// running* without paying for stable timings.
pub fn bench_iters(iters: usize) -> usize {
    if std::env::var_os("SPARSEINFER_BENCH_QUICK").is_some() {
        1
    } else {
        iters
    }
}

/// The host fingerprint stamped into every `BENCH_*.json` report.
///
/// Timings are only comparable between runs on the same class of machine,
/// so the regression gate keys its enforcement on this string: core count
/// by default (`"4c"`), overridable with `SPARSEINFER_BENCH_HOST` when two
/// hosts with equal core counts should still be told apart (or when CI
/// wants a stable label across runner generations).
pub fn host_fingerprint() -> String {
    if let Ok(host) = std::env::var("SPARSEINFER_BENCH_HOST") {
        if !host.is_empty() {
            return host;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!("{cores}c")
}

/// One machine-readable benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Stable measurement name (snake_case).
    pub name: String,
    /// Iterations timed.
    pub iters: usize,
    /// Mean microseconds per iteration.
    pub us_per_iter: f64,
    /// Speedup relative to the run's dense/scalar baseline, when the
    /// measurement has one.
    pub speedup_over_dense: Option<f64>,
    /// Kernel thread count the measurement ran with.
    pub threads: usize,
}

/// Collects [`BenchRecord`]s and writes them as a `BENCH_<name>.json` file
/// at the workspace root, so the perf trajectory is tracked across PRs in
/// version control alongside the human-readable output.
#[derive(Debug)]
pub struct BenchReport {
    bench: String,
    host: String,
    notes: Vec<String>,
    records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Starts a report for the bench binary `bench` (e.g. `"kernels"`),
    /// stamped with this host's fingerprint (see [`host_fingerprint`]).
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            host: host_fingerprint(),
            notes: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Attaches a free-text caveat to the report (measurement conditions a
    /// reader of the committed JSON needs — e.g. that multi-thread rows on
    /// a 1-core container time oversubscription, not parallel speedup).
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Records one measurement.
    pub fn record(
        &mut self,
        name: &str,
        iters: usize,
        us_per_iter: f64,
        speedup_over_dense: Option<f64>,
        threads: usize,
    ) {
        self.records.push(BenchRecord {
            name: name.to_string(),
            iters,
            us_per_iter,
            speedup_over_dense,
            threads,
        });
    }

    /// Records one measurement whose value is not a timing — byte counts,
    /// token counts, ratios. The value still lands in the `us_per_iter`
    /// JSON column (the report's single generic value field; such records
    /// name their unit, e.g. `*_bytes`), so the bench-regression gate
    /// bounds it with the same ratio check as the timings.
    pub fn record_value(&mut self, name: &str, iters: usize, value: f64) {
        self.record(name, iters, value, None, 1);
    }

    /// Times `f`, prints the human line, and records it in one move.
    pub fn time<T>(
        &mut self,
        name: &str,
        iters: usize,
        threads: usize,
        speedup_over_dense: Option<f64>,
        f: impl FnMut() -> T,
    ) -> f64 {
        let us = time_us(name, iters, f);
        self.record(name, iters, us, speedup_over_dense, threads);
        us
    }

    /// Serializes the report as JSON (dependency-free; names are plain
    /// snake_case ASCII).
    pub fn to_json(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.bench));
        out.push_str(&format!("  \"host\": \"{}\",\n", escape(&self.host)));
        out.push_str("  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape(note)));
        }
        out.push_str("],\n");
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let speedup = match r.speedup_over_dense {
                Some(s) => format!("{s:.4}"),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"us_per_iter\": {:.4}, \"speedup_over_dense\": {}, \"threads\": {}}}{}\n",
                r.name,
                r.iters,
                r.us_per_iter,
                speedup,
                r.threads,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<bench>.json` at the workspace root and reports the
    /// path on stdout. Failures are printed, not fatal — a read-only
    /// checkout still gets the human output. Skipped under
    /// `SPARSEINFER_BENCH_QUICK` so the 1-iteration CI smoke run cannot
    /// clobber the version-controlled perf trajectory with timing noise.
    ///
    /// When `SPARSEINFER_BENCH_OUT` names a directory, the report is
    /// *additionally* written there — in quick mode too. That is the CI
    /// hand-off: the smoke run drops fresh JSON into the out dir, and the
    /// `bench_gate` binary compares it against the committed baselines.
    pub fn write(&self) {
        if let Some(dir) = std::env::var_os("SPARSEINFER_BENCH_OUT") {
            let dir = std::path::PathBuf::from(dir);
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("BENCH_{}.json", self.bench));
            match std::fs::write(&path, self.to_json()) {
                Ok(()) => println!("\nwrote fresh copy {}", path.display()),
                Err(e) => println!("\ncould not write {}: {e}", path.display()),
            }
        }
        if std::env::var_os("SPARSEINFER_BENCH_QUICK").is_some() {
            println!("\nquick mode: not overwriting BENCH_{}.json", self.bench);
            return;
        }
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.bench));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => println!("\ncould not write {}: {e}", path.display()),
        }
    }
}

/// Extracts `(name, us_per_iter)` pairs from a `BENCH_*.json` report — the
/// inverse of [`BenchReport::to_json`], used by the `bench_gate`
/// regression gate. Built on the workspace's shared dependency-free
/// [`sparseinfer::json`] parser; tolerant of unknown fields, records
/// missing either key are skipped, and unparseable input yields no
/// records rather than an error (the gate then reports the empty
/// baseline/fresh set itself).
pub fn parse_bench_json(json: &str) -> Vec<(String, f64)> {
    use sparseinfer::json::Json;
    let Ok(doc) = Json::parse(json) else {
        return Vec::new();
    };
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .unwrap_or_default();
    records
        .iter()
        .filter_map(|r| {
            let name = r.get("name")?.as_str()?;
            let value = r.get("us_per_iter")?.as_f64()?;
            Some((name.to_string(), value))
        })
        .collect()
}

/// Extracts the `host` fingerprint from a `BENCH_*.json` report, or `None`
/// for reports written before the field existed (or unparseable input).
/// The `bench_gate` binary uses this to decide whether a committed
/// baseline was measured on the same class of machine as the fresh run.
pub fn parse_bench_host(json: &str) -> Option<String> {
    use sparseinfer::json::Json;
    let doc = Json::parse(json).ok()?;
    doc.get("host")?.as_str().map(str::to_string)
}

/// Baseline benchmark scores from the paper's accuracy tables.
#[derive(Debug, Clone, Copy)]
pub struct PaperBaselines {
    /// GSM8K baseline score.
    pub gsm8k: f64,
    /// BBH baseline score.
    pub bbh: f64,
}

/// Table II baselines (ProSparse-Llama2-13B).
pub const BASELINES_13B: PaperBaselines = PaperBaselines {
    gsm8k: 30.71,
    bbh: 44.80,
};
/// Table III baselines (ProSparse-Llama2-7B).
pub const BASELINES_7B: PaperBaselines = PaperBaselines {
    gsm8k: 13.42,
    bbh: 35.80,
};

/// Per-suite outcome of one engine configuration in the accuracy protocol.
#[derive(Debug, Clone, Copy)]
pub struct SuiteScore {
    /// Mean teacher-forced token match rate over tasks.
    pub match_rate: f64,
    /// `baseline × match_rate`, the paper-style benchmark score.
    pub score: f64,
}

/// Teacher-forced accuracy of one engine over a suite: the prompt is
/// prefilled densely (the paper exploits sparsity only in decode), then each
/// gold position is scored by whether the engine's argmax reproduces the
/// dense engine's token, with the gold token forced afterwards. Delegates
/// to [`sparseinfer::eval::teacher_forced_engine_matches`].
pub fn teacher_forced_suite_score(
    engine: &mut dyn Engine,
    suite: &sparseinfer::eval::TaskSuite,
    gold: &[Vec<u32>],
    baseline: f64,
) -> SuiteScore {
    let mut total_positions = 0usize;
    let mut total_matches = 0usize;
    for (task, gold_tokens) in suite.tasks.iter().zip(gold) {
        let matches =
            sparseinfer::eval::teacher_forced_engine_matches(engine, &task.tokens, gold_tokens);
        total_matches += matches.iter().filter(|m| **m).count();
        total_positions += matches.len();
    }
    let match_rate = if total_positions == 0 {
        1.0
    } else {
        total_matches as f64 / total_positions as f64
    };
    SuiteScore {
        match_rate,
        score: baseline * match_rate,
    }
}

/// Runs the full Table II/III accuracy protocol on `model` (a simulacrum of
/// a paper model with hidden dimension `paper_dim`): dense gold, SparseInfer
/// at every alpha in [`ALPHA_GRID`], plus the random-90% sanity row. Prints
/// a paper-style table.
pub fn run_accuracy_table(model: &Model, paper_dim: usize, baselines: PaperBaselines, label: &str) {
    use sparseinfer::eval::harness::gold_continuations;
    use sparseinfer::eval::TaskSuite;

    let quick = std::env::var("SPARSEINFER_QUICK").is_ok();
    let n_tasks = if quick { 2 } else { 6 };
    let max_new = if quick { 8 } else { 12 };

    let suites = [
        ("GSM8K", baselines.gsm8k, TaskSuite::gsm8k_syn(n_tasks, 101)),
        ("BBH", baselines.bbh, TaskSuite::bbh_syn(n_tasks, 202)),
    ];

    println!("=== {label}: accuracy vs alpha (teacher-forced vs dense gold) ===\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} | {:>8} {:>8}",
        "method", "GSM8K", "BBH", "Average", "matchG", "matchB"
    );
    println!("{}", rule(72));

    // Baseline row: the dense model scores its paper baseline by definition.
    println!(
        "{:<22} {:>8.2} {:>8.2} {:>8.2} | {:>8.3} {:>8.3}",
        "Baseline (dense)",
        baselines.gsm8k,
        baselines.bbh,
        (baselines.gsm8k + baselines.bbh) / 2.0,
        1.0,
        1.0
    );

    let golds: Vec<Vec<Vec<u32>>> = suites
        .iter()
        .map(|(_, _, suite)| gold_continuations(model, suite, max_new))
        .collect();

    for alpha in ALPHA_GRID {
        let schedule = paper_schedule_for(alpha, model.config().hidden_dim, paper_dim);
        let mut engine = EngineBuilder::new(model)
            .signbit(schedule)
            .options(EngineOptions::sparseinfer())
            .build()
            .expect("signbit predictor covers every model layer");
        let mut results = Vec::new();
        for ((_, baseline, suite), gold) in suites.iter().zip(&golds) {
            results.push(teacher_forced_suite_score(
                engine.as_mut(),
                suite,
                gold,
                *baseline,
            ));
        }
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} | {:>8.3} {:>8.3}",
            format!("SparseInfer a={alpha:.2}"),
            results[0].score,
            results[1].score,
            (results[0].score + results[1].score) / 2.0,
            results[0].match_rate,
            results[1].match_rate
        );
    }

    // E9: random selection at 90% sparsity (paper: 0% accuracy).
    let mut engine = EngineBuilder::new(model)
        .random(0.9, 7)
        .options(EngineOptions::sparseinfer())
        .build()
        .expect("random predictor covers every model layer");
    let mut results = Vec::new();
    for ((_, baseline, suite), gold) in suites.iter().zip(&golds) {
        results.push(teacher_forced_suite_score(
            engine.as_mut(),
            suite,
            gold,
            *baseline,
        ));
    }
    println!(
        "{:<22} {:>8.2} {:>8.2} {:>8.2} | (paper: 0% accuracy)",
        "Random 90% skip",
        results[0].score,
        results[1].score,
        (results[0].score + results[1].score) / 2.0
    );
    println!();
}

/// Prints a rule line of `width` dashes.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_configs_are_tokenizer_compatible() {
        // (Building the sim models is release-bench territory; the debug
        // test validates the configuration contract only.)
        for cfg in [ModelConfig::sim_13b(), ModelConfig::sim_7b()] {
            assert!(cfg.vocab_size >= sparseinfer::model::tokenizer::VOCAB_SIZE);
            cfg.validate().unwrap();
        }
        assert_eq!(ModelConfig::sim_13b().n_layers, 40);
        assert_eq!(ModelConfig::sim_7b().n_layers, 32);
    }

    #[test]
    fn paper_schedule_matches_paper_description() {
        // At paper scale the correction factor is 1: the schedule is exactly
        // the paper's (alpha on the first 20 layers, 1.0 after).
        let s = paper_schedule_for(1.03, 5120, 5120);
        assert_eq!(s.alpha_percent(0), 103);
        assert_eq!(s.alpha_percent(EARLY_LAYERS - 1), 103);
        assert_eq!(s.alpha_percent(EARLY_LAYERS), 100);
    }

    #[test]
    fn sim_alpha_preserves_threshold_strength() {
        // (alpha_sim − 1)·sqrt(d_sim) == (alpha_paper − 1)·sqrt(d_paper)
        let a = sim_alpha(1.03, 448, 5120);
        assert!(((a - 1.0) * (448f64).sqrt() - 0.03 * (5120f64).sqrt()).abs() < 1e-12);
        // Identity at equal dimensions.
        assert!((sim_alpha(1.02, 4096, 4096) - 1.02).abs() < 1e-12);
    }

    #[test]
    fn cell_formats_fixed_width() {
        assert_eq!(cell(1.2345, 8, 2), "    1.23");
    }

    #[test]
    fn parse_bench_json_roundtrips_the_report_writer() {
        let mut report = BenchReport::new("serving");
        report.record("continuous_itl_p50", 1185, 155.202, None, 1);
        report.record("dense_gemv", 100, 12.5, Some(3.5), 4);
        report.record_value("prefix_warm_kv_peak_bytes", 8, 73728.0);
        report.note("quick \"smoke\" pass");
        let parsed = parse_bench_json(&report.to_json());
        assert_eq!(
            parsed,
            vec![
                ("continuous_itl_p50".to_string(), 155.202),
                ("dense_gemv".to_string(), 12.5),
                ("prefix_warm_kv_peak_bytes".to_string(), 73728.0),
            ]
        );
        assert!(parse_bench_json("{}").is_empty());
        assert!(parse_bench_json("not json at all").is_empty());
    }

    #[test]
    fn bench_host_roundtrips_and_tolerates_old_reports() {
        let report = BenchReport::new("kernels");
        assert_eq!(
            parse_bench_host(&report.to_json()).as_deref(),
            Some(host_fingerprint().as_str())
        );
        // Reports from before the field existed parse as host-less.
        assert_eq!(parse_bench_host(r#"{"bench": "x", "records": []}"#), None);
        assert_eq!(parse_bench_host("not json"), None);
    }

    #[test]
    fn bench_report_serializes_records() {
        let mut report = BenchReport::new("kernels");
        report.record("dense_gemv", 100, 12.5, None, 1);
        report.record("sparse_gemv", 100, 3.125, Some(4.0), 2);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"kernels\""));
        assert!(json.contains("\"host\": \""));
        assert!(json.contains("\"notes\": []"));
        assert!(json.contains("\"name\": \"dense_gemv\""));
        assert!(json.contains("\"speedup_over_dense\": null"));
        assert!(json.contains("\"speedup_over_dense\": 4.0000"));
        assert!(json.contains("\"threads\": 2"));
    }
}
