//! Microbenchmarks of the Rust kernels: sign packing, the XOR/popcount
//! predictor, and dense vs sparse GEMV. Self-timed with `std::time`
//! (criterion is unavailable offline); the *ratios* mirror Table I's
//! operation-count story.
//!
//! ```text
//! cargo bench --bench kernels
//! ```

use sparseinfer::model::ModelConfig;
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SkipMask, SparsityPredictor};
use sparseinfer::sparse::gemv::sparse_gemv;
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::gemv::gemv;
use sparseinfer::tensor::sign::{PackedSignMatrix, SignPack};
use sparseinfer::tensor::{Matrix, Prng, Vector};
use sparseinfer_bench::time_us;

fn layer_shapes() -> (Matrix, Vector) {
    // One sim-13B-sized gate layer.
    let cfg = ModelConfig::sim_13b();
    let mut rng = Prng::seed(1);
    let w = Matrix::from_fn(cfg.mlp_dim, cfg.hidden_dim, |_, _| {
        rng.normal(0.0, 0.1) as f32
    });
    let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.4, 1.0) as f32);
    (w, x)
}

fn main() {
    let (w, x) = layer_shapes();
    println!("== sign packing ==");
    time_us("pack_gate_signs_once_per_model_load", 50, || {
        PackedSignMatrix::pack(&w)
    });
    time_us("pack_x_signs_per_token", 2000, || {
        SignPack::pack(x.as_slice())
    });

    println!("\n== prediction vs dense gate ==");
    let mut predictor =
        SignBitPredictor::from_gate_matrices(std::slice::from_ref(&w), AlphaSchedule::uniform(1.0));
    let t_pred = time_us("signbit_predictor", 500, || predictor.predict(0, &x));
    let t_gemv = time_us("dense_gate_gemv", 100, || gemv(&w, &x));
    println!(
        "predictor is {:.1}x cheaper than the dense gate",
        t_gemv / t_pred
    );

    println!("\n== sparse GEMV by sparsity ==");
    for sparsity_pct in [0u32, 50, 90, 92, 95] {
        let mask = SkipMask::from_fn(w.rows(), |r| {
            (r as u32 * 100 / w.rows() as u32) < sparsity_pct
        });
        time_us(&format!("sparse_gemv_{sparsity_pct}pct"), 200, || {
            let mut ops = OpCounter::default();
            sparse_gemv(&w, &x, &mask, &mut ops)
        });
    }
}
