//! Criterion microbenchmarks of the Rust kernels: sign packing, the
//! XOR/popcount predictor, and dense vs sparse GEMV. These measure the CPU
//! implementation (the GPU latencies come from the cost model); the *ratios*
//! mirror Table I's operation-count story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseinfer::model::ModelConfig;
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SkipMask, SparsityPredictor};
use sparseinfer::sparse::gemv::sparse_gemv;
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::gemv::gemv;
use sparseinfer::tensor::sign::{PackedSignMatrix, SignPack};
use sparseinfer::tensor::{Matrix, Prng, Vector};

fn layer_shapes() -> (Matrix, Vector) {
    // One sim-13B-sized gate layer.
    let cfg = ModelConfig::sim_13b();
    let mut rng = Prng::seed(1);
    let w = Matrix::from_fn(cfg.mlp_dim, cfg.hidden_dim, |_, _| rng.normal(0.0, 0.1) as f32);
    let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.4, 1.0) as f32);
    (w, x)
}

fn bench_sign_packing(c: &mut Criterion) {
    let (w, x) = layer_shapes();
    c.bench_function("pack_gate_signs_once_per_model_load", |b| {
        b.iter(|| std::hint::black_box(PackedSignMatrix::pack(&w)))
    });
    c.bench_function("pack_x_signs_per_token", |b| {
        b.iter(|| std::hint::black_box(SignPack::pack(x.as_slice())))
    });
}

fn bench_predictor_vs_gemv(c: &mut Criterion) {
    let (w, x) = layer_shapes();
    let mut predictor = SignBitPredictor::from_gate_matrices(
        std::slice::from_ref(&w),
        AlphaSchedule::uniform(1.0),
    );
    let mut group = c.benchmark_group("prediction_vs_dense_gate");
    group.bench_function("signbit_predictor", |b| {
        b.iter(|| std::hint::black_box(predictor.predict(0, &x)))
    });
    group.bench_function("dense_gate_gemv", |b| {
        b.iter(|| std::hint::black_box(gemv(&w, &x)))
    });
    group.finish();
}

fn bench_sparse_gemv_sweep(c: &mut Criterion) {
    let (w, x) = layer_shapes();
    let mut group = c.benchmark_group("sparse_gemv_by_sparsity");
    for sparsity_pct in [0u32, 50, 90, 92, 95] {
        let mask = SkipMask::from_fn(w.rows(), |r| (r as u32 * 100 / w.rows() as u32) < sparsity_pct);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sparsity_pct}pct")),
            &mask,
            |b, mask| {
                b.iter(|| {
                    let mut ops = OpCounter::default();
                    std::hint::black_box(sparse_gemv(&w, &x, mask, &mut ops))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sign_packing, bench_predictor_vs_gemv, bench_sparse_gemv_sweep
}
criterion_main!(benches);
