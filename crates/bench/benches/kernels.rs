//! Microbenchmarks of the Rust kernels: sign packing, the XOR/popcount
//! predictor, dense vs sparse GEMV, scalar vs unrolled inner loops, and
//! thread scaling. Self-timed with `std::time` (criterion is unavailable
//! offline); the *ratios* mirror Table I's operation-count story, and every
//! measurement also lands in `BENCH_kernels.json` so the perf trajectory is
//! tracked across PRs.
//!
//! ```text
//! cargo bench --bench kernels                  # full run
//! SPARSEINFER_BENCH_QUICK=1 cargo bench ...    # 1-iter CI smoke
//! ```

use sparseinfer::model::generator::WeightGenerator;
use sparseinfer::model::ModelConfig;
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SkipMask, SparsityPredictor};
use sparseinfer::sparse::engine::EngineBuilder;
use sparseinfer::sparse::gemv::{sparse_gemv, sparse_gemv_into, sparse_gemv_q8_into};
use sparseinfer::sparse::request::{generate, GenerateRequest};
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::gemv::{gemv, reference};
use sparseinfer::tensor::sign::{PackedSignMatrix, SignPack};
use sparseinfer::tensor::{
    BlockQuantizedMatrix, Matrix, ParallelOptions, Prng, ThreadPool, Vector,
};
use sparseinfer_bench::{bench_iters, BenchReport};

/// The pre-rework dispatch strategy, preserved here as the baseline: split
/// into per-worker chunks and spawn one scoped `std::thread` per chunk,
/// every call. This is what `ThreadPool::run_chunks` did before workers
/// became persistent and parked.
fn scoped_spawn_chunks(out: &mut [f32], workers: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    let chunk = out.len().div_ceil(workers.max(1));
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut offset = 0usize;
        while rest.len() > chunk {
            let (head, tail) = rest.split_at_mut(chunk);
            let off = offset;
            scope.spawn(move || f(off, head));
            offset += chunk;
            rest = tail;
        }
        f(offset, rest);
    });
}

fn layer_shapes() -> (Matrix, Vector) {
    // One sim-13B-sized gate layer.
    let cfg = ModelConfig::sim_13b();
    let mut rng = Prng::seed(1);
    let w = Matrix::from_fn(cfg.mlp_dim, cfg.hidden_dim, |_, _| {
        rng.normal(0.0, 0.1) as f32
    });
    let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.4, 1.0) as f32);
    (w, x)
}

/// A larger matrix for the thread-scaling section: per-call work must
/// dominate the scoped-thread spawn cost for scaling to be visible.
fn scaling_shapes() -> (Matrix, Vector) {
    let mut rng = Prng::seed(2);
    let w = Matrix::from_fn(4096, 1024, |_, _| rng.normal(0.0, 0.1) as f32);
    let x = Vector::from_fn(1024, |_| rng.normal(0.4, 1.0) as f32);
    (w, x)
}

fn main() {
    let mut report = BenchReport::new("kernels");
    let (w, x) = layer_shapes();

    println!("== sign packing ==");
    report.time(
        "pack_gate_signs_once_per_model_load",
        bench_iters(50),
        1,
        None,
        || PackedSignMatrix::pack(&w),
    );
    report.time("pack_x_signs_per_token", bench_iters(2000), 1, None, || {
        SignPack::pack(x.as_slice())
    });

    println!("\n== scalar (pre-PR) vs unrolled dense gemv ==");
    let t_scalar = report.time("dense_gemv_scalar_ref", bench_iters(100), 1, None, || {
        reference::gemv(&w, &x)
    });
    let t_gemv = {
        let us =
            sparseinfer_bench::time_us("dense_gemv_unrolled", bench_iters(200), || gemv(&w, &x));
        report.record(
            "dense_gemv_unrolled",
            bench_iters(200),
            us,
            Some(t_scalar / us),
            1,
        );
        us
    };
    println!(
        "unrolled gemv is {:.1}x the scalar baseline",
        t_scalar / t_gemv
    );

    println!("\n== prediction vs dense gate ==");
    let mut predictor =
        SignBitPredictor::from_gate_matrices(std::slice::from_ref(&w), AlphaSchedule::uniform(1.0));
    let t_pred = sparseinfer_bench::time_us("signbit_predictor", bench_iters(500), || {
        predictor.predict(0, &x)
    });
    report.record(
        "signbit_predictor",
        bench_iters(500),
        t_pred,
        Some(t_gemv / t_pred),
        1,
    );
    println!(
        "predictor is {:.1}x cheaper than the dense gate",
        t_gemv / t_pred
    );

    println!("\n== sparse GEMV by sparsity ==");
    for sparsity_pct in [0u32, 50, 90, 92, 95] {
        let mask = SkipMask::from_fn(w.rows(), |r| {
            (r as u32 * 100 / w.rows() as u32) < sparsity_pct
        });
        let name = format!("sparse_gemv_{sparsity_pct}pct");
        let us = sparseinfer_bench::time_us(&name, bench_iters(200), || {
            let mut ops = OpCounter::default();
            sparse_gemv(&w, &x, &mask, &mut ops)
        });
        report.record(&name, bench_iters(200), us, Some(t_gemv / us), 1);
    }

    println!("\n== dispatch overhead: per-call spawn vs parked workers ==");
    // The cost being amortized: waking parked workers (the pool since the
    // parked rework) vs spawning scoped threads per call (the pool before
    // it). A near-trivial kernel isolates dispatch latency; the thread
    // count can be pinned from CI via SPARSEINFER_BENCH_THREADS.
    let dispatch_threads: usize = std::env::var("SPARSEINFER_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t| *t >= 2)
        .unwrap_or(4);
    let mut dispatch_buf = vec![0.0f32; 8192];
    let touch = |offset: usize, chunk: &mut [f32]| {
        for (i, v) in chunk.iter_mut().enumerate() {
            *v = (offset + i) as f32;
        }
    };
    let spawn_name = format!("spawn_dispatch_{dispatch_threads}t");
    let t_spawn = report.time(
        &spawn_name,
        bench_iters(2000),
        dispatch_threads,
        None,
        || scoped_spawn_chunks(&mut dispatch_buf, dispatch_threads, touch),
    );
    let parked_pool = ThreadPool::new(ParallelOptions::threads(dispatch_threads));
    let parked_name = format!("parked_dispatch_{dispatch_threads}t");
    // Recorded with speedup None: the JSON field means "over the dense
    // baseline", and this measurement's baseline is `spawn_dispatch` (the
    // ratio is recomputable from the two us_per_iter entries).
    let t_parked = report.time(
        &parked_name,
        bench_iters(2000),
        dispatch_threads,
        None,
        || parked_pool.run_chunks(&mut dispatch_buf, 1, touch),
    );
    println!(
        "parked-worker dispatch is {:.1}x cheaper than per-call spawn",
        t_spawn / t_parked
    );

    println!("\n== speculative vs dense-only decode (single engine, greedy) ==");
    // One engine decoding end to end: dense-only stepping vs sparse drafts
    // verified densely in blocks. Tokens are bit-identical (asserted), so
    // the per-token gap is the lossless block-decode speedup at engine
    // level; the acceptance rate is recorded and asserted nonzero so the
    // JSON gate cannot pass on a silently-disabled speculative path.
    let decode_model = {
        let mut cfg = ModelConfig::tiny();
        cfg.hidden_dim = 64;
        cfg.mlp_dim = 160;
        cfg.n_heads = 2;
        cfg.n_layers = 3;
        cfg.vocab_size = 300;
        WeightGenerator::new(&cfg, 99).build()
    };
    let decode_tokens = 24usize;
    let decode_req = GenerateRequest::new(&[1, 2, 3, 4]).max_new(decode_tokens);
    let mut dense_engine = EngineBuilder::new(&decode_model).build().unwrap();
    let mut spec_engine = {
        let draft = EngineBuilder::new(&decode_model)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        let verify = EngineBuilder::new(&decode_model).build().unwrap();
        EngineBuilder::speculative(draft, verify, 4).unwrap()
    };
    assert_eq!(
        generate(dense_engine.as_mut(), &decode_req).unwrap().tokens,
        generate(spec_engine.as_mut(), &decode_req).unwrap().tokens,
        "speculation must be lossless"
    );
    let decode_iters = bench_iters(20);
    let t_dense_run = sparseinfer_bench::time_us("dense_decode_24_tokens", decode_iters, || {
        generate(dense_engine.as_mut(), &decode_req).unwrap()
    });
    let dense_us_tok = t_dense_run / decode_tokens as f64;
    report.record(
        "dense_decode_us_per_token",
        decode_iters,
        dense_us_tok,
        None,
        1,
    );
    let t_spec_run =
        sparseinfer_bench::time_us("speculative_decode_24_tokens", decode_iters, || {
            generate(spec_engine.as_mut(), &decode_req).unwrap()
        });
    let spec_us_tok = t_spec_run / decode_tokens as f64;
    report.record(
        "speculative_decode_us_per_token",
        decode_iters,
        spec_us_tok,
        Some(dense_us_tok / spec_us_tok),
        1,
    );
    let spec_stats = spec_engine
        .speculative_stats()
        .expect("speculative engine reports draft counters");
    assert!(
        spec_stats.drafted > 0 && spec_stats.accepted > 0,
        "speculative decode drafted/accepted nothing: the draft path is disabled"
    );
    println!(
        "speculative decode is {:.2}x dense-only; acceptance {}/{} ({:.1}%)",
        dense_us_tok / spec_us_tok,
        spec_stats.accepted,
        spec_stats.drafted,
        spec_stats.acceptance_rate() * 100.0,
    );
    report.record_value(
        "speculative_acceptance_rate_pct",
        decode_iters,
        spec_stats.acceptance_rate() * 100.0,
    );

    println!("\n== sparse GEMV thread scaling (workspace path, 4096x1024) ==");
    let (sw, sx) = scaling_shapes();
    let smask = SkipMask::from_fn(sw.rows(), |r| r % 10 == 0); // 10% sparse
    let mut f32_us_at = [0.0f64; 3];
    let mut t1 = 0.0f64;
    for (ti, threads) in [1usize, 2, 4].into_iter().enumerate() {
        let pool = ThreadPool::new(ParallelOptions::threads(threads));
        let mut out = Vector::zeros(0);
        let name = format!("sparse_gemv_into_{threads}t");
        let us = sparseinfer_bench::time_us(&name, bench_iters(100), || {
            let mut ops = OpCounter::default();
            sparse_gemv_into(&sw, &sx, &smask, &pool, &mut ops, &mut out);
        });
        if threads == 1 {
            t1 = us;
        }
        f32_us_at[ti] = us;
        report.record(&name, bench_iters(100), us, Some(t1 / us), threads);
        if threads > 1 {
            println!("  -> {:.2}x over 1 thread", t1 / us);
        }
    }

    println!("\n== fused int8 block-dequant sparse GEMV (same shape/mask) ==");
    // The quantized serving hot path: the same 4096x1024 workload through
    // `sparse_gemv_q8_into`, which reads 1 byte/weight instead of 4 and
    // dequantizes per 32-column block inside the chunked dot loop. The
    // speedup column is against the f32 `sparse_gemv_into` row at the
    // *same* thread count — that pair is the memory-bandwidth win of the
    // int8 weight format, thread-for-thread.
    let qw = BlockQuantizedMatrix::quantize(&sw);
    for (ti, threads) in [1usize, 2, 4].into_iter().enumerate() {
        let pool = ThreadPool::new(ParallelOptions::threads(threads));
        let mut out = Vector::zeros(0);
        let name = format!("sparse_gemv_q8_into_{threads}t");
        let us = sparseinfer_bench::time_us(&name, bench_iters(100), || {
            let mut ops = OpCounter::default();
            sparse_gemv_q8_into(&qw, &sx, &smask, &pool, &mut ops, &mut out);
        });
        let over_f32 = f32_us_at[ti] / us;
        report.record(&name, bench_iters(100), us, Some(over_f32), threads);
        println!("  -> {over_f32:.2}x over f32 at {threads} thread(s)");
        // Directional guard for the committed baseline: the fused kernel
        // must beat the f32 path it replaces. Skipped in the quick smoke,
        // whose single-iteration timings are noise.
        if threads == 1 && std::env::var_os("SPARSEINFER_BENCH_QUICK").is_none() {
            assert!(
                over_f32 >= 1.5,
                "fused int8 GEMV is only {over_f32:.2}x the f32 kernel at 1 thread \
                 (expected >= 1.5x): the block-dequant fast path has regressed"
            );
        }
    }

    report.note(&format!(
        "host {}: thread counts above the container's core count time \
         oversubscribed workers, not parallel speedup",
        sparseinfer_bench::host_fingerprint()
    ));
    report.write();
}
