//! Serving throughput under churn: the closed `Batch` baseline vs the
//! continuous-batching `Scheduler`.
//!
//! The workload models real serving traffic: requests arrive over time
//! (staggered submission), mix dense and sparse engines over one shared
//! predictor, and a few cancel mid-flight. The closed baseline cannot
//! accept the stragglers until a fresh batch starts, so it serves the same
//! request set as one pre-loaded batch — the best it can do — while the
//! continuous scheduler admits each request the tick after it arrives
//! within `max_slots` and a KV block budget.
//!
//! Reported per engine-side: overall decode throughput (µs per emitted
//! token over the whole run) and the p50/p95 **inter-token latency** — the
//! gap between consecutive tokens of the same request, the quantity a
//! streaming client actually experiences. Machine-readable copies land in
//! `BENCH_serving.json` (skipped under `SPARSEINFER_BENCH_QUICK=1`, which
//! runs one small pass as a CI smoke).

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use sparseinfer::eval::harness::{gold_continuations, teacher_forced_engine_matches};
use sparseinfer::eval::TaskSuite;
use sparseinfer::model::kv::KvDtype;
use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::sparse::batch::Batch;
use sparseinfer::sparse::engine::{
    Engine, EngineBuilder, QuantizedWeights, SpeculativeStats, WeightFormat,
};
use sparseinfer::sparse::request::{GenerateRequest, Priority};
use sparseinfer::sparse::scheduler::{RequestHandle, Scheduler, SchedulerConfig};
use sparseinfer_bench::{bench_iters, BenchReport};
use sparseinfer_serve::{Client, Server, ServerConfig};

fn bench_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 64;
    cfg.mlp_dim = 160;
    cfg.n_heads = 2;
    cfg.n_layers = 3;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 99).build()
}

/// One synthetic churn request: prompt, budget, and (for the continuous
/// side) the tick it arrives on plus whether it cancels mid-flight.
struct ChurnRequest {
    prompt: Vec<u32>,
    max_new: usize,
    arrives_at_tick: usize,
    cancel_after_tokens: Option<usize>,
}

fn churn_workload(n: usize) -> Vec<ChurnRequest> {
    (0..n)
        .map(|i| ChurnRequest {
            prompt: (1..=(2 + (i % 4) as u32)).collect(),
            max_new: 6 + (i % 5) * 3,
            // A third arrive up front, the rest trickle in.
            arrives_at_tick: if i.is_multiple_of(3) { 0 } else { 2 * i },
            cancel_after_tokens: if i % 8 == 5 { Some(3) } else { None },
        })
        .collect()
}

fn engine_for<'m>(
    model: &'m Model,
    shared: &Arc<dyn SparsityPredictor>,
    i: usize,
) -> Box<dyn Engine + 'm> {
    if i.is_multiple_of(2) {
        EngineBuilder::new(model)
            .predictor_shared(Arc::clone(shared))
            .build()
            .unwrap()
    } else {
        EngineBuilder::new(model).build().unwrap()
    }
}

/// The same dense/sparse engine mix as [`engine_for`], decoding over one
/// process-wide int8 copy of the MLP weights.
fn engine_for_int8<'m>(
    model: &'m Model,
    shared: &Arc<dyn SparsityPredictor>,
    quantized: &Arc<QuantizedWeights>,
    i: usize,
) -> Box<dyn Engine + 'm> {
    let builder = if i.is_multiple_of(2) {
        EngineBuilder::new(model).predictor_shared(Arc::clone(shared))
    } else {
        EngineBuilder::new(model)
    };
    builder
        .quantized_shared(Arc::clone(quantized))
        .build()
        .unwrap()
}

/// Timing of one serving run: total wall time plus every inter-token gap.
struct RunTiming {
    tokens: usize,
    total_us: f64,
    inter_token_us: Vec<f64>,
}

/// Per-request last-emission clock feeding the inter-token gaps.
struct GapClock {
    start: Instant,
    last: Vec<Option<f64>>,
    gaps: Vec<f64>,
    tokens: usize,
}

impl GapClock {
    fn new(n_requests: usize) -> Self {
        Self {
            start: Instant::now(),
            last: vec![None; n_requests],
            gaps: Vec::new(),
            tokens: 0,
        }
    }

    fn observe(&mut self, request: usize) {
        let now = self.start.elapsed().as_secs_f64() * 1e6;
        if let Some(prev) = self.last[request] {
            self.gaps.push(now - prev);
        }
        self.last[request] = Some(now);
        self.tokens += 1;
    }

    fn finish(self) -> RunTiming {
        RunTiming {
            tokens: self.tokens,
            total_us: self.start.elapsed().as_secs_f64() * 1e6,
            inter_token_us: self.gaps,
        }
    }
}

/// Closed baseline: every request pre-loaded into one `Batch`.
fn run_closed(
    model: &Model,
    shared: &Arc<dyn SparsityPredictor>,
    work: &[ChurnRequest],
) -> RunTiming {
    let mut batch = Batch::new();
    for (i, r) in work.iter().enumerate() {
        batch
            .push(
                engine_for(model, shared, i),
                &GenerateRequest::new(&r.prompt).max_new(r.max_new),
            )
            .unwrap();
    }
    let mut clock = GapClock::new(work.len());
    let _ = batch.run_streaming(|ev| clock.observe(ev.request));
    clock.finish()
}

/// Continuous scheduler: requests join on their arrival tick, some cancel
/// mid-flight, admission bounded by slots and a KV block budget. With
/// `quantized` the same engine mix decodes over the shared int8 weights,
/// so the row pair (f32 vs int8) is the quantized serving speedup on an
/// otherwise identical workload.
fn run_continuous(
    model: &Model,
    shared: &Arc<dyn SparsityPredictor>,
    quantized: Option<&Arc<QuantizedWeights>>,
    work: &[ChurnRequest],
) -> RunTiming {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: 4,
        block_tokens: 8,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });
    let mut clock = GapClock::new(work.len());
    let mut handles: Vec<Option<sparseinfer::sparse::scheduler::RequestHandle>> =
        (0..work.len()).map(|_| None).collect();
    let mut emitted = vec![0usize; work.len()];
    let mut next = 0usize; // requests are submitted in arrival order
    let mut tick = 0usize;
    loop {
        while next < work.len() && work[next].arrives_at_tick <= tick {
            let engine = match quantized {
                Some(q) => engine_for_int8(model, shared, q, next),
                None => engine_for(model, shared, next),
            };
            let handle = scheduler
                .submit(
                    engine,
                    &GenerateRequest::new(&work[next].prompt).max_new(work[next].max_new),
                )
                .unwrap();
            handles[next] = Some(handle);
            next += 1;
        }
        let unfinished = scheduler.tick(|ev| {
            clock.observe(ev.request);
            emitted[ev.request] += 1;
        });
        for (i, r) in work.iter().enumerate() {
            if let (Some(cancel_at), Some(handle)) = (r.cancel_after_tokens, handles[i].as_ref()) {
                if emitted[i] >= cancel_at {
                    handle.cancel();
                }
            }
        }
        tick += 1;
        if unfinished == 0 && next == work.len() {
            break;
        }
    }
    clock.finish()
}

/// Peak physical KV-pool bytes over one fixed 4-request decode pass with
/// the pool storing at `dtype`. The workload and block layout are
/// deterministic, so the returned byte count is exact — the f16 run must
/// come out at precisely half the f32 run, and the caller asserts it.
fn peak_kv_bytes(model: &Model, shared: &Arc<dyn SparsityPredictor>, dtype: KvDtype) -> u64 {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: 4,
        block_tokens: 8,
        kv_block_budget: usize::MAX,
        prefix_cache: false,
        kv_dtype: dtype,
        ..SchedulerConfig::default()
    });
    for i in 0..4usize {
        scheduler
            .submit(
                engine_for(model, shared, i),
                &GenerateRequest::new(&[1, 2, 3 + i as u32]).max_new(8),
            )
            .unwrap();
    }
    let mut peak = 0u64;
    loop {
        let unfinished = scheduler.tick(|_| {});
        peak = peak.max(scheduler.kv_pool().in_use_bytes());
        if unfinished == 0 {
            break;
        }
    }
    peak
}

/// The signature both serving-side runners share.
type Runner = dyn Fn(&Model, &Arc<dyn SparsityPredictor>, &[ChurnRequest]) -> RunTiming;

/// One cold-vs-warm shared-prefix pass: mean time-to-first-token, peak KV
/// bytes, and total skipped prefill tokens.
struct PrefixTiming {
    mean_ttft_us: f64,
    peak_kv_bytes: u64,
    skipped_tokens: u64,
}

/// Shared-prefix churn: `n_requests` requests share one `prefix_len`-token
/// system prompt (plus a unique tail token each). Cold runs with the
/// prefix cache off; warm runs with it on, pre-warmed by a single
/// publisher request, so every measured request attaches the shared
/// blocks instead of re-prefilling and re-storing them.
fn run_prefix(
    model: &Model,
    shared: &Arc<dyn SparsityPredictor>,
    n_requests: usize,
    prefix_len: usize,
    prefix_cache: bool,
) -> PrefixTiming {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: n_requests + 1, // admission is not the variable here
        block_tokens: 8,
        kv_block_budget: usize::MAX,
        prefix_cache,
        prefix_retain_blocks: 4096,
        ..SchedulerConfig::default()
    });
    let prefix: Vec<u32> = (0..prefix_len).map(|i| (i * 5 % 290 + 1) as u32).collect();
    let mut id_base = 0usize;
    if prefix_cache {
        // Publish the prefix once, outside the measured window.
        let mut p = prefix.clone();
        p.push(295);
        scheduler
            .submit(
                engine_for(model, shared, 0),
                &GenerateRequest::new(&p).max_new(1),
            )
            .unwrap();
        while scheduler.tick(|_| {}) > 0 {}
        let _ = scheduler.take_finished();
        id_base = 1;
    }
    let start = Instant::now();
    for i in 0..n_requests {
        let mut p = prefix.clone();
        p.push(270 + (i % 8) as u32);
        scheduler
            .submit(
                engine_for(model, shared, i),
                &GenerateRequest::new(&p).max_new(4),
            )
            .unwrap();
    }
    let mut first_token_us: Vec<Option<f64>> = vec![None; n_requests];
    let mut peak_kv_bytes = 0u64;
    loop {
        let unfinished = scheduler.tick(|ev| {
            let slot = first_token_us[ev.request - id_base].get_or_insert(0.0);
            if *slot == 0.0 {
                *slot = start.elapsed().as_secs_f64() * 1e6;
            }
        });
        peak_kv_bytes = peak_kv_bytes.max(scheduler.kv_pool().in_use_bytes());
        if unfinished == 0 {
            break;
        }
    }
    let skipped_tokens: u64 = scheduler
        .take_finished()
        .iter()
        .map(|o| o.prefill_skipped_tokens as u64)
        .sum();
    // Directional guard, shape-independent (so it holds in the quick CI
    // smoke too): with a pre-warmed cache every measured request must
    // attach the full shared prefix. The JSON regression gate is
    // one-sided (it only flags increases), so "prefix caching silently
    // stopped working" is caught here, by the bench run itself failing.
    if prefix_cache {
        let expected = (n_requests * prefix_len) as u64;
        assert_eq!(
            skipped_tokens, expected,
            "warm shared-prefix run skipped {skipped_tokens} prefill tokens, \
             expected {expected}: the prefix cache is not attaching"
        );
    }
    let observed: Vec<f64> = first_token_us.into_iter().flatten().collect();
    PrefixTiming {
        mean_ttft_us: observed.iter().sum::<f64>() / observed.len() as f64,
        peak_kv_bytes,
        skipped_tokens,
    }
}

/// Latency profile of one loopback pass: per-request time-to-first-token
/// plus every inter-token gap, in arrival order.
#[derive(Default)]
struct LoopbackTiming {
    tokens: usize,
    total_us: f64,
    ttft_us: Vec<f64>,
    inter_token_us: Vec<f64>,
}

fn loopback_prompt(i: usize) -> Vec<u32> {
    vec![
        (i as u32 % 37) + 1,
        (i as u32 * 3) % 40 + 2,
        (i as u32 % 29) + 11,
    ]
}

const LOOPBACK_MAX_NEW: usize = 8;

fn loopback_scheduler_config() -> SchedulerConfig {
    SchedulerConfig {
        max_slots: 4,
        block_tokens: 8,
        kv_block_budget: usize::MAX,
        // Distinct short prompts: nothing to share, and a cold pool per
        // pass keeps the two sides' working sets identical.
        prefix_cache: false,
        ..SchedulerConfig::default()
    }
}

/// The serving tax, measured: the same requests the in-process reference
/// runs, but over real loopback sockets — `n_requests` spread across
/// `connections` keep-alive client connections, each worker streaming its
/// share sequentially while all workers run concurrently.
fn run_http_loopback(
    model: &Model,
    shared: &Arc<dyn SparsityPredictor>,
    n_requests: usize,
    connections: usize,
) -> LoopbackTiming {
    let bodies: Vec<String> = (0..n_requests)
        .map(|i| {
            let p = loopback_prompt(i);
            format!(
                r#"{{"prompt":[{},{},{}],"max_new":{LOOPBACK_MAX_NEW}}}"#,
                p[0], p[1], p[2]
            )
        })
        .collect();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: loopback_scheduler_config(),
        connection_threads: connections,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let handle = server.handle();
    let addr = handle.addr();

    let timing = Mutex::new(LoopbackTiming::default());
    // All workers prime their connection, then meet here, so the measured
    // window covers only request streaming — not server boot, socket
    // establishment, or the acceptor's poll interval (server tuning
    // constants whose amortisation would differ between the quick and
    // full workload shapes and confound the regression gate).
    let ready = Barrier::new(connections + 1);
    std::thread::scope(|scope| {
        let server_thread = scope.spawn(|| {
            server.serve(&|_req| {
                EngineBuilder::new(model)
                    .predictor_shared(Arc::clone(shared))
                    .build()
            })
        });
        let mut start = Instant::now();
        std::thread::scope(|workers| {
            for w in 0..connections {
                let bodies = &bodies;
                let timing = &timing;
                let ready = &ready;
                workers.spawn(move || {
                    let mut conn = Client::connect(addr).expect("connect");
                    assert_eq!(conn.get("/healthz").expect("prime").status, 200);
                    ready.wait();
                    for body in bodies.iter().skip(w).step_by(connections) {
                        let sent = Instant::now();
                        let mut stream =
                            conn.post_streaming("/v1/generate", body).expect("admitted");
                        let mut ttft = None;
                        let mut last: Option<Instant> = None;
                        let mut gaps = Vec::new();
                        let mut tokens = 0usize;
                        while let Some(event) = stream.next_event().expect("stream") {
                            if event.get("token").is_none() {
                                continue; // the terminal finish event
                            }
                            let now = Instant::now();
                            if let Some(prev) = last {
                                gaps.push(now.duration_since(prev).as_secs_f64() * 1e6);
                            } else {
                                ttft = Some(now.duration_since(sent).as_secs_f64() * 1e6);
                            }
                            last = Some(now);
                            tokens += 1;
                        }
                        conn = stream.into_client().expect("keep-alive reuse");
                        let mut t = timing.lock().unwrap();
                        t.tokens += tokens;
                        t.ttft_us.extend(ttft);
                        t.inter_token_us.extend(gaps);
                    }
                });
            }
            ready.wait();
            start = Instant::now();
        });
        timing.lock().unwrap().total_us = start.elapsed().as_secs_f64() * 1e6;
        handle.shutdown();
        server_thread.join().expect("server thread");
    });
    timing.into_inner().unwrap()
}

/// The in-process reference for the loopback workload: the same requests
/// straight into a `Scheduler`, no sockets, no JSON — the gap between
/// this and [`run_http_loopback`] is the HTTP frontend's overhead.
fn run_inproc_loopback(
    model: &Model,
    shared: &Arc<dyn SparsityPredictor>,
    n_requests: usize,
) -> LoopbackTiming {
    let mut scheduler = Scheduler::new(loopback_scheduler_config());
    let start = Instant::now();
    for i in 0..n_requests {
        scheduler
            .submit(
                EngineBuilder::new(model)
                    .predictor_shared(Arc::clone(shared))
                    .build()
                    .unwrap(),
                &GenerateRequest::new(&loopback_prompt(i)).max_new(LOOPBACK_MAX_NEW),
            )
            .unwrap();
    }
    let mut timing = LoopbackTiming::default();
    let mut last: Vec<Option<Instant>> = vec![None; n_requests];
    loop {
        let unfinished = scheduler.tick(|ev| {
            let now = Instant::now();
            match last[ev.request] {
                Some(prev) => timing
                    .inter_token_us
                    .push(now.duration_since(prev).as_secs_f64() * 1e6),
                None => timing
                    .ttft_us
                    .push(now.duration_since(start).as_secs_f64() * 1e6),
            }
            last[ev.request] = Some(now);
            timing.tokens += 1;
        });
        if unfinished == 0 {
            break;
        }
    }
    timing.total_us = start.elapsed().as_secs_f64() * 1e6;
    timing
}

/// Draft depth of the speculative serving rows.
const SPECULATIVE_K: usize = 4;

/// The staggered-arrival workload decoded end to end through the
/// scheduler, every request on either a dense-only engine or a
/// sparse-draft/dense-verify speculative one. Tokens are bit-identical
/// either way (the library's determinism-test surface); the rows differ
/// only in wall clock, so the pair is the end-to-end speculative speedup.
fn run_speculative_serving(
    model: &Model,
    work: &[ChurnRequest],
    speculative: bool,
) -> (RunTiming, SpeculativeStats) {
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: 4,
        block_tokens: 8,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });
    let mut clock = GapClock::new(work.len());
    let mut next = 0usize;
    let mut tick = 0usize;
    loop {
        while next < work.len() && work[next].arrives_at_tick <= tick {
            let engine: Box<dyn Engine> = if speculative {
                let draft = EngineBuilder::new(model)
                    .signbit(AlphaSchedule::uniform(1.0))
                    .build()
                    .unwrap();
                let verify = EngineBuilder::new(model).build().unwrap();
                EngineBuilder::speculative(draft, verify, SPECULATIVE_K).unwrap()
            } else {
                EngineBuilder::new(model).build().unwrap()
            };
            scheduler
                .submit(
                    engine,
                    &GenerateRequest::new(&work[next].prompt).max_new(work[next].max_new),
                )
                .unwrap();
            next += 1;
        }
        let unfinished = scheduler.tick(|ev| clock.observe(ev.request));
        tick += 1;
        if unfinished == 0 && next == work.len() {
            break;
        }
    }
    let stats = scheduler.speculative_stats();
    (clock.finish(), stats)
}

/// One priority-mix pass: time-to-first-token of every High arrival, plus
/// how many evictions the scheduler performed to get them started.
struct PriorityTiming {
    high_ttft_us: Vec<f64>,
    preemptions: usize,
}

const PRIORITY_BATCH_MAX_NEW: usize = 48;
const PRIORITY_HIGH_MAX_NEW: usize = 4;
/// Ticks between consecutive High arrivals.
const PRIORITY_HIGH_GAP_TICKS: usize = 6;

/// Saturating batch-class load with sporadic High arrivals: every slot and
/// every KV block is held by long `Batch` requests (finished ones are
/// replenished immediately), and a short `High` request lands every few
/// ticks. With `preemption` the scheduler swaps out a Batch victim and
/// starts the High request at once; without it the High request waits at
/// the head of the queue for a natural Batch completion. The difference
/// is the latency win the whole mechanism exists for, so it is reported
/// as High-side TTFT percentiles under both policies.
fn run_priority_mix(
    model: &Model,
    shared: &Arc<dyn SparsityPredictor>,
    n_high: usize,
    preemption: bool,
) -> PriorityTiming {
    // bench_model() has 3 layers. Batch worst case: 3 + 48 tokens at
    // 8 tokens/block -> 7 blocks x 3 layers = 21; the budget fits exactly
    // three of them, so a High arrival (2 + 4 tokens -> 3 blocks) can only
    // start by evicting — or, without preemption, waiting out — a Batch
    // occupant.
    let mut scheduler = Scheduler::new(SchedulerConfig {
        max_slots: 3,
        block_tokens: 8,
        kv_block_budget: 63,
        prefix_cache: false,
        preemption,
        ..SchedulerConfig::default()
    });
    fn submit_batch<'m>(
        scheduler: &mut Scheduler<'m>,
        model: &'m Model,
        shared: &Arc<dyn SparsityPredictor>,
        seq: &mut usize,
    ) -> RequestHandle {
        let handle = scheduler
            .submit(
                engine_for(model, shared, *seq),
                &GenerateRequest::new(&[5, 6, 7])
                    .max_new(PRIORITY_BATCH_MAX_NEW)
                    .priority(Priority::Batch),
            )
            .expect("batch admission");
        *seq += 1;
        handle
    }
    let mut engine_seq = 0usize;
    let mut batch_handles: Vec<RequestHandle> = (0..3)
        .map(|_| submit_batch(&mut scheduler, model, shared, &mut engine_seq))
        .collect();
    // Reach steady mid-decode saturation before the first High arrival.
    for _ in 0..4 {
        scheduler.tick(|_| {});
    }

    let start = Instant::now();
    // (id, handle, first-token time) per High request.
    let mut high: Vec<(usize, RequestHandle, Option<f64>)> = Vec::new();
    let mut until_next_high = 0usize;
    loop {
        if high.len() < n_high && until_next_high == 0 {
            let handle = scheduler
                .submit(
                    engine_for(model, shared, engine_seq),
                    &GenerateRequest::new(&[9, 10])
                        .max_new(PRIORITY_HIGH_MAX_NEW)
                        .priority(Priority::High),
                )
                .expect("high admission");
            engine_seq += 1;
            high.push((handle.id(), handle, None));
            until_next_high = PRIORITY_HIGH_GAP_TICKS;
        }
        until_next_high = until_next_high.saturating_sub(1);
        let now_us = |start: &Instant| start.elapsed().as_secs_f64() * 1e6;
        scheduler.tick(|ev| {
            if let Some(entry) = high
                .iter_mut()
                .find(|(id, _, first)| *id == ev.request && first.is_none())
            {
                entry.2 = Some(now_us(&start));
            }
        });
        // Replenish finished Batch requests so the load stays saturating.
        for out in scheduler.take_finished() {
            if high.iter().any(|(id, _, _)| *id == out.id) {
                continue;
            }
            batch_handles.push(submit_batch(&mut scheduler, model, shared, &mut engine_seq));
        }
        if high.len() == n_high && high.iter().all(|(_, _, first)| first.is_some()) {
            break;
        }
    }
    // Every High TTFT is in hand; wind the pass down.
    for handle in batch_handles.iter().chain(high.iter().map(|(_, h, _)| h)) {
        handle.cancel();
    }
    while scheduler.tick(|_| {}) > 0 {}
    PriorityTiming {
        high_ttft_us: high
            .into_iter()
            .map(|(_, _, first)| first.unwrap())
            .collect(),
        preemptions: scheduler.preemption_stats().preemptions,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = std::env::var_os("SPARSEINFER_BENCH_QUICK").is_some();
    let model = bench_model();
    let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
        &model,
        AlphaSchedule::uniform(1.0),
    ));
    let n_requests = if quick { 6 } else { 24 };
    let work = churn_workload(n_requests);
    let passes = bench_iters(5);
    let quantized = Arc::new(QuantizedWeights::quantize(&model));

    println!(
        "serving churn workload: {n_requests} requests x {passes} pass(es), \
         max_slots=4, block_tokens=8\n"
    );

    let mut report = BenchReport::new("serving");
    let mut measure = |name: &str, runner: &Runner| {
        let mut tokens = 0usize;
        let mut total_us = 0.0f64;
        let mut gaps: Vec<f64> = Vec::new();
        for _ in 0..passes {
            let timing = runner(&model, &shared, &work);
            tokens += timing.tokens;
            total_us += timing.total_us;
            gaps.extend(timing.inter_token_us);
        }
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let us_per_token = total_us / tokens as f64;
        let p50 = percentile(&gaps, 0.50);
        let p95 = percentile(&gaps, 0.95);
        println!(
            "{name:<24} {:>8} tokens  {us_per_token:>9.2} us/token \
             ({:>9.0} tok/s)  itl p50 {p50:>8.2} us  p95 {p95:>8.2} us",
            tokens,
            1e6 / us_per_token,
        );
        report.record(&format!("{name}_throughput"), tokens, us_per_token, None, 1);
        report.record(&format!("{name}_itl_p50"), gaps.len(), p50, None, 1);
        report.record(&format!("{name}_itl_p95"), gaps.len(), p95, None, 1);
    };
    measure("closed_batch", &run_closed);
    measure("continuous_scheduler", &|m, s, w| {
        run_continuous(m, s, None, w)
    });
    let q = Arc::clone(&quantized);
    measure("continuous_int8", &move |m, s, w| {
        run_continuous(m, s, Some(&q), w)
    });

    // Shared-prefix churn: the prefix-cache win, cold vs warm. Reported as
    // mean time-to-first-token (prefill latency a client sees) and peak
    // physical KV bytes; the warm side also reports how much prefill it
    // skipped. Byte/token records carry their value in the generic
    // `us_per_iter` JSON column (see `BenchReport::record_value`).
    let prefix_requests = if quick { 4 } else { 8 };
    let prefix_len = if quick { 24 } else { 48 };
    println!(
        "\nshared-prefix workload: {prefix_requests} requests x {passes} pass(es), \
         {prefix_len}-token shared prompt, block_tokens=8\n"
    );
    for (name, warm) in [("prefix_cold", false), ("prefix_warm", true)] {
        let mut ttft_sum = 0.0f64;
        let mut peak_bytes = 0u64;
        let mut skipped = 0u64;
        for _ in 0..passes {
            let timing = run_prefix(&model, &shared, prefix_requests, prefix_len, warm);
            ttft_sum += timing.mean_ttft_us;
            peak_bytes = peak_bytes.max(timing.peak_kv_bytes);
            skipped += timing.skipped_tokens;
        }
        let ttft = ttft_sum / passes as f64;
        println!(
            "{name:<24} ttft {ttft:>9.2} us  kv peak {peak_bytes:>9} B  \
             skipped {:>5} tokens/pass",
            skipped / passes as u64,
        );
        report.record(&format!("{name}_ttft"), prefix_requests, ttft, None, 1);
        report.record_value(
            &format!("{name}_kv_peak_bytes"),
            prefix_requests,
            peak_bytes as f64,
        );
        if warm {
            report.record_value(
                &format!("{name}_skipped_tokens_per_pass"),
                prefix_requests,
                (skipped / passes as u64) as f64,
            );
        }
    }

    // Loopback HTTP serving: the same request set through the network
    // frontend (real sockets, SSE streaming, keep-alive reuse) and
    // straight into the scheduler, so the serving tax — TTFT and
    // inter-token latency added by the HTTP layer — is a subtraction of
    // two rows in the same report.
    let lb_requests = if quick { 4 } else { 16 };
    let lb_connections = if quick { 2 } else { 4 };
    println!(
        "\nloopback HTTP workload: {lb_requests} requests over {lb_connections} \
         connections x {passes} pass(es), max_new={LOOPBACK_MAX_NEW}\n"
    );
    let mut measure_loopback = |name: &str, runner: &dyn Fn() -> LoopbackTiming| {
        let mut tokens = 0usize;
        let mut total_us = 0.0f64;
        let mut ttfts: Vec<f64> = Vec::new();
        let mut gaps: Vec<f64> = Vec::new();
        for _ in 0..passes {
            let timing = runner();
            assert_eq!(
                timing.tokens,
                lb_requests * LOOPBACK_MAX_NEW,
                "{name}: every request must stream its full budget"
            );
            tokens += timing.tokens;
            total_us += timing.total_us;
            ttfts.extend(timing.ttft_us);
            gaps.extend(timing.inter_token_us);
        }
        ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let us_per_token = total_us / tokens as f64;
        let ttft_p50 = percentile(&ttfts, 0.50);
        let ttft_p95 = percentile(&ttfts, 0.95);
        let itl_p50 = percentile(&gaps, 0.50);
        let itl_p95 = percentile(&gaps, 0.95);
        println!(
            "{name:<24} {tokens:>8} tokens  {us_per_token:>9.2} us/token  \
             ttft p50 {ttft_p50:>8.2} us  p95 {ttft_p95:>8.2} us  \
             itl p50 {itl_p50:>8.2} us  p95 {itl_p95:>8.2} us"
        );
        report.record(&format!("{name}_throughput"), tokens, us_per_token, None, 1);
        report.record(&format!("{name}_ttft_p50"), ttfts.len(), ttft_p50, None, 1);
        report.record(&format!("{name}_ttft_p95"), ttfts.len(), ttft_p95, None, 1);
        report.record(&format!("{name}_itl_p50"), gaps.len(), itl_p50, None, 1);
        report.record(&format!("{name}_itl_p95"), gaps.len(), itl_p95, None, 1);
    };
    measure_loopback("http_loopback", &|| {
        run_http_loopback(&model, &shared, lb_requests, lb_connections)
    });
    measure_loopback("inproc_loopback", &|| {
        run_inproc_loopback(&model, &shared, lb_requests)
    });

    // Priority mix: the TTFT a High request sees when the pool is
    // saturated by Batch-class work, with preemption on (evict-and-swap a
    // Batch victim) vs off (wait for a natural completion). The gap
    // between the two p95 rows is the headline win of priority
    // scheduling; the eviction count is recorded so the JSON shows the
    // price paid for it.
    let pm_high = if quick { 3 } else { 8 };
    println!(
        "\npriority-mix workload: {pm_high} High arrivals x {passes} pass(es) over a \
         saturated Batch pool, max_slots=3, budget=63 blocks\n"
    );
    for (name, preemption) in [("priority_preempt", true), ("priority_wait", false)] {
        let mut ttfts: Vec<f64> = Vec::new();
        let mut evictions = 0usize;
        for _ in 0..passes {
            let timing = run_priority_mix(&model, &shared, pm_high, preemption);
            // Shape-independent guard (the JSON gate is one-sided): with
            // preemption on and a fully reserved budget, High arrivals
            // must actually evict — if this stops happening the bench
            // itself fails rather than silently recording the waiting
            // path twice.
            if preemption {
                assert!(
                    timing.preemptions >= 1,
                    "saturated priority-mix pass ran without a single eviction"
                );
            } else {
                assert_eq!(timing.preemptions, 0, "preemption disabled must not evict");
            }
            ttfts.extend(timing.high_ttft_us);
            evictions += timing.preemptions;
        }
        ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let p50 = percentile(&ttfts, 0.50);
        let p95 = percentile(&ttfts, 0.95);
        println!(
            "{name:<24} {:>8} High reqs  ttft p50 {p50:>9.2} us  p95 {p95:>9.2} us  \
             evictions {:>3}/pass",
            ttfts.len(),
            evictions / passes,
        );
        report.record(&format!("{name}_high_ttft_p50"), ttfts.len(), p50, None, 1);
        report.record(&format!("{name}_high_ttft_p95"), ttfts.len(), p95, None, 1);
        if preemption {
            report.record_value(
                "priority_preempt_evictions_per_pass",
                pm_high,
                (evictions / passes) as f64,
            );
        }
    }

    // Speculative decoding: the staggered-arrival workload dense-only vs
    // with sparse drafts and dense verification. Tokens are bit-identical
    // by construction, so the throughput gap is the lossless speedup; the
    // acceptance rate is recorded and asserted nonzero so the JSON gate
    // cannot pass on a silently-disabled speculative path.
    let spec_requests = if quick { 4 } else { 12 };
    let mut spec_work = churn_workload(spec_requests);
    for r in &mut spec_work {
        // No mid-flight cancels: both sides must decode the same tokens.
        r.cancel_after_tokens = None;
    }
    println!(
        "\nspeculative workload: {spec_requests} requests x {passes} pass(es), \
         sparse draft k={SPECULATIVE_K}, dense verify\n"
    );
    let measure_speculative = |speculative: bool| -> (f64, usize, SpeculativeStats) {
        let mut tokens = 0usize;
        let mut total_us = 0.0f64;
        let mut stats = SpeculativeStats::default();
        for _ in 0..passes {
            let (timing, s) = run_speculative_serving(&model, &spec_work, speculative);
            tokens += timing.tokens;
            total_us += timing.total_us;
            stats.merge(&s);
        }
        (total_us / tokens as f64, tokens, stats)
    };
    let (dense_us_tok, dense_tokens, _) = measure_speculative(false);
    let (spec_us_tok, spec_tokens, spec_stats) = measure_speculative(true);
    assert_eq!(
        spec_tokens, dense_tokens,
        "lossless speculation must emit exactly the dense token count"
    );
    assert!(
        spec_stats.drafted > 0 && spec_stats.accepted > 0,
        "speculative serving pass drafted/accepted nothing: the draft path is disabled"
    );
    for (name, us_tok, speedup) in [
        ("dense_only_scheduler", dense_us_tok, None),
        (
            "speculative_scheduler",
            spec_us_tok,
            Some(dense_us_tok / spec_us_tok),
        ),
    ] {
        println!(
            "{name:<24} {dense_tokens:>8} tokens  {us_tok:>9.2} us/token \
             ({:>9.0} tok/s){}",
            1e6 / us_tok,
            match speedup {
                Some(s) => format!("  {s:.2}x over dense-only"),
                None => String::new(),
            },
        );
        report.record(
            &format!("{name}_throughput"),
            dense_tokens,
            us_tok,
            speedup,
            1,
        );
    }
    println!(
        "speculative acceptance: {}/{} drafts accepted ({:.1}%)",
        spec_stats.accepted,
        spec_stats.drafted,
        spec_stats.acceptance_rate() * 100.0,
    );
    report.record_value(
        "speculative_acceptance_rate_pct",
        spec_requests,
        spec_stats.acceptance_rate() * 100.0,
    );

    // f32-vs-int8 token agreement, measured through the eval harness and
    // *reported, not asserted* (the quantization contract is "own-config
    // determinism", not f32 equivalence): the f32 dense engine's greedy
    // continuations are the gold, and each position scores whether the
    // int8 engine's teacher-forced argmax reproduces them.
    let agree_tasks = if quick { 2 } else { 6 };
    let agree_new = if quick { 8 } else { 12 };
    let suite = TaskSuite::gsm8k_syn(agree_tasks, 101);
    let gold = gold_continuations(&model, &suite, agree_new);
    let mut int8_engine = EngineBuilder::new(&model)
        .weight_format(WeightFormat::Int8)
        .build()
        .unwrap();
    let mut agree_positions = 0usize;
    let mut agree_matches = 0usize;
    for (task, gold_tokens) in suite.tasks.iter().zip(&gold) {
        let m = teacher_forced_engine_matches(int8_engine.as_mut(), &task.tokens, gold_tokens);
        agree_matches += m.iter().filter(|x| **x).count();
        agree_positions += m.len();
    }
    let agreement_pct = 100.0 * agree_matches as f64 / agree_positions as f64;
    println!(
        "\nint8 vs f32 token agreement (teacher-forced, {agree_tasks} tasks x \
         {agree_new} tokens): {agree_matches}/{agree_positions} ({agreement_pct:.1}%)"
    );
    report.record_value("int8_token_agreement_pct", agree_positions, agreement_pct);

    // KV cache dtype: the same fixed decode pass with the pool storing
    // f32 vs f16. The byte counts are deterministic, so the halving is a
    // hard in-run assert (it holds in the quick smoke too); the JSON gate
    // then bounds *increases* of both records against the per-host
    // baseline, so a silently-widened f16 path fails CI.
    println!("\nKV cache dtype: peak pool bytes over one fixed 4-request pass\n");
    let kv_f32 = peak_kv_bytes(&model, &shared, KvDtype::F32);
    let kv_f16 = peak_kv_bytes(&model, &shared, KvDtype::F16);
    assert_eq!(
        kv_f16 * 2,
        kv_f32,
        "f16 KV storage must halve peak pool bytes exactly"
    );
    println!("kv_peak_bytes_f32        {kv_f32:>9} B");
    println!("kv_peak_bytes_f16        {kv_f16:>9} B  (exactly half)");
    report.record_value("kv_peak_bytes_f32", 4, kv_f32 as f64);
    report.record_value("kv_peak_bytes_f16", 4, kv_f16 as f64);

    report.note(&format!(
        "host {}: latency percentiles depend on core count; on a 1-core \
         container concurrent requests time-slice rather than overlap",
        sparseinfer_bench::host_fingerprint()
    ));
    report.note(
        "continuous_int8 decodes the 64-dim bench model, whose rows are too \
         short to be bandwidth-bound — the int8 kernel win at real widths is \
         the sparse_gemv_q8_into_* records in BENCH_kernels.json",
    );
    report.write();
}
