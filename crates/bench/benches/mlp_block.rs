//! Benchmarks of whole MLP-block execution: dense baseline versus
//! SparseInfer's predicted-sparsity path at several alphas — the CPU-level
//! analogue of the per-layer latency story in Fig. 4. Self-timed with
//! `std::time` (criterion is unavailable offline).
//!
//! ```text
//! cargo bench --bench mlp_block
//! ```

use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::sparse::mlp::{dense_mlp_forward, sparse_mlp_forward, MlpOptions};
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::{Prng, Vector};
use sparseinfer_bench::time_us;

fn main() {
    let cfg = ModelConfig::sim_13b();
    let model = WeightGenerator::new(&cfg, 3).build();
    let mlp = model.layers()[cfg.n_layers / 2].mlp();
    let mut rng = Prng::seed(4);
    let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.6, 1.0) as f32);

    println!("== mlp_block ==");
    let t_dense = time_us("dense (llama.cpp path)", 100, || {
        let mut ops = OpCounter::default();
        dense_mlp_forward(mlp, &x, &mut ops)
    });

    for alpha in [1.00f64, 1.03] {
        let mut predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(alpha));
        let mask = predictor.predict(cfg.n_layers / 2, &x);
        let t = time_us(&format!("sparseinfer alpha_{alpha:.2}"), 200, || {
            let mut ops = OpCounter::default();
            sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops)
        });
        println!("  -> {:.1}x over dense", t_dense / t);
    }

    // Prediction + sparse execution together (the end-to-end per-layer
    // cost).
    let mut predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));
    let t_e2e = time_us("predict_then_sparse_mlp", 200, || {
        let mask = predictor.predict(cfg.n_layers / 2, &x);
        let mut ops = OpCounter::default();
        sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops)
    });
    println!(
        "  -> {:.1}x over dense including prediction",
        t_dense / t_e2e
    );
}
