//! Criterion benchmarks of whole MLP-block execution: dense baseline versus
//! SparseInfer's predicted-sparsity path at several alphas — the CPU-level
//! analogue of the per-layer latency story in Fig. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::sparse::mlp::{dense_mlp_forward, sparse_mlp_forward, MlpOptions};
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::{Prng, Vector};

fn bench_mlp_block(c: &mut Criterion) {
    let cfg = ModelConfig::sim_13b();
    let model = WeightGenerator::new(&cfg, 3).build();
    let mlp = model.layers()[cfg.n_layers / 2].mlp();
    let mut rng = Prng::seed(4);
    let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.6, 1.0) as f32);

    let mut group = c.benchmark_group("mlp_block");
    group.bench_function("dense (llama.cpp path)", |b| {
        b.iter(|| {
            let mut ops = OpCounter::default();
            std::hint::black_box(dense_mlp_forward(mlp, &x, &mut ops))
        })
    });

    for alpha in [1.00f64, 1.03] {
        let mut predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(alpha));
        let mask = predictor.predict(cfg.n_layers / 2, &x);
        group.bench_with_input(
            BenchmarkId::new("sparseinfer", format!("alpha_{alpha:.2}")),
            &mask,
            |b, mask| {
                b.iter(|| {
                    let mut ops = OpCounter::default();
                    std::hint::black_box(sparse_mlp_forward(
                        mlp,
                        &x,
                        mask,
                        MlpOptions::default(),
                        &mut ops,
                    ))
                })
            },
        );
    }

    // Prediction + sparse execution together (the end-to-end per-layer cost).
    let mut predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));
    group.bench_function("predict_then_sparse_mlp", |b| {
        b.iter(|| {
            let mask = predictor.predict(cfg.n_layers / 2, &x);
            let mut ops = OpCounter::default();
            std::hint::black_box(sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mlp_block
}
criterion_main!(benches);
