//! Benchmarks of whole MLP-block execution: the pre-PR scalar dense
//! baseline, the unrolled dense path, SparseInfer's predicted-sparsity path
//! at several alphas, the allocation-free workspace hot path, and thread
//! scaling — the CPU-level analogue of the per-layer latency story in
//! Fig. 4. Self-timed with `std::time` (criterion is unavailable offline);
//! every measurement also lands in `BENCH_mlp_block.json`.
//!
//! ```text
//! cargo bench --bench mlp_block                # full run
//! SPARSEINFER_BENCH_QUICK=1 cargo bench ...    # 1-iter CI smoke
//! ```

use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
use sparseinfer::predictor::{
    AlphaSchedule, PredictorScratch, SignBitPredictor, SkipMask, SparsityPredictor,
};
use sparseinfer::sparse::mlp::{
    dense_mlp_forward, sparse_mlp_forward, sparse_mlp_forward_into, MlpOptions,
};
use sparseinfer::sparse::OpCounter;
use sparseinfer::tensor::gemv::{gemv_transposed, reference};
use sparseinfer::tensor::{ParallelOptions, Prng, ThreadPool, Vector, Workspace};
use sparseinfer_bench::{bench_iters, BenchReport};

fn main() {
    let mut report = BenchReport::new("mlp_block");
    let cfg = ModelConfig::sim_13b();
    let model = WeightGenerator::new(&cfg, 3).build();
    let mlp = model.layers()[cfg.n_layers / 2].mlp();
    let mut rng = Prng::seed(4);
    let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.6, 1.0) as f32);

    println!("== mlp_block ==");
    // The pre-PR dense path: single-accumulator scalar GEMVs, allocating —
    // exactly the seed's `GatedMlp::forward` composition, measured on this
    // machine so the "2x over pre-PR dense" criterion is self-contained.
    let t_scalar = report.time(
        "dense_scalar_pre_pr_baseline",
        bench_iters(100),
        1,
        None,
        || {
            let mut h1 = reference::gemv(mlp.w_gate(), &x);
            mlp.activation().apply_slice(h1.as_mut_slice());
            let h2 = reference::gemv(mlp.w_up(), &x);
            let h3 = h1.hadamard(&h2).expect("same length");
            gemv_transposed(mlp.w_down_t(), &h3)
        },
    );

    let t_dense = {
        let us =
            sparseinfer_bench::time_us("dense_unrolled (llama.cpp path)", bench_iters(100), || {
                let mut ops = OpCounter::default();
                dense_mlp_forward(mlp, &x, &mut ops)
            });
        report.record(
            "dense_unrolled",
            bench_iters(100),
            us,
            Some(t_scalar / us),
            1,
        );
        us
    };
    println!(
        "  -> {:.1}x over the pre-PR scalar dense baseline",
        t_scalar / t_dense
    );

    for alpha in [1.00f64, 1.03] {
        let mut predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(alpha));
        let mask = predictor.predict(cfg.n_layers / 2, &x);
        let name = format!("sparseinfer_alpha_{alpha:.2}");
        let t = sparseinfer_bench::time_us(&name, bench_iters(200), || {
            let mut ops = OpCounter::default();
            sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops)
        });
        report.record(&name, bench_iters(200), t, Some(t_dense / t), 1);
        println!("  -> {:.1}x over dense", t_dense / t);
    }

    // The serving hot path: workspace-recycled buffers, zero allocations
    // per call once warm, plus the per-token prediction.
    let predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));
    let layer = cfg.n_layers / 2;
    let mut scratch = PredictorScratch::new();
    let mut mask = SkipMask::all_dense(0);
    let mut effective = SkipMask::all_dense(0);
    let mut ws = Workspace::new();
    let mut out = Vector::zeros(0);
    let pool1 = ThreadPool::single();
    let t_ws = sparseinfer_bench::time_us(
        "predict_then_sparse_mlp_workspace",
        bench_iters(200),
        || {
            predictor.predict_into(layer, &x, &mut scratch, &mut mask);
            let mut ops = OpCounter::default();
            sparse_mlp_forward_into(
                mlp,
                &x,
                &mask,
                MlpOptions::default(),
                &pool1,
                &mut ws,
                &mut effective,
                &mut ops,
                &mut out,
            );
        },
    );
    report.record(
        "predict_then_sparse_mlp_workspace",
        bench_iters(200),
        t_ws,
        Some(t_dense / t_ws),
        1,
    );
    println!(
        "  -> {:.1}x over dense including prediction (allocation-free)",
        t_dense / t_ws
    );

    println!("\n== full-block thread scaling (dense mask, unrolled kernels) ==");
    let dense_mask = SkipMask::all_dense(cfg.mlp_dim);
    let mut t1 = 0.0f64;
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(ParallelOptions::threads(threads));
        let name = format!("dense_mlp_block_{threads}t");
        let us = sparseinfer_bench::time_us(&name, bench_iters(100), || {
            let mut ops = OpCounter::default();
            sparse_mlp_forward_into(
                mlp,
                &x,
                &dense_mask,
                MlpOptions {
                    kernel_fusion: false,
                    actual_sparsity: false,
                },
                &pool,
                &mut ws,
                &mut effective,
                &mut ops,
                &mut out,
            );
        });
        if threads == 1 {
            t1 = us;
        }
        report.record(&name, bench_iters(100), us, Some(t1 / us), threads);
        if threads > 1 {
            println!("  -> {:.2}x over 1 thread", t1 / us);
        }
    }

    report.write();
}
