//! SLO under offered load: the trace-driven harness over the continuous
//! scheduler, at two trace shapes (steady Poisson-like, bursty) × two
//! offered loads (low, high), plus gpu-sim capacity projections of the
//! measured schedule onto two Jetson device presets.
//!
//! Per scenario: wall-clock TTFT / inter-token-latency percentiles and
//! goodput at the TTFT SLO (host-dependent; gated per host) next to the
//! deterministic tick-derived numbers — queue-wait percentiles,
//! preemptions, peak KV blocks and budget headroom — which are identical
//! on every machine and make the committed JSON a cross-host contract.
//! Machine-readable copies land in `BENCH_slo.json` (the committed copy
//! is skipped under `SPARSEINFER_BENCH_QUICK=1`, which runs a small CI
//! smoke; `SPARSEINFER_BENCH_OUT` gets a fresh copy either way for
//! `bench_gate`).

use std::sync::Arc;

use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor, SparsityPredictor};
use sparseinfer::sparse::engine::{Engine, EngineBuilder};
use sparseinfer::sparse::scheduler::SchedulerConfig;
use sparseinfer_bench::BenchReport;
use sparseinfer_trace::{project, replay, CostModel, ReplayConfig, ReplayOutcome, TraceSpec};

fn bench_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim = 64;
    cfg.mlp_dim = 160;
    cfg.n_heads = 2;
    cfg.n_layers = 3;
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 99).build()
}

/// Dense/sparse mix over one shared predictor — the serving bench's
/// engine population, so the two benches measure the same stack.
fn engine_for<'m>(
    model: &'m Model,
    shared: &Arc<dyn SparsityPredictor>,
    i: usize,
) -> Box<dyn Engine + 'm> {
    if i.is_multiple_of(2) {
        EngineBuilder::new(model)
            .predictor_shared(Arc::clone(shared))
            .build()
            .unwrap()
    } else {
        EngineBuilder::new(model).build().unwrap()
    }
}

/// The TTFT SLO the goodput figure counts against. Generous on purpose:
/// the interesting signal is how attainment *drops* from low to high
/// offered load, not the absolute number on any given host.
const TTFT_SLO_US: f64 = 200_000.0;

fn scenario_config() -> ReplayConfig {
    ReplayConfig {
        // A bounded budget so high offered load actually queues — the
        // contention is the phenomenon under measurement.
        scheduler: SchedulerConfig::builder()
            .max_slots(4)
            .block_tokens(8)
            .kv_block_budget(128)
            .preemption(true)
            .build()
            .unwrap(),
        slot_threads: 1,
        ttft_slo_us: TTFT_SLO_US,
    }
}

fn main() {
    let quick = std::env::var_os("SPARSEINFER_BENCH_QUICK").is_some();
    let model = bench_model();
    let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
        &model,
        AlphaSchedule::uniform(1.0),
    ));
    let n_requests = if quick { 8 } else { 32 };

    println!(
        "trace-driven SLO harness: {n_requests} requests/scenario, \
         max_slots=4, block_tokens=8, kv_budget=128 blocks, \
         ttft slo {:.0} ms\n",
        TTFT_SLO_US / 1e3
    );

    let mut report = BenchReport::new("slo");
    // (record prefix, trace spec) — two shapes × two offered loads. The
    // gap is in scheduler ticks; smaller gap = higher offered load.
    let scenarios = [
        ("steady_low", TraceSpec::steady(42).mean_gap_ticks(4.0)),
        ("steady_high", TraceSpec::steady(42).mean_gap_ticks(0.5)),
        ("bursty_low", TraceSpec::bursty(43).mean_gap_ticks(16.0)),
        ("bursty_high", TraceSpec::bursty(43).mean_gap_ticks(4.0)),
    ];

    let mut high_load_run: Option<ReplayOutcome> = None;
    for (name, spec) in scenarios {
        let workload = spec.requests(n_requests).generate();
        let outcome = replay(&workload, &scenario_config(), |i| {
            engine_for(&model, &shared, i)
        });
        let r = &outcome.report;
        assert_eq!(r.requests, n_requests, "{name}: trace fully replayed");
        assert_eq!(r.scheduler.retired, n_requests);
        println!(
            "{name:<14} ttft p50 {:>9.0} us  p95 {:>9.0} us  itl p95 {:>8.0} us  \
             queue p95 {:>3} ticks  preempt {:>3}  kv peak {:>3} blk  \
             headroom {:>3} blk  goodput {:>6.1} rps ({:>4.0}% in SLO)",
            r.ttft_us[0],
            r.ttft_us[1],
            r.itl_us[1],
            r.queue_wait_ticks[1],
            r.scheduler.preemption.preemptions,
            r.peak_kv_blocks,
            r.kv_headroom_blocks.unwrap_or(0),
            r.goodput_rps,
            r.slo_attainment * 100.0,
        );
        // Wall-clock rows: host-dependent, gated per host.
        report.record(
            &format!("{name}_ttft_p50"),
            r.requests,
            r.ttft_us[0],
            None,
            1,
        );
        report.record(
            &format!("{name}_ttft_p95"),
            r.requests,
            r.ttft_us[1],
            None,
            1,
        );
        report.record(&format!("{name}_itl_p95"), r.tokens, r.itl_us[1], None, 1);
        // Deterministic rows: identical on every host for this workload.
        report.record_value(
            &format!("{name}_queue_wait_p95_ticks"),
            r.requests,
            r.queue_wait_ticks[1] as f64,
        );
        report.record_value(
            &format!("{name}_preemptions"),
            r.requests,
            r.scheduler.preemption.preemptions as f64,
        );
        report.record_value(
            &format!("{name}_kv_peak_blocks"),
            r.requests,
            r.peak_kv_blocks as f64,
        );
        report.record_value(
            &format!("{name}_kv_headroom_blocks"),
            r.requests,
            r.kv_headroom_blocks.unwrap_or(0) as f64,
        );
        report.record_value(&format!("{name}_goodput_rps"), r.requests, r.goodput_rps);
        if name == "steady_high" {
            high_load_run = Some(outcome);
        }
    }

    // Capacity planning: the measured high-load schedule priced on two
    // Jetson presets at paper scale, dense vs SparseInfer decode. The
    // projected totals are deterministic (tick schedule × roofline
    // prices), so these rows gate across hosts; the in-run asserts pin
    // the orderings the planning model exists to answer.
    let high = high_load_run.expect("steady_high scenario ran");
    let paper = ModelConfig::sim_7b();
    println!("\ncapacity projection of steady_high at paper scale (sim_7b):\n");
    for spec in [
        GpuSpec::jetson_orin_agx_64gb(),
        GpuSpec::jetson_orin_nano_8gb(),
    ] {
        let dense = project(&high.records, &CostModel::dense(&spec, &paper, 256), &spec);
        let sparse = project(
            &high.records,
            &CostModel::sparseinfer(&spec, &paper, 0.9, 256),
            &spec,
        );
        assert!(
            sparse.total_us < dense.total_us,
            "{}: projected sparse decode must beat dense",
            spec.name
        );
        let slug = if spec.name.contains("AGX") {
            "agx"
        } else {
            "nano"
        };
        println!(
            "{:<22} dense {:>8.1} ms (ttft p95 {:>7.1} ms)   sparse {:>8.1} ms \
             (ttft p95 {:>7.1} ms)   {:.2}x",
            spec.name,
            dense.total_us / 1e3,
            dense.ttft_us[1] / 1e3,
            sparse.total_us / 1e3,
            sparse.ttft_us[1] / 1e3,
            dense.total_us / sparse.total_us,
        );
        report.record(
            &format!("projected_{slug}_dense_us_per_token"),
            dense.tokens,
            dense.us_per_token,
            None,
            1,
        );
        report.record(
            &format!("projected_{slug}_sparse_us_per_token"),
            sparse.tokens,
            sparse.us_per_token,
            Some(dense.us_per_token / sparse.us_per_token),
            1,
        );
        report.record(
            &format!("projected_{slug}_sparse_ttft_p95"),
            sparse.tokens,
            sparse.ttft_us[1],
            None,
            1,
        );
    }

    report.note(&format!(
        "host {}: ttft/itl/goodput rows are wall clock (a 1-core container \
         time-slices concurrent slots); queue-wait, preemption, kv and \
         projected_* rows are deterministic for this trace and gate \
         across hosts",
        sparseinfer_bench::host_fingerprint()
    ));
    report.note(
        "projections price the measured steady_high schedule at sim_7b scale \
         on each device roofline; see README 'Load testing & capacity planning'",
    );
    report.write();
}
