//! A minimal blocking HTTP/1.1 client for loopback use: the integration
//! tests, the serving bench, the example consumer and the binary's
//! `--smoke` self-test all speak to the server through this module, so
//! the wire format is exercised by a *second*, independently written
//! codec (the server never parses its own output).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sparseinfer::json::Json;

/// A fully buffered HTTP response.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The response body, de-chunked when chunked transfer encoding was
    /// used.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Parse failure, as an [`io::Error`] for caller convenience.
    pub fn json(&self) -> io::Result<Json> {
        Json::parse(&self.text()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// One client connection, usable for several keep-alive requests.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Generous ceiling so a wedged server fails a test instead of
        // hanging it; normal responses arrive in milliseconds.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends `GET path` and buffers the full response.
    ///
    /// # Errors
    ///
    /// Transport failure or malformed response.
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.send_request("GET", path, None)?;
        self.read_response()
    }

    /// Sends `POST path` with a JSON body and buffers the full response —
    /// including an SSE stream, which is simply read to its end.
    ///
    /// # Errors
    ///
    /// Transport failure or malformed response.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<Response> {
        self.send_request("POST", path, Some(body))?;
        self.read_response()
    }

    /// Sends `POST path` and hands back an incremental [`SseStream`] over
    /// the response body instead of buffering it — the consumer sees each
    /// event as its chunk arrives.
    ///
    /// # Errors
    ///
    /// Transport failure, or a non-streaming (error) response head.
    pub fn post_streaming(mut self, path: &str, body: &str) -> io::Result<SseStream> {
        self.send_request("POST", path, Some(body))?;
        let (status, headers) = self.read_head()?;
        let chunked = headers
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("transfer-encoding") && v == "chunked");
        if status != 200 || !chunked {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a chunked 200 stream, got {status}"),
            ));
        }
        Ok(SseStream {
            client: self,
            pending: Vec::new(),
            done: false,
        })
    }

    /// Drops the connection mid-whatever — used by disconnect tests. (An
    /// explicit method, so tests read as intent rather than as a `drop`.)
    pub fn abandon(self) {
        drop(self);
    }

    fn send_request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: localhost\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body.as_bytes())?;
        }
        self.stream.flush()
    }

    /// Reads bytes until `self.buf` satisfies `complete`, then returns
    /// the prefix length `complete` reported.
    fn fill_until(&mut self, complete: impl Fn(&[u8]) -> Option<usize>) -> io::Result<usize> {
        loop {
            if let Some(len) = complete(&self.buf) {
                return Ok(len);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads and consumes the response head (status line + headers).
    fn read_head(&mut self) -> io::Result<(u16, Vec<(String, String)>)> {
        let head_len =
            self.fill_until(|buf| buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4))?;
        let head: Vec<u8> = self.buf.drain(..head_len).collect();
        let text = std::str::from_utf8(&head)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
        let mut lines = text.trim_end_matches("\r\n").split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_string(), value.trim().to_string()));
            }
        }
        Ok((status, headers))
    }

    /// Reads one full response, de-chunking if necessary.
    fn read_response(&mut self) -> io::Result<Response> {
        let (status, headers) = self.read_head()?;
        let chunked = headers
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("transfer-encoding") && v == "chunked");
        let body = if chunked {
            let mut body = Vec::new();
            while let Some(chunk) = self.read_chunk()? {
                body.extend_from_slice(&chunk);
            }
            body
        } else {
            let len = headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0);
            self.fill_until(|buf| (buf.len() >= len).then_some(len))?;
            self.buf.drain(..len).collect()
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// Reads one transfer-encoding chunk; `None` is the terminal chunk.
    fn read_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        let line_len =
            self.fill_until(|buf| buf.windows(2).position(|w| w == b"\r\n").map(|i| i + 2))?;
        let line: Vec<u8> = self.buf.drain(..line_len).collect();
        let size_text = std::str::from_utf8(&line[..line.len() - 2])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-ASCII chunk size"))?;
        let size = usize::from_str_radix(size_text.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        // Chunk data plus its trailing CRLF.
        let total = size + 2;
        self.fill_until(|buf| (buf.len() >= total).then_some(total))?;
        let mut data: Vec<u8> = self.buf.drain(..total).collect();
        data.truncate(size);
        Ok(if size == 0 { None } else { Some(data) })
    }
}

/// An incremental reader over an SSE response body: one parsed JSON
/// event per [`next_event`](Self::next_event) call.
#[derive(Debug)]
pub struct SseStream {
    client: Client,
    /// Bytes of the SSE body received but not yet consumed as events.
    pending: Vec<u8>,
    done: bool,
}

impl SseStream {
    /// Returns the next event's JSON payload, or `None` once the stream
    /// has ended (terminal chunk received).
    ///
    /// # Errors
    ///
    /// Transport failure or malformed framing.
    pub fn next_event(&mut self) -> io::Result<Option<Json>> {
        loop {
            // A complete SSE frame is "data: {...}\n\n".
            if let Some(end) = self.pending.windows(2).position(|w| w == b"\n\n") {
                let frame: Vec<u8> = self.pending.drain(..end + 2).collect();
                let text = std::str::from_utf8(&frame[..end])
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 event"))?;
                let payload = text.strip_prefix("data: ").ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "missing data: prefix")
                })?;
                let json = Json::parse(payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                return Ok(Some(json));
            }
            if self.done {
                return Ok(None);
            }
            match self.client.read_chunk()? {
                Some(chunk) => self.pending.extend_from_slice(&chunk),
                None => self.done = true,
            }
        }
    }

    /// Reads the remaining events: generated tokens plus the terminal
    /// summary object (the one with a `"finish"` field).
    ///
    /// # Errors
    ///
    /// Transport failure, malformed framing, or a stream that ends
    /// without a finish event.
    pub fn collect_generation(mut self) -> io::Result<(Vec<u32>, Json)> {
        let mut tokens = Vec::new();
        while let Some(event) = self.next_event()? {
            if event.get("finish").is_some() {
                return Ok((tokens, event));
            }
            let token = event
                .get("token")
                .and_then(Json::as_u64)
                .filter(|&t| t <= u32::MAX as u64)
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "event without token or finish")
                })?;
            tokens.push(token as u32);
        }
        Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended without a finish event",
        ))
    }

    /// Abandons the stream mid-flight by closing the socket — the server
    /// must notice on its next write and cancel the request.
    pub fn abandon(self) {
        drop(self);
    }

    /// Hands the keep-alive connection back for the next request, once
    /// the stream has fully ended (SSE bodies are chunked, so the
    /// connection stays usable after the terminal chunk).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] if the stream has not ended or has
    /// unconsumed events — reusing the socket then would desynchronise
    /// the connection.
    pub fn into_client(self) -> io::Result<Client> {
        if !self.done || !self.pending.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream not fully consumed",
            ));
        }
        Ok(self.client)
    }
}
