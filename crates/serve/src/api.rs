//! The wire API: JSON request parsing and JSON event/stats encoding.
//!
//! Everything here is pure data transformation over
//! [`sparseinfer::json`] — no sockets, no threads — so the whole wire
//! contract is unit-testable without booting a server. The inverse
//! direction (`parse` of what we emit) is exercised by the loopback
//! client in [`crate::client`].

use std::time::Duration;

use sparseinfer::json::Json;
use sparseinfer::model::Sampler;
use sparseinfer::sparse::request::{FinishReason, GenerateRequest, Priority, TokenEvent};

use crate::owner::{FinishSummary, StatsSnapshot};

/// A parsed `POST /v1/generate` body: the scheduler-level request plus the
/// serving-level deadline.
#[derive(Debug)]
pub struct GenerateParams {
    /// The request handed to the scheduler.
    pub request: GenerateRequest,
    /// Relative deadline; the owner loop expires the request once this
    /// much time has passed since submission.
    pub deadline: Option<Duration>,
}

/// Parses a `POST /v1/generate` JSON body.
///
/// Accepted fields:
///
/// | field | type | default | meaning |
/// |---|---|---|---|
/// | `prompt` | array of token ids | required, non-empty | the prompt |
/// | `max_new` | integer ≥ 1 | 16 | continuation budget |
/// | `stop` | array of token ids | `[]` | stop tokens |
/// | `temperature` | number > 0 | greedy | softmax temperature |
/// | `top_k` | integer ≥ 1 | off | top-k truncation (uses `temperature` or 1.0) |
/// | `seed` | integer | 0 | sampler RNG seed |
/// | `deadline_ms` | integer ≥ 1 | none | per-request deadline |
/// | `priority` | `"high"` / `"normal"` / `"batch"` | `"normal"` | admission class |
///
/// # Errors
///
/// A human-readable message destined for a `400` response body. Unknown
/// fields are rejected too — a typo'd `max_mew` silently meaning
/// "16 tokens" is worse than a 400.
pub fn parse_generate_body(body: &str) -> Result<GenerateParams, String> {
    let doc = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Object(fields) = &doc else {
        return Err("request body must be a JSON object".to_string());
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "prompt"
                | "max_new"
                | "stop"
                | "temperature"
                | "top_k"
                | "seed"
                | "deadline_ms"
                | "priority"
        ) {
            return Err(format!("unknown field `{key}`"));
        }
    }

    let prompt = tokens_field(&doc, "prompt")?
        .ok_or_else(|| "missing required field `prompt`".to_string())?;
    if prompt.is_empty() {
        return Err("`prompt` must be a non-empty array of token ids".to_string());
    }
    let mut request = GenerateRequest::new(&prompt);
    if let Some(max_new) = u64_field(&doc, "max_new")? {
        if max_new == 0 {
            return Err("`max_new` must be at least 1".to_string());
        }
        request = request.max_new(max_new as usize);
    }
    if let Some(stop) = tokens_field(&doc, "stop")? {
        for token in stop {
            request = request.stop_at(token);
        }
    }

    let temperature = match doc.get("temperature") {
        None => None,
        Some(v) => match v.as_f64() {
            Some(t) if t > 0.0 && t.is_finite() => Some(t),
            _ => return Err("`temperature` must be a positive number".to_string()),
        },
    };
    let seed = u64_field(&doc, "seed")?.unwrap_or(0);
    match u64_field(&doc, "top_k")? {
        Some(0) => return Err("`top_k` must be at least 1".to_string()),
        Some(k) => {
            request = request.sampler(Sampler::top_k(k as usize, temperature.unwrap_or(1.0), seed));
        }
        None => {
            if let Some(t) = temperature {
                request = request.sampler(Sampler::temperature(t, seed));
            }
        }
    }

    match doc.get("priority") {
        None => {}
        Some(v) => {
            let priority = match v.as_str() {
                Some("high") => Priority::High,
                Some("normal") => Priority::Normal,
                Some("batch") => Priority::Batch,
                _ => {
                    return Err(
                        "`priority` must be one of \"high\", \"normal\", \"batch\"".to_string()
                    )
                }
            };
            request = request.priority(priority);
        }
    }

    let deadline = match u64_field(&doc, "deadline_ms")? {
        Some(0) => return Err("`deadline_ms` must be at least 1".to_string()),
        Some(ms) => Some(Duration::from_millis(ms)),
        None => None,
    };
    Ok(GenerateParams { request, deadline })
}

/// Reads an optional array-of-token-ids field.
fn tokens_field(doc: &Json, key: &str) -> Result<Option<Vec<u32>>, String> {
    let Some(value) = doc.get(key) else {
        return Ok(None);
    };
    let items = value
        .as_array()
        .ok_or_else(|| format!("`{key}` must be an array of token ids"))?;
    let mut tokens = Vec::with_capacity(items.len());
    for item in items {
        let id = item
            .as_u64()
            .filter(|&id| id <= u32::MAX as u64)
            .ok_or_else(|| format!("`{key}` entries must be token ids (u32)"))?;
        tokens.push(id as u32);
    }
    Ok(Some(tokens))
}

/// Reads an optional non-negative integer field.
fn u64_field(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

/// The wire name of a finish reason, as sent in the terminal SSE event.
pub fn finish_reason_name(finish: &FinishReason) -> &'static str {
    match finish {
        FinishReason::MaxTokens => "max_tokens",
        FinishReason::Stop(_) => "stop",
        FinishReason::Cancelled => "cancelled",
        FinishReason::DeadlineExceeded => "deadline_exceeded",
        FinishReason::Failed(_) => "failed",
    }
}

/// Encodes one token SSE event payload: `{"index":i,"token":t}`.
pub fn token_event_json(event: &TokenEvent) -> String {
    Json::Object(vec![
        ("index".to_string(), Json::Number(event.index as f64)),
        ("token".to_string(), Json::Number(event.token as f64)),
    ])
    .to_json()
}

/// Encodes the terminal SSE event payload for a finished request.
pub fn finish_event_json(summary: &FinishSummary) -> String {
    let mut fields = vec![
        (
            "finish".to_string(),
            Json::String(finish_reason_name(&summary.finish).to_string()),
        ),
        ("tokens".to_string(), Json::Number(summary.tokens as f64)),
        (
            "prefill_skipped_tokens".to_string(),
            Json::Number(summary.prefill_skipped_tokens as f64),
        ),
        (
            "preemptions".to_string(),
            Json::Number(summary.preemptions as f64),
        ),
        (
            "swapped_blocks".to_string(),
            Json::Number(summary.swapped_blocks as f64),
        ),
        ("engine".to_string(), Json::String(summary.engine.clone())),
    ];
    if let Some(spec) = &summary.speculative {
        fields.push((
            "speculative".to_string(),
            sparseinfer::stats::speculative_json(spec),
        ));
    }
    match summary.finish {
        FinishReason::Stop(token) => {
            fields.push(("stop_token".to_string(), Json::Number(token as f64)));
        }
        FinishReason::Failed(err) => {
            fields.push(("error".to_string(), Json::String(err.to_string())));
        }
        _ => {}
    }
    Json::Object(fields).to_json()
}

/// Appends `extra` fields to the named object-valued section of `doc`.
///
/// The shared scheduler encoding is the base; the serving-level fields
/// ride along inside its sections rather than forking the schema. Panics
/// if the section is missing or not an object — that would mean the
/// shared serializer changed shape, which this crate's round-trip test
/// catches immediately.
fn append_to_section(doc: &mut Json, section: &str, extra: Vec<(String, Json)>) {
    let Json::Object(sections) = doc else {
        panic!("scheduler stats must encode as an object");
    };
    let Some((_, Json::Object(fields))) = sections.iter_mut().find(|(name, _)| name == section)
    else {
        panic!("scheduler stats must contain an object section `{section}`");
    };
    fields.extend(extra);
}

/// Encodes the `GET /stats` response body.
///
/// The scheduler side is the workspace-wide encoding
/// ([`sparseinfer::stats::scheduler_stats_json`]); the serving-level
/// fields — lifetime `completed`, `draining`, the engine factory's weight
/// format, the KV high-water mark — are appended into the matching
/// sections, so `/stats` consumers and trace-harness reports read one
/// schema.
pub fn stats_json(stats: &StatsSnapshot) -> String {
    let mut doc = sparseinfer::stats::scheduler_stats_json(&stats.scheduler);
    append_to_section(
        &mut doc,
        "scheduler",
        vec![
            (
                "completed".to_string(),
                Json::Number(stats.completed as f64),
            ),
            ("draining".to_string(), Json::Bool(stats.draining)),
        ],
    );
    append_to_section(
        &mut doc,
        "dtype",
        vec![(
            "weights".to_string(),
            Json::String(stats.weight_format.to_string()),
        )],
    );
    append_to_section(
        &mut doc,
        "kv",
        vec![(
            "peak_in_use_bytes".to_string(),
            Json::Number(stats.kv_peak_in_use_bytes as f64),
        )],
    );
    doc.to_json()
}

/// Encodes a one-field error body: `{"error":"..."}`.
pub fn error_json(message: &str) -> String {
    Json::Object(vec![(
        "error".to_string(),
        Json::String(message.to_string()),
    )])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer::sparse::engine::SpeculativeStats;

    #[test]
    fn parses_a_full_generate_body() {
        let params = parse_generate_body(
            r#"{"prompt":[1,2,3],"max_new":32,"stop":[0],"top_k":8,"temperature":0.7,"seed":9,"deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!(params.request.prompt, vec![1, 2, 3]);
        assert_eq!(params.request.max_new, 32);
        assert_eq!(params.request.stop, vec![0]);
        assert_eq!(
            format!("{:?}", params.request.sampler),
            format!("{:?}", Some(Sampler::top_k(8, 0.7, 9))),
        );
        assert_eq!(params.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn defaults_match_the_library_request_builder() {
        let params = parse_generate_body(r#"{"prompt":[5]}"#).unwrap();
        let library = GenerateRequest::new(&[5]);
        assert_eq!(params.request.max_new, library.max_new);
        assert_eq!(params.request.stop, library.stop);
        assert!(
            params.request.sampler.is_none(),
            "no sampler -> engine greedy"
        );
        assert_eq!(params.deadline, None);
    }

    #[test]
    fn priority_parses_every_class_and_defaults_to_normal() {
        for (name, expected) in [
            ("high", Priority::High),
            ("normal", Priority::Normal),
            ("batch", Priority::Batch),
        ] {
            let body = format!(r#"{{"prompt":[1],"priority":"{name}"}}"#);
            let params = parse_generate_body(&body).unwrap();
            assert_eq!(params.request.priority, expected);
        }
        let params = parse_generate_body(r#"{"prompt":[1]}"#).unwrap();
        assert_eq!(params.request.priority, Priority::Normal);
    }

    #[test]
    fn temperature_without_top_k_selects_softmax_sampling() {
        let params = parse_generate_body(r#"{"prompt":[1],"temperature":0.5,"seed":3}"#).unwrap();
        assert_eq!(
            format!("{:?}", params.request.sampler),
            format!("{:?}", Some(Sampler::temperature(0.5, 3))),
        );
    }

    #[test]
    fn rejects_malformed_bodies_with_messages() {
        for (body, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            ("{}", "missing required field `prompt`"),
            (r#"{"prompt":[]}"#, "non-empty"),
            (r#"{"prompt":"abc"}"#, "`prompt` must be an array"),
            (r#"{"prompt":[1.5]}"#, "token ids (u32)"),
            (r#"{"prompt":[4294967296]}"#, "token ids (u32)"),
            (
                r#"{"prompt":[1],"max_new":0}"#,
                "`max_new` must be at least 1",
            ),
            (r#"{"prompt":[1],"max_new":-3}"#, "non-negative integer"),
            (r#"{"prompt":[1],"temperature":0}"#, "positive number"),
            (r#"{"prompt":[1],"top_k":0}"#, "`top_k` must be at least 1"),
            (r#"{"prompt":[1],"deadline_ms":0}"#, "`deadline_ms`"),
            (r#"{"prompt":[1],"max_mew":4}"#, "unknown field `max_mew`"),
            (
                r#"{"prompt":[1],"priority":"urgent"}"#,
                "`priority` must be one of",
            ),
            (
                r#"{"prompt":[1],"priority":3}"#,
                "`priority` must be one of",
            ),
        ] {
            let err = parse_generate_body(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn event_payloads_round_trip_through_the_json_parser() {
        let token = token_event_json(&TokenEvent {
            index: 3,
            token: 1042,
        });
        let doc = Json::parse(&token).unwrap();
        assert_eq!(doc.get("index").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("token").and_then(Json::as_u64), Some(1042));

        let finish = finish_event_json(&FinishSummary {
            id: 0,
            tokens: 7,
            finish: FinishReason::Stop(2),
            prefill_skipped_tokens: 16,
            preemptions: 2,
            swapped_blocks: 4,
            engine: "dense".to_string(),
            speculative: None,
        });
        let doc = Json::parse(&finish).unwrap();
        assert_eq!(doc.get("finish").and_then(Json::as_str), Some("stop"));
        assert_eq!(doc.get("tokens").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("stop_token").and_then(Json::as_u64), Some(2));
        assert_eq!(
            doc.get("prefill_skipped_tokens").and_then(Json::as_u64),
            Some(16)
        );
        assert_eq!(doc.get("preemptions").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("swapped_blocks").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("engine").and_then(Json::as_str), Some("dense"));
        assert!(
            doc.get("speculative").is_none(),
            "non-drafting engines emit no speculative section"
        );
    }

    #[test]
    fn finish_event_reports_speculative_counters_when_present() {
        let finish = finish_event_json(&FinishSummary {
            id: 0,
            tokens: 12,
            finish: FinishReason::MaxTokens,
            prefill_skipped_tokens: 0,
            preemptions: 0,
            swapped_blocks: 0,
            engine: "speculative:sparse:sparseinfer+dense".to_string(),
            speculative: Some(SpeculativeStats {
                drafted: 8,
                accepted: 6,
            }),
        });
        let doc = Json::parse(&finish).unwrap();
        let spec = doc.get("speculative").expect("speculative section");
        assert_eq!(spec.get("drafted").and_then(Json::as_u64), Some(8));
        assert_eq!(spec.get("accepted").and_then(Json::as_u64), Some(6));
        assert_eq!(
            spec.get("acceptance_rate").and_then(Json::as_f64),
            Some(0.75)
        );
    }

    #[test]
    fn finish_reason_names_cover_every_variant() {
        use sparseinfer::sparse::error::EngineError;
        assert_eq!(finish_reason_name(&FinishReason::MaxTokens), "max_tokens");
        assert_eq!(finish_reason_name(&FinishReason::Stop(1)), "stop");
        assert_eq!(finish_reason_name(&FinishReason::Cancelled), "cancelled");
        assert_eq!(
            finish_reason_name(&FinishReason::DeadlineExceeded),
            "deadline_exceeded"
        );
        assert_eq!(
            finish_reason_name(&FinishReason::Failed(EngineError::EmptyPrompt)),
            "failed"
        );
    }

    #[test]
    fn stats_json_parses_back_with_every_section() {
        use sparseinfer::sparse::engine::MemoryEstimate;
        use sparseinfer::sparse::scheduler::SchedulerStats;

        let stats = StatsSnapshot {
            scheduler: SchedulerStats {
                ticks: 37,
                submitted: 14,
                retired: 9,
                queued: 2,
                active_slots: 3,
                reserved_blocks: 11,
                kv_blocks_in_use: 9,
                kv_in_use_bytes: 4608,
                kv_block_budget: usize::MAX,
                kv_dtype: "f16",
                kv_bytes_per_elem: 2,
                memory: MemoryEstimate {
                    shared_bytes: 1024,
                    weight_bytes: 768,
                    per_session_bytes: 2048,
                    swapped_bytes: 512,
                },
                prefix: Default::default(),
                preemption: Default::default(),
                speculative: SpeculativeStats {
                    drafted: 10,
                    accepted: 4,
                },
            },
            kv_peak_in_use_bytes: 9216,
            weight_format: "int8",
            completed: 9,
            draining: false,
        };
        let doc = Json::parse(&stats_json(&stats)).unwrap();
        let sched = doc.get("scheduler").unwrap();
        assert_eq!(sched.get("ticks").and_then(Json::as_u64), Some(37));
        assert_eq!(sched.get("queued").and_then(Json::as_u64), Some(2));
        assert_eq!(sched.get("active_slots").and_then(Json::as_u64), Some(3));
        assert_eq!(sched.get("submitted").and_then(Json::as_u64), Some(14));
        assert_eq!(sched.get("retired").and_then(Json::as_u64), Some(9));
        assert_eq!(sched.get("completed").and_then(Json::as_u64), Some(9));
        assert_eq!(sched.get("draining").and_then(Json::as_bool), Some(false));
        let kv = doc.get("kv").unwrap();
        assert_eq!(kv.get("in_use_bytes").and_then(Json::as_u64), Some(4608));
        assert_eq!(
            kv.get("peak_in_use_bytes").and_then(Json::as_u64),
            Some(9216)
        );
        let dtype = doc.get("dtype").expect("dtype section");
        assert_eq!(dtype.get("weights").and_then(Json::as_str), Some("int8"));
        assert_eq!(dtype.get("kv").and_then(Json::as_str), Some("f16"));
        assert_eq!(
            dtype.get("kv_bytes_per_elem").and_then(Json::as_u64),
            Some(2)
        );
        let memory = doc.get("memory").unwrap();
        assert_eq!(memory.get("weight_bytes").and_then(Json::as_u64), Some(768));
        assert_eq!(
            memory.get("per_session_bytes").and_then(Json::as_u64),
            Some(2048)
        );
        assert_eq!(
            memory.get("swapped_bytes").and_then(Json::as_u64),
            Some(512)
        );
        assert!(doc.get("prefix_cache").is_some());
        let spec = doc.get("speculative").expect("speculative section");
        assert_eq!(spec.get("drafted").and_then(Json::as_u64), Some(10));
        assert_eq!(spec.get("accepted").and_then(Json::as_u64), Some(4));
        assert_eq!(
            spec.get("acceptance_rate").and_then(Json::as_f64),
            Some(0.4)
        );
        let preemption = doc.get("preemption").unwrap();
        assert_eq!(
            preemption.get("swapped_bytes").and_then(Json::as_u64),
            Some(0)
        );
    }
}
