//! # sparseinfer-serve — a dependency-free HTTP/1.1 streaming frontend
//!
//! Turns the continuous-batching
//! [`Scheduler`](sparseinfer::sparse::scheduler::Scheduler) into a network
//! service using nothing but `std::net`: one acceptor thread, a small pool
//! of connection-handler threads, and a single scheduler-owner thread,
//! joined by bounded mpsc channels.
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /v1/generate` | JSON body in, Server-Sent-Events token stream out (`Transfer-Encoding: chunked`), closing with a finish event carrying the [`FinishReason`](sparseinfer::sparse::request::FinishReason) and per-request stats |
//! | `GET /healthz` | liveness + load one-liner |
//! | `GET /stats` | scheduler/KV/prefix-cache/memory counters as JSON |
//!
//! The contract that matters: **tokens over HTTP are bit-identical to
//! library-level runs** of the same seeded requests. The server adds
//! transport, backpressure (`503` + `Retry-After` on a full submission
//! queue), per-request deadlines
//! ([`FinishReason::DeadlineExceeded`](sparseinfer::sparse::request::FinishReason::DeadlineExceeded)),
//! and disconnect-cancellation (a vanished client frees its decode slot
//! and KV blocks) — never different tokens.
//!
//! ```no_run
//! use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer::sparse::engine::EngineBuilder;
//! use sparseinfer_serve::{Server, ServerConfig};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let handle = server.handle(); // addr + shutdown, usable from any thread
//! println!("listening on http://{}", handle.addr());
//! // Blocks until handle.shutdown(); engines may borrow `model`.
//! let final_stats = server.serve(&|_req| EngineBuilder::new(&model).build());
//! assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod owner;
pub mod server;

pub use client::{Client, Response, SseStream};
pub use http::Limits;
pub use owner::{FinishSummary, StatsSnapshot, StreamEvent, Submission};
pub use server::{EngineFactory, Server, ServerConfig, ServerHandle};
