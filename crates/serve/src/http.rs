//! Minimal HTTP/1.1 over blocking sockets: an incremental request parser
//! and response/chunked-body writers.
//!
//! Just enough protocol for the serving frontend — no routing tables, no
//! TLS, no HTTP/2 — written for robustness against real network input:
//! requests arrive split across arbitrary `read()` boundaries, headers are
//! size-capped, bodies are length-checked *before* being buffered, and
//! every malformed input is a typed [`HttpError`] carrying the status code
//! to answer with, never a panic. Keep-alive is supported by leaving
//! unconsumed bytes in the [`RequestReader`]'s buffer for the next
//! request on the same connection.

use std::io::{self, Read, Write};

/// Parser size caps, chosen per [`ServerConfig`](crate::ServerConfig).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers; beyond this the request is
    /// answered `431` ([`HttpError::HeadersTooLarge`]).
    pub max_header_bytes: usize,
    /// Maximum declared `Content-Length`; beyond this the request is
    /// answered `413` ([`HttpError::BodyTooLarge`]) without buffering the
    /// body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    /// 16 KiB of headers, 1 MiB of body.
    fn default() -> Self {
        Self {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path plus optional query).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`). HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Protocol-level variants carry the
/// status code the connection should answer with before closing;
/// transport-level variants ([`Io`](Self::Io), [`Eof`](Self::Eof),
/// [`Timeout`](Self::Timeout)) have no response — there is nobody left to
/// answer, or nothing arrived yet.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or `Content-Length` → `400`.
    BadRequest(&'static str),
    /// Request line + headers exceeded [`Limits::max_header_bytes`] → `431`.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`] → `413`.
    BodyTooLarge,
    /// A method that carries a body (`POST`, `PUT`, `PATCH`) arrived
    /// without `Content-Length` → `411`.
    LengthRequired,
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The read timed out with no (or only a partial) request buffered —
    /// the caller decides whether to keep waiting (idle keep-alive) or
    /// give up (slow sender, shutdown).
    Timeout,
    /// Transport failure; the connection is unusable.
    Io(io::Error),
}

impl HttpError {
    /// The `(status, reason)` this protocol error is answered with;
    /// `None` for transport-level errors that cannot be answered.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            _ => None,
        }
    }

    /// A short machine-readable description for the error response body.
    pub fn message(&self) -> &'static str {
        match self {
            HttpError::BadRequest(m) => m,
            HttpError::HeadersTooLarge => "request headers too large",
            HttpError::BodyTooLarge => "request body too large",
            HttpError::LengthRequired => "Content-Length required",
            HttpError::Eof => "connection closed",
            HttpError::Timeout => "read timed out",
            HttpError::Io(_) => "transport error",
        }
    }
}

/// Incremental request parser for one connection.
///
/// Owns the connection's receive buffer so a request split across any
/// number of `read()` calls — or several requests pipelined into one —
/// parses identically: bytes accumulate until a full head (and declared
/// body) is present, and leftover bytes stay buffered for the next
/// [`read_request`](Self::read_request) call.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
}

impl RequestReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a partial request is sitting in the buffer — distinguishes
    /// an idle keep-alive connection from a slow sender on
    /// [`HttpError::Timeout`].
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads one complete request from `stream`, blocking (subject to the
    /// stream's read timeout) until it is fully buffered.
    ///
    /// # Errors
    ///
    /// See [`HttpError`]; on [`HttpError::Timeout`] the partial request
    /// stays buffered and the call can simply be retried.
    pub fn read_request(
        &mut self,
        stream: &mut impl Read,
        limits: &Limits,
    ) -> Result<Request, HttpError> {
        loop {
            if let Some(head_len) = find_head_end(&self.buf) {
                if head_len > limits.max_header_bytes {
                    return Err(HttpError::HeadersTooLarge);
                }
                let (mut request, content_len) = parse_head(&self.buf[..head_len], limits)?;
                let total = head_len + content_len;
                if self.buf.len() >= total {
                    request.body = self.buf[head_len..total].to_vec();
                    self.buf.drain(..total);
                    return Ok(request);
                }
                // Head parsed, body still in flight: fall through to read.
            } else if self.buf.len() > limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        HttpError::Eof
                    } else {
                        HttpError::BadRequest("connection closed mid-request")
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(HttpError::Timeout);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }
}

/// Index one past the `\r\n\r\n` head terminator, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Parses request line + headers and returns the request (body empty) plus
/// the validated body length to read.
fn parse_head(head: &[u8], limits: &Limits) -> Result<(Request, usize), HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::BadRequest("non-UTF-8 head"))?;
    let mut lines = text.trim_end_matches("\r\n").split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest("malformed request line"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if path.is_empty() || !path.starts_with('/') {
        return Err(HttpError::BadRequest("malformed request target"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest("malformed header"));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    let content_len = match request.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("malformed Content-Length"))?,
        None if matches!(request.method.as_str(), "POST" | "PUT" | "PATCH") => {
            return Err(HttpError::LengthRequired)
        }
        None => 0,
    };
    if content_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    Ok((request, content_len))
}

/// Writes a complete fixed-length response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a `Transfer-Encoding: chunked` response body chunk by chunk —
/// the transport under the SSE token stream. Every chunk is flushed
/// immediately: a streaming client sees each token the moment it exists,
/// and a vanished client surfaces as a write error on the very next token.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head (status + `Transfer-Encoding: chunked`)
    /// and returns the writer for the body.
    pub fn begin(
        mut w: W,
        status: u16,
        reason: &str,
        content_type: &str,
        keep_alive: bool,
    ) -> io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\nCache-Control: no-store\r\n\r\n",
            if keep_alive { "keep-alive" } else { "close" },
        );
        w.write_all(head.as_bytes())?;
        w.flush()?;
        Ok(Self { w })
    }

    /// Writes one non-empty chunk and flushes it.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        debug_assert!(!data.is_empty(), "an empty chunk would terminate the body");
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Writes the terminal zero-length chunk, ending the body.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Formats one Server-Sent-Events `data:` frame.
pub fn sse_event(json: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(json.len() + 8);
    out.extend_from_slice(b"data: ");
    out.extend_from_slice(json.as_bytes());
    out.extend_from_slice(b"\n\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Read` that delivers a script of byte slices one per call —
    /// deterministic partial reads across arbitrary boundaries.
    struct Script {
        parts: Vec<Vec<u8>>,
        next: usize,
    }

    impl Script {
        fn new(parts: &[&[u8]]) -> Self {
            Self {
                parts: parts.iter().map(|p| p.to_vec()).collect(),
                next: 0,
            }
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.next >= self.parts.len() {
                return Ok(0); // EOF after the script
            }
            let part = &self.parts[self.next];
            self.next += 1;
            buf[..part.len()].copy_from_slice(part);
            Ok(part.len())
        }
    }

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_a_request_split_across_arbitrary_read_boundaries() {
        let raw = b"POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        // Split the same request at every possible boundary: one byte per
        // read() is the worst case and must parse identically.
        for split in 1..raw.len() {
            let mut stream = Script::new(&[&raw[..split], &raw[split..]]);
            let req = RequestReader::new()
                .read_request(&mut stream, &limits())
                .unwrap_or_else(|e| panic!("split at {split}: {e:?}"));
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/generate");
            assert_eq!(req.header("host"), Some("x"));
            assert_eq!(req.body, b"hello world");
        }
        let byte_at_a_time: Vec<&[u8]> = raw.chunks(1).collect();
        let req = RequestReader::new()
            .read_request(&mut Script::new(&byte_at_a_time), &limits())
            .unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn pipelined_requests_stay_buffered_for_the_next_call() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n";
        let mut stream = Script::new(&[raw]);
        let mut reader = RequestReader::new();
        let first = reader.read_request(&mut stream, &limits()).unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(reader.mid_request(), "second request still buffered");
        let second = reader.read_request(&mut stream, &limits()).unwrap();
        assert_eq!(second.path, "/stats");
        assert!(matches!(
            reader.read_request(&mut stream, &limits()),
            Err(HttpError::Eof)
        ));
    }

    #[test]
    fn header_cap_is_enforced_even_without_a_terminator() {
        let caps = Limits {
            max_header_bytes: 128,
            max_body_bytes: 1024,
        };
        // An endless header that never terminates must fail at the cap,
        // not buffer forever.
        let junk = vec![b'a'; 4096];
        let mut stream = Script::new(&[b"GET / HTTP/1.1\r\nX-Junk: ", &junk]);
        let err = RequestReader::new()
            .read_request(&mut stream, &caps)
            .unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge));
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
        // A terminated-but-oversized head takes the same exit.
        let mut big = b"GET / HTTP/1.1\r\nX-Junk: ".to_vec();
        big.extend_from_slice(&junk[..200]);
        big.extend_from_slice(b"\r\n\r\n");
        let err = RequestReader::new()
            .read_request(&mut Script::new(&[&big]), &caps)
            .unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge));
    }

    #[test]
    fn post_without_content_length_is_411() {
        let mut stream = Script::new(&[b"POST /v1/generate HTTP/1.1\r\nHost: x\r\n\r\n"]);
        let err = RequestReader::new()
            .read_request(&mut stream, &limits())
            .unwrap_err();
        assert!(matches!(err, HttpError::LengthRequired));
        assert_eq!(err.status(), Some((411, "Length Required")));
        // GET without a body is of course fine.
        let mut stream = Script::new(&[b"GET / HTTP/1.1\r\n\r\n"]);
        assert!(RequestReader::new()
            .read_request(&mut stream, &limits())
            .is_ok());
    }

    #[test]
    fn oversized_declared_bodies_are_413_before_buffering() {
        let caps = Limits {
            max_header_bytes: 1024,
            max_body_bytes: 16,
        };
        let mut stream = Script::new(&[b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"]);
        let err = RequestReader::new()
            .read_request(&mut stream, &caps)
            .unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn malformed_inputs_are_400_with_reasons() {
        let cases: &[&[u8]] = &[
            b"NOT-A-REQUEST\r\n\r\n",                          // no method/path/version
            b"GET / HTTP/1.1 extra\r\n\r\n",                   // four request-line parts
            b"get / HTTP/1.1\r\n\r\n",                         // lowercase method
            b"GET nopath HTTP/1.1\r\n\r\n",                    // target missing leading /
            b"GET / SPDY/3\r\n\r\n",                           // unsupported version
            b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n",   // no colon
            b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",          // space in header name
            b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n", // bad length
        ];
        for raw in cases {
            let err = RequestReader::new()
                .read_request(&mut Script::new(&[raw]), &limits())
                .unwrap_err();
            assert!(
                matches!(err, HttpError::BadRequest(_)),
                "{:?} -> {err:?}",
                String::from_utf8_lossy(raw)
            );
            assert_eq!(err.status(), Some((400, "Bad Request")));
        }
        // A connection dying mid-request is also a 400 (truncated), not Eof.
        let err = RequestReader::new()
            .read_request(
                &mut Script::new(&[b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"]),
                &limits(),
            )
            .unwrap_err();
        assert!(matches!(err, HttpError::BadRequest(_)));
    }

    /// Decodes a chunked transfer-encoded body (test-side inverse of
    /// [`ChunkedWriter`]).
    fn decode_chunked(mut body: &[u8]) -> (Vec<u8>, bool) {
        let mut out = Vec::new();
        loop {
            let Some(line_end) = body.windows(2).position(|w| w == b"\r\n") else {
                return (out, false);
            };
            let size = usize::from_str_radix(
                std::str::from_utf8(&body[..line_end]).expect("ascii size"),
                16,
            )
            .expect("hex chunk size");
            body = &body[line_end + 2..];
            if size == 0 {
                return (out, body.starts_with(b"\r\n"));
            }
            out.extend_from_slice(&body[..size]);
            assert_eq!(&body[size..size + 2], b"\r\n");
            body = &body[size + 2..];
        }
    }

    #[test]
    fn chunked_writer_round_trips_through_a_decoder() {
        let mut wire = Vec::new();
        let mut w = ChunkedWriter::begin(&mut wire, 200, "OK", "text/event-stream", true).unwrap();
        w.chunk(&sse_event("{\"index\":0,\"token\":7}")).unwrap();
        w.chunk(&sse_event("{\"index\":1,\"token\":1042}")).unwrap();
        w.chunk(b"x".repeat(300).as_slice()).unwrap(); // multi-hex-digit size
        w.finish().unwrap();

        let text = String::from_utf8_lossy(&wire);
        let head_end = text.find("\r\n\r\n").expect("head terminator") + 4;
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));

        let (decoded, terminated) = decode_chunked(&wire[head_end..]);
        assert!(terminated, "zero-length terminal chunk present");
        let expected: Vec<u8> = [
            sse_event("{\"index\":0,\"token\":7}"),
            sse_event("{\"index\":1,\"token\":1042}"),
            b"x".repeat(300),
        ]
        .concat();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn write_response_emits_content_length_and_extras() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            503,
            "Service Unavailable",
            "application/json",
            b"{\"error\":\"overloaded\"}",
            false,
            &[("Retry-After", "1".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"));
    }
}
