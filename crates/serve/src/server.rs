//! The server: acceptor + connection-handler threads around the
//! scheduler-owner loop.
//!
//! # Threading model
//!
//! ```text
//!              TcpListener (nonblocking accept poll)
//!                   │ acceptor thread
//!                   ▼
//!        mpsc channel of TcpStream ──► N connection handlers
//!                                          │  parse HTTP, route
//!                                          │  POST /v1/generate
//!                                          ▼
//!                     bounded mpsc of Submission (full ⇒ 503)
//!                                          │
//!                                          ▼
//!                           owner thread: owns the Scheduler,
//!                           ticks, routes tokens back through
//!                           per-request channels ──► SSE chunks
//! ```
//!
//! Everything runs inside one [`std::thread::scope`], which is what lets
//! the scheduler and its engines borrow the model (`&'m Model`) instead
//! of demanding `'static` — the scope guarantees every thread is joined
//! before [`Server::serve`] returns, so the borrow provably outlives all
//! workers. The price is that `serve` blocks its caller; the
//! [`ServerHandle`] (cloneable, `Send`) is split off *before* the
//! blocking call so other threads can observe the address and request
//! shutdown.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips an atomic flag. The acceptor stops
//! accepting and drops the connection channel; handlers finish their
//! in-flight request (streams run to completion) and exit; dropping the
//! last submission sender disconnects the owner loop's channel, which
//! drains every in-flight request and returns. `serve` then joins all
//! threads and returns the final [`StatsSnapshot`] — with the prefix
//! cache disabled, a clean drain means `kv_blocks_in_use == 0`.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sparseinfer::sparse::engine::{Engine, WeightFormat};
use sparseinfer::sparse::error::EngineError;
use sparseinfer::sparse::request::GenerateRequest;
use sparseinfer::sparse::scheduler::{Scheduler, SchedulerConfig};

use crate::api;
use crate::http::{self, ChunkedWriter, HttpError, Limits, Request, RequestReader};
use crate::owner::{run_owner_loop, StatsSnapshot, StreamEvent, Submission};

/// How often the nonblocking acceptor polls for shutdown between
/// connection attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on accepted connections — the cadence at which an idle
/// keep-alive handler re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 selects an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// The scheduler's admission-control configuration.
    pub scheduler: SchedulerConfig,
    /// Worker threads for the scheduler's slot parallelism (1 = serial).
    pub slot_threads: usize,
    /// Connection-handler threads — the cap on concurrently *parsed*
    /// connections (streaming responses each occupy one).
    pub connection_threads: usize,
    /// Bounded depth of the submission channel; a full channel answers
    /// `503` with `Retry-After` instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// Weight format the engine factory builds (surfaced in `/stats` —
    /// the factory itself is opaque to the server, so the configuration
    /// carries the label).
    pub weight_format: WeightFormat,
    /// HTTP parser caps.
    pub limits: Limits,
}

impl Default for ServerConfig {
    /// Loopback ephemeral port, default scheduler, serial slots, four
    /// connection handlers, a 64-deep submission queue.
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            slot_threads: 1,
            connection_threads: 4,
            queue_capacity: 64,
            weight_format: WeightFormat::F32,
            limits: Limits::default(),
        }
    }
}

/// A cloneable, `Send` view of a running (or about-to-run) server: its
/// bound address and its shutdown switch. Obtained from
/// [`Server::handle`] *before* the blocking [`Server::serve`] call.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Mutex<StatsSnapshot>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown: stop accepting, finish in-flight
    /// streams, drain the scheduler, join all threads.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// The latest stats snapshot published by the owner loop.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.lock().expect("stats mutex poisoned").clone()
    }
}

/// A bound-but-not-yet-serving server. Splitting bind from serve lets
/// the caller learn the ephemeral port and clone off a [`ServerHandle`]
/// before [`serve`](Self::serve) blocks the thread.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    handle: ServerHandle,
}

/// Per-request engine factory: called on the **connection-handler**
/// thread for each accepted generate request, so engine construction
/// (workspace allocation, predictor wiring) happens off the owner
/// thread. `Sync` because all handlers share one reference.
pub type EngineFactory<'m> =
    dyn Fn(&GenerateRequest) -> Result<Box<dyn Engine + 'm>, EngineError> + Sync + 'm;

impl Server {
    /// Binds the listener.
    ///
    /// # Errors
    ///
    /// Address resolution or bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let addr = config
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let handle = ServerHandle {
            addr: listener.local_addr()?,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(Mutex::new(StatsSnapshot::default())),
        };
        Ok(Self {
            listener,
            config,
            handle,
        })
    }

    /// The bound address (real port even when configured with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A handle usable from other threads while [`serve`](Self::serve)
    /// blocks this one.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Runs the server until [`ServerHandle::shutdown`] is called,
    /// blocking the calling thread. `factory` builds one engine per
    /// accepted generate request and may borrow non-`'static` data (the
    /// model) — all server threads live inside a [`std::thread::scope`].
    ///
    /// Returns the final post-drain [`StatsSnapshot`].
    pub fn serve<'m>(self, factory: &EngineFactory<'m>) -> StatsSnapshot {
        let Server {
            listener,
            config,
            handle,
        } = self;
        let mut scheduler = Scheduler::new(config.scheduler);
        if config.slot_threads > 1 {
            use sparseinfer::tensor::ParallelOptions;
            scheduler = scheduler.parallel(ParallelOptions::threads(config.slot_threads));
        }
        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission<'m>>(config.queue_capacity);
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        std::thread::scope(|scope| {
            let stats = Arc::clone(&handle.stats);
            let max_pending = config.queue_capacity;
            let weight_format = config.weight_format.label();
            scope.spawn(move || {
                run_owner_loop(scheduler, sub_rx, stats, max_pending, weight_format)
            });

            for _ in 0..config.connection_threads.max(1) {
                let conn_rx = Arc::clone(&conn_rx);
                let sub_tx = sub_tx.clone();
                let shutdown = Arc::clone(&handle.shutdown);
                let stats = Arc::clone(&handle.stats);
                let limits = config.limits;
                scope.spawn(move || {
                    connection_worker(&conn_rx, &sub_tx, factory, &shutdown, &stats, &limits);
                });
            }
            // The owner loop exits when every submission sender is gone;
            // the handlers hold the remaining clones.
            drop(sub_tx);

            // Acceptor, on this thread: poll accept until shutdown.
            let shutdown = Arc::clone(&handle.shutdown);
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(READ_POLL));
                        if conn_tx.send(stream).is_err() {
                            break; // all handlers died (unreachable in practice)
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            drop(conn_tx); // handlers drain queued conns, then exit
        });
        handle.stats()
    }
}

/// One connection-handler thread: pull accepted connections off the
/// shared channel and serve each until close/shutdown.
fn connection_worker<'m>(
    conn_rx: &Arc<Mutex<Receiver<TcpStream>>>,
    sub_tx: &SyncSender<Submission<'m>>,
    factory: &EngineFactory<'m>,
    shutdown: &AtomicBool,
    stats: &Mutex<StatsSnapshot>,
    limits: &Limits,
) {
    loop {
        // Hold the lock only to receive — handlers must not serialize on
        // each other while serving.
        let next = {
            let rx = conn_rx.lock().expect("conn channel mutex poisoned");
            rx.recv_timeout(READ_POLL)
        };
        match next {
            Ok(stream) => serve_connection(stream, sub_tx, factory, shutdown, stats, limits),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection: keep-alive loop of parse → route → respond.
/// Every protocol error is answered on the wire and at most closes this
/// connection — never the handler thread.
fn serve_connection<'m>(
    mut stream: TcpStream,
    sub_tx: &SyncSender<Submission<'m>>,
    factory: &EngineFactory<'m>,
    shutdown: &AtomicBool,
    stats: &Mutex<StatsSnapshot>,
    limits: &Limits,
) {
    let mut reader = RequestReader::new();
    loop {
        let request = match reader.read_request(&mut stream, limits) {
            Ok(request) => request,
            Err(HttpError::Timeout) => {
                // Idle keep-alive: wait more unless shutting down. A
                // *partial* request during shutdown gets a short grace via
                // the same path (its sender is presumably mid-write).
                if shutdown.load(Ordering::Acquire) && !reader.mid_request() {
                    return;
                }
                continue;
            }
            Err(HttpError::Eof) | Err(HttpError::Io(_)) => return,
            Err(protocol_error) => {
                let (status, reason) = protocol_error
                    .status()
                    .expect("remaining variants are protocol errors");
                let body = api::error_json(protocol_error.message());
                let _ = http::write_response(
                    &mut stream,
                    status,
                    reason,
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[],
                );
                return; // parser state is unreliable after a bad request
            }
        };
        let keep_alive = !request.wants_close();
        let close = match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => respond_healthz(&mut stream, stats, keep_alive),
            ("GET", "/stats") => respond_stats(&mut stream, stats, keep_alive),
            ("POST", "/v1/generate") => {
                respond_generate(&mut stream, &request, sub_tx, factory, keep_alive)
            }
            _ => {
                let body = api::error_json("no such endpoint");
                http::write_response(
                    &mut stream,
                    404,
                    "Not Found",
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                    &[],
                )
                .is_err()
                    || !keep_alive
            }
        };
        if close {
            return;
        }
    }
}

/// `GET /healthz`: liveness plus a one-line load summary.
fn respond_healthz(stream: &mut TcpStream, stats: &Mutex<StatsSnapshot>, keep_alive: bool) -> bool {
    let snapshot = stats.lock().expect("stats mutex poisoned").clone();
    let body = format!(
        "{{\"status\":\"ok\",\"active_slots\":{},\"queued\":{}}}",
        snapshot.scheduler.active_slots, snapshot.scheduler.queued
    );
    http::write_response(
        stream,
        200,
        "OK",
        "application/json",
        body.as_bytes(),
        keep_alive,
        &[],
    )
    .is_err()
        || !keep_alive
}

/// `GET /stats`: the full owner-loop snapshot.
fn respond_stats(stream: &mut TcpStream, stats: &Mutex<StatsSnapshot>, keep_alive: bool) -> bool {
    let snapshot = stats.lock().expect("stats mutex poisoned").clone();
    let body = api::stats_json(&snapshot);
    http::write_response(
        stream,
        200,
        "OK",
        "application/json",
        body.as_bytes(),
        keep_alive,
        &[],
    )
    .is_err()
        || !keep_alive
}

/// `POST /v1/generate`: parse, submit, stream SSE until finished.
/// Returns whether the connection must close.
fn respond_generate<'m>(
    stream: &mut TcpStream,
    request: &Request,
    sub_tx: &SyncSender<Submission<'m>>,
    factory: &EngineFactory<'m>,
    keep_alive: bool,
) -> bool {
    let respond_error = |stream: &mut TcpStream, status: u16, reason: &str, msg: &str| {
        let body = api::error_json(msg);
        let retry_after = [("Retry-After", String::from("1"))];
        // Errors answer and keep the connection: the client can retry on
        // the same socket.
        http::write_response(
            stream,
            status,
            reason,
            "application/json",
            body.as_bytes(),
            keep_alive,
            if status == 503 { &retry_after } else { &[] },
        )
        .is_err()
            || !keep_alive
    };

    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => return respond_error(stream, 400, "Bad Request", "body is not UTF-8"),
    };
    let params = match api::parse_generate_body(body) {
        Ok(params) => params,
        Err(msg) => return respond_error(stream, 400, "Bad Request", &msg),
    };
    let engine = match factory(&params.request) {
        Ok(engine) => engine,
        Err(err) => return respond_error(stream, 400, "Bad Request", &err.to_string()),
    };

    let (ev_tx, ev_rx) = mpsc::channel::<StreamEvent>();
    let (reply_tx, reply_rx) = mpsc::channel();
    let submission = Submission {
        engine,
        request: params.request,
        deadline: params.deadline,
        events: ev_tx,
        reply: reply_tx,
    };
    // Bounded admission: a full channel is the overload signal.
    if let Err(err) = sub_tx.try_send(submission) {
        return match err {
            TrySendError::Full(_) => respond_error(
                stream,
                503,
                "Service Unavailable",
                "server overloaded, retry later",
            ),
            TrySendError::Disconnected(_) => respond_error(
                stream,
                503,
                "Service Unavailable",
                "server is shutting down",
            ),
        };
    }
    let handle = match reply_rx.recv() {
        Ok(Ok(handle)) => handle,
        Ok(Err(err)) => return respond_error(stream, 400, "Bad Request", &err.to_string()),
        Err(_) => {
            return respond_error(
                stream,
                503,
                "Service Unavailable",
                "server is shutting down",
            )
        }
    };

    // Admitted: stream SSE. From here on, a write failure means the
    // client is gone — cancel the request so its slot and KV blocks are
    // reclaimed immediately, then drain the channel so the owner loop's
    // sends never block on a dead stream.
    let writer =
        match ChunkedWriter::begin(&mut *stream, 200, "OK", "text/event-stream", keep_alive) {
            Ok(writer) => writer,
            Err(_) => {
                handle.cancel();
                while !matches!(ev_rx.recv(), Ok(StreamEvent::Finished(_)) | Err(_)) {}
                return true;
            }
        };
    let mut writer = writer;
    loop {
        match ev_rx.recv() {
            Ok(StreamEvent::Token(token)) => {
                let frame = http::sse_event(&api::token_event_json(&token));
                if writer.chunk(&frame).is_err() {
                    handle.cancel();
                    // Drain to the Finished event so KV reclaim is
                    // observable before this handler moves on.
                    while !matches!(ev_rx.recv(), Ok(StreamEvent::Finished(_)) | Err(_)) {}
                    return true;
                }
            }
            Ok(StreamEvent::Finished(summary)) => {
                let frame = http::sse_event(&api::finish_event_json(&summary));
                let closed = writer.chunk(&frame).is_err() || writer.finish().is_err();
                return closed || !keep_alive;
            }
            // Owner loop gone mid-stream (cannot happen before drain
            // completes, but be safe): close the connection.
            Err(_) => return true,
        }
    }
}
