//! The `sparseinfer-serve` binary: boots a synthetic model and serves it
//! over HTTP until Ctrl-C territory (or, with `--smoke`, runs a built-in
//! end-to-end self-test and exits — the CI smoke step).

use std::process::ExitCode;
use std::sync::Arc;

use sparseinfer::model::generator::WeightGenerator;
use sparseinfer::model::kv::KvDtype;
use sparseinfer::model::{Model, ModelConfig};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::{Engine, EngineBuilder, QuantizedWeights, WeightFormat};
use sparseinfer::sparse::error::EngineError;
use sparseinfer::sparse::scheduler::SchedulerConfig;
use sparseinfer_serve::{Client, Server, ServerConfig};

/// Parsed command line.
struct Args {
    addr: String,
    slots: usize,
    slot_threads: usize,
    connection_threads: usize,
    queue_capacity: usize,
    block_tokens: usize,
    kv_block_budget: usize,
    prefix_cache: bool,
    seed: u64,
    signbit: bool,
    speculate: usize,
    weights: WeightFormat,
    kv: KvDtype,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8765".to_string(),
            slots: 4,
            slot_threads: 1,
            connection_threads: 4,
            queue_capacity: 64,
            block_tokens: 16,
            kv_block_budget: 8192,
            prefix_cache: true,
            seed: 42,
            signbit: false,
            speculate: 0,
            weights: WeightFormat::F32,
            kv: KvDtype::F32,
            smoke: false,
        }
    }
}

const USAGE: &str = "\
sparseinfer-serve — HTTP/1.1 streaming frontend over the continuous-batching scheduler

USAGE:
    sparseinfer-serve [OPTIONS]

OPTIONS:
    --addr <host:port>      bind address (default 127.0.0.1:8765; port 0 = ephemeral)
    --slots <n>             concurrent decode slots (default 4)
    --slot-threads <n>      scheduler worker threads (default 1 = serial)
    --conn-threads <n>      connection-handler threads (default 4)
    --queue <n>             submission queue depth; full => 503 (default 64)
    --block-tokens <n>      KV paging granularity (default 16)
    --kv-budget <n>         KV block budget for admission control (default 8192)
    --no-prefix-cache       disable prompt-prefix sharing
    --seed <n>              synthetic-model weight seed (default 42)
    --signbit               serve the sign-bit sparse engine instead of dense
    --speculate <k>         lossless speculative decoding: sign-bit sparse
                            drafts up to k tokens per step, dense verifies
                            (tokens stay bit-identical to dense decode)
    --weights <f32|int8>    MLP weight format: int8 runs the fused
                            block-dequant kernels over one shared ~4x
                            smaller copy (default f32)
    --kv <f32|f16>          KV cache element type: f16 halves KV memory,
                            attention dequantizes in-loop (default f32)
    --smoke                 run the built-in end-to-end self-test and exit
    --help                  print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = value(&mut it, "--addr")?,
            "--slots" => args.slots = parse_num(&value(&mut it, "--slots")?, "--slots")?,
            "--slot-threads" => {
                args.slot_threads = parse_num(&value(&mut it, "--slot-threads")?, "--slot-threads")?
            }
            "--conn-threads" => {
                args.connection_threads =
                    parse_num(&value(&mut it, "--conn-threads")?, "--conn-threads")?
            }
            "--queue" => args.queue_capacity = parse_num(&value(&mut it, "--queue")?, "--queue")?,
            "--block-tokens" => {
                args.block_tokens = parse_num(&value(&mut it, "--block-tokens")?, "--block-tokens")?
            }
            "--kv-budget" => {
                args.kv_block_budget = parse_num(&value(&mut it, "--kv-budget")?, "--kv-budget")?
            }
            "--no-prefix-cache" => args.prefix_cache = false,
            "--seed" => {
                args.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--signbit" => args.signbit = true,
            "--speculate" => {
                args.speculate = parse_num(&value(&mut it, "--speculate")?, "--speculate")?
            }
            "--weights" => {
                args.weights = match value(&mut it, "--weights")?.as_str() {
                    "f32" => WeightFormat::F32,
                    "int8" => WeightFormat::Int8,
                    other => return Err(format!("--weights must be f32 or int8, got `{other}`")),
                }
            }
            "--kv" => {
                args.kv = match value(&mut it, "--kv")?.as_str() {
                    "f32" => KvDtype::F32,
                    "f16" => KvDtype::F16,
                    other => return Err(format!("--kv must be f32 or f16, got `{other}`")),
                }
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

/// Build the engine the CLI flags ask for. `--speculate k` wraps a
/// sign-bit sparse draft around a dense verifier; otherwise `--signbit`
/// picks the sparse engine and the default is dense. With `--weights
/// int8` the served engine (the *draft* in the speculative pairing — the
/// verifier stays f32, preserving the lossless contract) attaches the
/// one `quantized` copy shared across every request.
fn build_engine<'m>(
    model: &'m Model,
    signbit: bool,
    speculate: usize,
    quantized: Option<&Arc<QuantizedWeights>>,
) -> Result<Box<dyn Engine + 'm>, EngineError> {
    let with_format = |mut b: EngineBuilder<'m>| {
        if let Some(q) = quantized {
            b = b.quantized_shared(Arc::clone(q));
        }
        b
    };
    if speculate > 0 {
        let draft =
            with_format(EngineBuilder::new(model).signbit(AlphaSchedule::uniform(1.0))).build()?;
        let verify = EngineBuilder::new(model).build()?;
        EngineBuilder::speculative(draft, verify, speculate)
    } else if signbit {
        with_format(EngineBuilder::new(model).signbit(AlphaSchedule::uniform(1.0))).build()
    } else {
        with_format(EngineBuilder::new(model)).build()
    }
}

fn engine_label(args: &Args) -> String {
    let base = if args.speculate > 0 {
        format!("speculative k={}", args.speculate)
    } else if args.signbit {
        "signbit".to_string()
    } else {
        "dense".to_string()
    };
    format!(
        "{base}, weights={}, kv={}",
        args.weights.label(),
        args.kv.label()
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return smoke(args);
    }

    let model = WeightGenerator::new(&ModelConfig::tiny(), args.seed).build();
    // One INT8 copy quantized up front and shared (Arc) across every
    // request's engine — requests cost no quantization work and the
    // memory estimate deduplicates the bytes.
    let quantized =
        (args.weights == WeightFormat::Int8).then(|| Arc::new(QuantizedWeights::quantize(&model)));
    let server = match Server::bind(server_config(&args)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "sparseinfer-serve listening on http://{} ({} engine, {} slots)",
        server.local_addr(),
        engine_label(&args),
        args.slots,
    );
    eprintln!("POST /v1/generate | GET /healthz | GET /stats");
    let (signbit, speculate) = (args.signbit, args.speculate);
    // The factory borrows `model` (not `move`): the engines it builds
    // must outlive their request, not just the closure call.
    server.serve(&|_req| build_engine(&model, signbit, speculate, quantized.as_ref()));
    ExitCode::SUCCESS
}

fn server_config(args: &Args) -> ServerConfig {
    ServerConfig {
        addr: args.addr.clone(),
        scheduler: SchedulerConfig::builder()
            .max_slots(args.slots)
            .block_tokens(args.block_tokens)
            .kv_block_budget(args.kv_block_budget)
            .prefix_cache(args.prefix_cache)
            .kv_dtype(args.kv)
            .build()
            .unwrap_or_else(|e| {
                eprintln!("invalid scheduler flags: {e}");
                std::process::exit(2);
            }),
        slot_threads: args.slot_threads,
        connection_threads: args.connection_threads,
        queue_capacity: args.queue_capacity,
        weight_format: args.weights,
        ..ServerConfig::default()
    }
}

/// The CI smoke test: boot on an ephemeral port, run a real client over
/// loopback (healthz → one streamed generation → stats), shut down
/// gracefully, and verify the KV pool drained to zero. Exit code is the
/// verdict.
fn smoke(mut args: Args) -> ExitCode {
    // Ephemeral port and no prefix retention, so "drained" means zero.
    args.addr = "127.0.0.1:0".to_string();
    args.prefix_cache = false;
    let model = WeightGenerator::new(&ModelConfig::tiny(), args.seed).build();
    let quantized =
        (args.weights == WeightFormat::Int8).then(|| Arc::new(QuantizedWeights::quantize(&model)));
    let server = match Server::bind(server_config(&args)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    let addr = handle.addr();
    let speculate = args.speculate;
    let weights_label = args.weights.label();
    let kv_label = args.kv.label();
    let kv_bytes_per_elem = args.kv.bytes_per_elem() as u64;

    let client = std::thread::spawn(move || -> Result<(), String> {
        fn e(what: &'static str) -> impl Fn(std::io::Error) -> String {
            move |err| format!("{what}: {err}")
        }

        let mut probe = Client::connect(addr).map_err(e("connect"))?;
        let health = probe.get("/healthz").map_err(e("GET /healthz"))?;
        if health.status != 200 {
            return Err(format!("healthz returned {}", health.status));
        }

        let stream = Client::connect(addr)
            .map_err(e("connect"))?
            .post_streaming("/v1/generate", r#"{"prompt":[1,2,3],"max_new":8}"#)
            .map_err(e("POST /v1/generate"))?;
        let (tokens, finish) = stream.collect_generation().map_err(e("stream"))?;
        if tokens.len() != 8 {
            return Err(format!("expected 8 tokens, got {}", tokens.len()));
        }
        let reason = finish
            .get("finish")
            .and_then(sparseinfer::json::Json::as_str)
            .unwrap_or("<missing>")
            .to_string();
        if reason != "max_tokens" {
            return Err(format!("expected max_tokens finish, got {reason}"));
        }

        let stats = probe.get("/stats").map_err(e("GET /stats"))?;
        if stats.status != 200 {
            return Err(format!("stats returned {}", stats.status));
        }
        let doc = stats.json().map_err(e("stats body"))?;
        let completed = doc
            .get("scheduler")
            .and_then(|s| s.get("completed"))
            .and_then(sparseinfer::json::Json::as_u64);
        if completed != Some(1) {
            return Err(format!("expected 1 completed request, got {completed:?}"));
        }
        if speculate > 0 {
            let drafted = doc
                .get("speculative")
                .and_then(|s| s.get("drafted"))
                .and_then(sparseinfer::json::Json::as_u64);
            match drafted {
                Some(n) if n > 0 => {}
                other => return Err(format!("expected drafted > 0 in stats, got {other:?}")),
            }
        }

        // The dtype section must reflect the configured formats, with the
        // per-element KV cost showing the f16 halving directly (2 vs 4).
        let dtype = doc.get("dtype").ok_or("stats missing dtype section")?;
        let weights = dtype
            .get("weights")
            .and_then(sparseinfer::json::Json::as_str);
        if weights != Some(weights_label) {
            return Err(format!(
                "dtype.weights: expected {weights_label}, got {weights:?}"
            ));
        }
        let kv = dtype.get("kv").and_then(sparseinfer::json::Json::as_str);
        if kv != Some(kv_label) {
            return Err(format!("dtype.kv: expected {kv_label}, got {kv:?}"));
        }
        let per_elem = dtype
            .get("kv_bytes_per_elem")
            .and_then(sparseinfer::json::Json::as_u64);
        if per_elem != Some(kv_bytes_per_elem) {
            return Err(format!(
                "dtype.kv_bytes_per_elem: expected {kv_bytes_per_elem}, got {per_elem:?}"
            ));
        }
        let peak = doc
            .get("kv")
            .and_then(|s| s.get("peak_in_use_bytes"))
            .and_then(sparseinfer::json::Json::as_u64)
            .unwrap_or(0);
        if peak == 0 {
            return Err("kv.peak_in_use_bytes stayed zero across a generation".to_string());
        }
        if peak % (2 * kv_bytes_per_elem) != 0 {
            return Err(format!(
                "kv.peak_in_use_bytes {peak} is not a whole number of \
                 {kv_bytes_per_elem}-byte K/V pairs"
            ));
        }
        eprintln!(
            "smoke: streamed {} tokens, stats ok (weights={weights_label} kv={kv_label} \
             peak_kv={peak}B)",
            tokens.len()
        );
        Ok(())
    });

    // Serve until the client script finishes, then shut down and drain.
    let watchdog = std::thread::spawn({
        let handle = handle.clone();
        move || {
            let verdict = client.join().expect("client thread panicked");
            handle.shutdown();
            verdict
        }
    });
    let final_stats = server
        .serve(&|_req| build_engine(&model, args.signbit, args.speculate, quantized.as_ref()));

    match watchdog.join().expect("watchdog thread panicked") {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("smoke: FAILED: {msg}");
            return ExitCode::FAILURE;
        }
    }
    if final_stats.scheduler.kv_blocks_in_use != 0 {
        eprintln!(
            "smoke: FAILED: {} KV blocks still in use after drain",
            final_stats.scheduler.kv_blocks_in_use
        );
        return ExitCode::FAILURE;
    }
    eprintln!("smoke: PASSED (pool drained to 0 in-use blocks)");
    ExitCode::SUCCESS
}
