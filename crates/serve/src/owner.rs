//! The scheduler-owner loop: the single thread that owns the
//! [`Scheduler`] and is therefore the only place model work happens.
//!
//! Connection handlers never touch the scheduler. They package each
//! accepted request as a [`Submission`] — engine, request, deadline, and
//! a per-request event channel — and push it down one bounded mpsc
//! channel. The owner loop drains that channel between ticks, submits,
//! enforces deadlines via [`RequestHandle::expire`], routes every
//! [`BatchEvent`](sparseinfer::sparse::scheduler::BatchEvent) to its
//! request's event channel, and publishes a
//! [`StatsSnapshot`] after every iteration so `/healthz` and `/stats`
//! answer instantly even while a tick is decoding.
//!
//! Single ownership is also what keeps the determinism contract trivial:
//! with exactly one thread calling [`Scheduler::tick`], the event order
//! for any given submission order is the library's own — HTTP adds no
//! interleaving of its own.

use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sparseinfer::sparse::engine::{Engine, SpeculativeStats};
use sparseinfer::sparse::error::EngineError;
use sparseinfer::sparse::request::{FinishReason, GenerateRequest, TokenEvent};
use sparseinfer::sparse::scheduler::{RequestHandle, Scheduler, SchedulerStats};

/// How long the owner loop sleeps on its submission channel when the
/// scheduler has nothing to decode.
const IDLE_POLL: Duration = Duration::from_millis(20);

/// One accepted generate request, en route from a connection handler to
/// the owner loop.
pub struct Submission<'m> {
    /// The engine that will serve the request.
    pub engine: Box<dyn Engine + 'm>,
    /// The generation request.
    pub request: GenerateRequest,
    /// Relative deadline, measured from submission into the scheduler.
    pub deadline: Option<Duration>,
    /// Where the owner loop sends this request's stream events.
    pub events: Sender<StreamEvent>,
    /// Where the owner loop reports the submit outcome (the handle used
    /// for disconnect-cancellation, or the admission error).
    pub reply: Sender<Result<RequestHandle, EngineError>>,
}

impl std::fmt::Debug for Submission<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Submission")
            .field("prompt_tokens", &self.request.prompt.len())
            .field("max_new", &self.request.max_new)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// One event on a request's stream, in generation order: zero or more
/// tokens, then exactly one finish.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// One generated token.
    Token(TokenEvent),
    /// The request finished; no further events follow.
    Finished(FinishSummary),
}

/// The terminal accounting of one request, sent as the stream's last
/// event and encoded into the closing SSE frame.
#[derive(Debug, Clone)]
pub struct FinishSummary {
    /// The scheduler-assigned request id.
    pub id: usize,
    /// Number of tokens generated (also the number of preceding
    /// [`StreamEvent::Token`] events).
    pub tokens: usize,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Prompt positions served from the prefix cache instead of prefill.
    pub prefill_skipped_tokens: usize,
    /// Times the request was preempted (swapped out or dropped for
    /// recompute) by higher-priority admissions.
    pub preemptions: usize,
    /// KV blocks its preemptions swapped out to cold buffers.
    pub swapped_blocks: usize,
    /// The engine configuration name that served the request.
    pub engine: String,
    /// Draft/accept counters when a speculative engine served the
    /// request; `None` for non-drafting engines.
    pub speculative: Option<SpeculativeStats>,
}

/// A point-in-time copy of the scheduler's observable state, refreshed by
/// the owner loop after every iteration and read lock-free-ish (one
/// uncontended mutex) by `/healthz` and `/stats`.
///
/// The scheduler side is one [`SchedulerStats`] snapshot — the library's
/// single stats surface ([`Scheduler::stats`]) — so `/stats` and any
/// other consumer of scheduler state share one schema. The remaining
/// fields are serving-level: they describe the *server* (lifetime
/// completions, drain state, the engine factory's weight format, the KV
/// high-water mark sampled per loop iteration), which the scheduler
/// itself cannot know.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// The scheduler's own snapshot (queue depths, KV pool state, memory
    /// estimate, prefix/preemption/speculative aggregates).
    pub scheduler: SchedulerStats,
    /// High-water mark of `scheduler.kv_in_use_bytes` over the server's
    /// lifetime, sampled once per owner-loop iteration. With `--kv f16`
    /// this is exactly half the f32 value for the same workload.
    pub kv_peak_in_use_bytes: u64,
    /// Weight format the server's engines execute (`"f32"` / `"int8"`).
    pub weight_format: &'static str,
    /// Requests finished over the server's lifetime.
    pub completed: usize,
    /// Whether the server is draining (shutdown requested, in-flight
    /// requests finishing, no new submissions accepted).
    pub draining: bool,
}

/// Per-request bookkeeping the owner loop keeps while a request is live.
struct LiveRequest {
    events: Sender<StreamEvent>,
    expires_at: Option<Instant>,
    handle: RequestHandle,
}

/// Runs the owner loop to completion: drains submissions, ticks the
/// scheduler, routes events, enforces deadlines, publishes stats.
///
/// `max_pending` bounds the scheduler's internal admission queue: once
/// that many requests are waiting, the owner stops draining the
/// submission channel, the bounded channel fills, and connection
/// handlers see `try_send` fail — the `503` backpressure signal. Without
/// this cap the scheduler's unbounded queue would absorb any burst and
/// the channel bound would never bind.
///
/// Returns when the submission channel has disconnected (all connection
/// handlers gone — server shutdown) **and** every in-flight request has
/// finished: graceful drain is the only exit path.
pub fn run_owner_loop<'m>(
    mut scheduler: Scheduler<'m>,
    submissions: Receiver<Submission<'m>>,
    stats: Arc<Mutex<StatsSnapshot>>,
    max_pending: usize,
    weight_format: &'static str,
) {
    let max_pending = max_pending.max(1);
    let mut live: HashMap<usize, LiveRequest> = HashMap::new();
    let mut completed = 0usize;
    let mut disconnected = false;
    let mut peak_kv_bytes = 0u64;
    loop {
        // 1. Drain waiting submissions, up to the pending-queue cap.
        // Draining before ticking keeps admission FIFO across connections
        // at the granularity of the channel, which is the order contract
        // we document: tokens for a given submission order are
        // deterministic.
        while scheduler.pending_requests() < max_pending {
            match submissions.try_recv() {
                Ok(sub) => submit_one(&mut scheduler, sub, &mut live),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        // 2. Expire requests whose deadline has passed. The scheduler
        // notices the signal on the next tick and retires them with
        // `FinishReason::DeadlineExceeded`, keeping partial tokens.
        let now = Instant::now();
        for req in live.values() {
            if req.expires_at.is_some_and(|t| now >= t) {
                req.handle.expire();
            }
        }

        // 3. One tick: advance every live slot one model step, routing
        // tokens to their streams as they are produced.
        if scheduler.unfinished_requests() > 0 {
            scheduler.tick(|event| {
                if let Some(req) = live.get(&event.request) {
                    // A dead receiver means the connection handler is gone
                    // (client disconnected); its handle-cancel path is
                    // already reclaiming the slot, so drop the event.
                    let _ = req.events.send(StreamEvent::Token(TokenEvent {
                        index: event.index,
                        token: event.token,
                    }));
                }
            });
        }

        // 4. Retire finished requests. Stats are published *before* the
        // terminal events go out: a client that has seen its finish event
        // is guaranteed a subsequent /stats read counts its completion.
        let finished = scheduler.take_finished();
        completed += finished.len();
        publish_stats(
            &scheduler,
            &stats,
            completed,
            disconnected,
            weight_format,
            &mut peak_kv_bytes,
        );
        for out in finished {
            if let Some(req) = live.remove(&out.id) {
                let _ = req.events.send(StreamEvent::Finished(FinishSummary {
                    id: out.id,
                    tokens: out.tokens.len(),
                    finish: out.finish,
                    prefill_skipped_tokens: out.prefill_skipped_tokens,
                    preemptions: out.preemptions,
                    swapped_blocks: out.swapped_blocks,
                    engine: out.engine,
                    speculative: out.speculative,
                }));
            }
        }

        if disconnected && scheduler.unfinished_requests() == 0 {
            return; // drained: graceful shutdown completes
        }

        // 6. Idle: nothing to decode, so block on the channel instead of
        // spinning. Bounded by IDLE_POLL so deadline expiry for *queued*
        // requests (step 2) still happens promptly.
        if scheduler.unfinished_requests() == 0 && !disconnected {
            match submissions.recv_timeout(IDLE_POLL) {
                Ok(sub) => submit_one(&mut scheduler, sub, &mut live),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => disconnected = true,
            }
        }
    }
}

/// Submits one request into the scheduler and records its bookkeeping.
fn submit_one<'m>(
    scheduler: &mut Scheduler<'m>,
    sub: Submission<'m>,
    live: &mut HashMap<usize, LiveRequest>,
) {
    // The deadline clock starts at submission into the scheduler, not at
    // admission: time spent queued counts against the deadline, which is
    // what lets an overloaded server shed queued work.
    let expires_at = sub.deadline.map(|d| Instant::now() + d);
    match scheduler.submit(sub.engine, &sub.request) {
        Ok(handle) => {
            live.insert(
                handle.id(),
                LiveRequest {
                    events: sub.events,
                    expires_at,
                    handle: handle.clone(),
                },
            );
            let _ = sub.reply.send(Ok(handle));
        }
        // A rejected submit never entered the scheduler: it is neither
        // submitted nor completed in /stats — only the reply reports it.
        Err(err) => {
            let _ = sub.reply.send(Err(err));
        }
    }
}

/// Copies the scheduler's observable state into the shared snapshot.
fn publish_stats(
    scheduler: &Scheduler<'_>,
    stats: &Arc<Mutex<StatsSnapshot>>,
    completed: usize,
    draining: bool,
    weight_format: &'static str,
    peak_kv_bytes: &mut u64,
) {
    let scheduler = scheduler.stats();
    *peak_kv_bytes = (*peak_kv_bytes).max(scheduler.kv_in_use_bytes);
    let snapshot = StatsSnapshot {
        scheduler,
        kv_peak_in_use_bytes: *peak_kv_bytes,
        weight_format,
        completed,
        draining,
    };
    *stats.lock().expect("stats mutex poisoned") = snapshot;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer::model::generator::WeightGenerator;
    use sparseinfer::model::ModelConfig;
    use sparseinfer::sparse::engine::EngineBuilder;
    use sparseinfer::sparse::scheduler::SchedulerConfig;
    use std::sync::mpsc;

    fn config() -> SchedulerConfig {
        SchedulerConfig {
            max_slots: 2,
            block_tokens: 8,
            kv_block_budget: 4096,
            prefix_cache: false,
            ..SchedulerConfig::default()
        }
    }

    /// Collects a full stream from a receiver: tokens then the summary.
    fn collect(events: Receiver<StreamEvent>) -> (Vec<u32>, FinishSummary) {
        let mut tokens = Vec::new();
        loop {
            match events.recv().expect("stream ends with Finished") {
                StreamEvent::Token(t) => {
                    assert_eq!(t.index, tokens.len(), "in-order stream");
                    tokens.push(t.token);
                }
                StreamEvent::Finished(summary) => return (tokens, summary),
            }
        }
    }

    #[test]
    fn owner_loop_streams_tokens_identical_to_a_direct_run() {
        let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
        let req = GenerateRequest::new(&[1, 2, 3]).max_new(6);

        // Reference: the library-level scheduler run.
        let mut reference = Scheduler::new(config());
        let engine = EngineBuilder::new(&model).build().unwrap();
        reference.submit(engine, &req).unwrap();
        let expected = reference.run().pop().unwrap().tokens;

        // Same request through the owner loop on its own thread.
        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission<'_>>(4);
        let stats = Arc::new(Mutex::new(StatsSnapshot::default()));
        let (ev_tx, ev_rx) = mpsc::channel();
        let (reply_tx, reply_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let stats = Arc::clone(&stats);
            scope.spawn(move || run_owner_loop(Scheduler::new(config()), sub_rx, stats, 64, "f32"));
            sub_tx
                .send(Submission {
                    engine: EngineBuilder::new(&model).build().unwrap(),
                    request: req.clone(),
                    deadline: None,
                    events: ev_tx,
                    reply: reply_tx,
                })
                .unwrap();
            reply_rx.recv().unwrap().expect("submit accepted");
            let (tokens, summary) = collect(ev_rx);
            assert_eq!(tokens, expected, "HTTP-path tokens bit-identical");
            assert_eq!(summary.tokens, expected.len());
            assert!(matches!(summary.finish, FinishReason::MaxTokens));
            drop(sub_tx); // disconnect -> owner loop drains and exits
        });
        let final_stats = stats.lock().unwrap().clone();
        assert_eq!(final_stats.completed, 1);
        assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0, "pool drained");
        assert!(final_stats.draining);
    }

    #[test]
    fn deadlines_expire_queued_and_running_requests() {
        let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission<'_>>(4);
        let stats = Arc::new(Mutex::new(StatsSnapshot::default()));
        std::thread::scope(|scope| {
            let stats = Arc::clone(&stats);
            // max_slots: 1 so the second request is stuck queued.
            let cfg = SchedulerConfig {
                max_slots: 1,
                ..config()
            };
            scope.spawn(move || run_owner_loop(Scheduler::new(cfg), sub_rx, stats, 64, "f32"));

            // A long-running request with an immediate deadline...
            let (ev_tx, ev_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            sub_tx
                .send(Submission {
                    engine: EngineBuilder::new(&model).build().unwrap(),
                    request: GenerateRequest::new(&[1, 2]).max_new(10_000),
                    deadline: Some(Duration::from_millis(1)),
                    events: ev_tx,
                    reply: reply_tx,
                })
                .unwrap();
            reply_rx.recv().unwrap().unwrap();
            // ...and one queued behind it, likewise doomed.
            let (ev_tx2, ev_rx2) = mpsc::channel();
            let (reply_tx2, reply_rx2) = mpsc::channel();
            sub_tx
                .send(Submission {
                    engine: EngineBuilder::new(&model).build().unwrap(),
                    request: GenerateRequest::new(&[3, 4]).max_new(10_000),
                    deadline: Some(Duration::from_millis(1)),
                    events: ev_tx2,
                    reply: reply_tx2,
                })
                .unwrap();
            reply_rx2.recv().unwrap().unwrap();

            let (tokens, summary) = collect(ev_rx);
            assert!(matches!(summary.finish, FinishReason::DeadlineExceeded));
            assert_eq!(tokens.len(), summary.tokens, "partial tokens preserved");
            assert!(tokens.len() < 10_000);
            let (_, summary2) = collect(ev_rx2);
            assert!(matches!(summary2.finish, FinishReason::DeadlineExceeded));
            drop(sub_tx);
        });
        assert_eq!(stats.lock().unwrap().scheduler.kv_blocks_in_use, 0);
    }

    #[test]
    fn cancel_through_the_replied_handle_stops_the_stream() {
        let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission<'_>>(4);
        let stats = Arc::new(Mutex::new(StatsSnapshot::default()));
        std::thread::scope(|scope| {
            let stats = Arc::clone(&stats);
            scope.spawn(move || run_owner_loop(Scheduler::new(config()), sub_rx, stats, 64, "f32"));
            let (ev_tx, ev_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            sub_tx
                .send(Submission {
                    engine: EngineBuilder::new(&model).build().unwrap(),
                    request: GenerateRequest::new(&[1]).max_new(10_000),
                    deadline: None,
                    events: ev_tx,
                    reply: reply_tx,
                })
                .unwrap();
            let handle = reply_rx.recv().unwrap().unwrap();
            // Wait for at least one token so cancellation is mid-stream,
            // then cancel from this (foreign) thread.
            match ev_rx.recv().unwrap() {
                StreamEvent::Token(t) => assert_eq!(t.index, 0),
                other => panic!("expected a token first, got {other:?}"),
            }
            handle.cancel();
            let mut seen = 1;
            let summary = loop {
                match ev_rx.recv().unwrap() {
                    StreamEvent::Token(t) => {
                        assert_eq!(t.index, seen, "in-order stream");
                        seen += 1;
                    }
                    StreamEvent::Finished(summary) => break summary,
                }
            };
            assert!(matches!(summary.finish, FinishReason::Cancelled));
            assert_eq!(summary.tokens, seen, "partial tokens preserved");
            assert!(seen < 10_000, "cancelled well before the budget");
            drop(sub_tx);
        });
        assert_eq!(stats.lock().unwrap().scheduler.kv_blocks_in_use, 0);
    }

    #[test]
    fn admission_errors_are_replied_not_streamed() {
        let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
        let (sub_tx, sub_rx) = mpsc::sync_channel::<Submission<'_>>(4);
        let stats = Arc::new(Mutex::new(StatsSnapshot::default()));
        std::thread::scope(|scope| {
            let stats = Arc::clone(&stats);
            scope.spawn(move || run_owner_loop(Scheduler::new(config()), sub_rx, stats, 64, "f32"));
            let (ev_tx, ev_rx) = mpsc::channel();
            let (reply_tx, reply_rx) = mpsc::channel();
            sub_tx
                .send(Submission {
                    engine: EngineBuilder::new(&model).build().unwrap(),
                    request: GenerateRequest::new(&[]), // empty prompt
                    deadline: None,
                    events: ev_tx,
                    reply: reply_tx,
                })
                .unwrap();
            let err = reply_rx.recv().unwrap().unwrap_err();
            assert_eq!(err, EngineError::EmptyPrompt);
            assert!(ev_rx.try_recv().is_err(), "no stream for rejected submit");
            drop(sub_tx);
        });
        let final_stats = stats.lock().unwrap().clone();
        assert_eq!(
            final_stats.scheduler.submitted, 0,
            "rejection never entered"
        );
        assert_eq!(final_stats.completed, 0);
    }
}
