//! End-to-end tests of the HTTP server over real loopback sockets: boot,
//! stream, disconnect, overload, deadlines, malformed input, shutdown.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use sparseinfer::json::Json;
use sparseinfer::model::generator::WeightGenerator;
use sparseinfer::model::{Model, ModelConfig};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::{Engine, EngineBuilder};
use sparseinfer::sparse::error::EngineError;
use sparseinfer::sparse::scheduler::SchedulerConfig;
use sparseinfer_serve::{Client, Limits, Server, ServerConfig, ServerHandle, StatsSnapshot};

fn test_model() -> Model {
    WeightGenerator::new(&ModelConfig::tiny(), 42).build()
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: SchedulerConfig {
            max_slots: 2,
            block_tokens: 8,
            kv_block_budget: 4096,
            // Off so a drained server provably holds zero KV blocks.
            prefix_cache: false,
            ..SchedulerConfig::default()
        },
        slot_threads: 1,
        connection_threads: 4,
        queue_capacity: 8,
        weight_format: Default::default(),
        limits: Limits::default(),
    }
}

/// Boots a server on an ephemeral port with a per-request engine built by
/// `build`, runs `client_script` against it, shuts down, and returns
/// (script result, post-drain stats).
fn with_server_via<T: Send>(
    config: ServerConfig,
    build: impl for<'m> Fn(&'m Model) -> Result<Box<dyn Engine + 'm>, EngineError> + Sync,
    client_script: impl FnOnce(SocketAddr, &ServerHandle) -> T + Send,
) -> (T, StatsSnapshot) {
    let model = test_model();
    let server = Server::bind(config).expect("bind ephemeral port");
    let handle = server.handle();
    let mut result = None;
    let mut stats = None;
    std::thread::scope(|scope| {
        let stats = &mut stats;
        let build = &build;
        let server_thread = scope.spawn(move || {
            *stats = Some(server.serve(&|_req| build(&model)));
        });
        result = Some(client_script(handle.addr(), &handle));
        handle.shutdown();
        server_thread.join().expect("server thread panicked");
    });
    (result.unwrap(), stats.unwrap())
}

/// `with_server_via` with the default dense engine.
fn with_server<T: Send>(
    config: ServerConfig,
    client_script: impl FnOnce(SocketAddr, &ServerHandle) -> T + Send,
) -> (T, StatsSnapshot) {
    with_server_via(config, |m| EngineBuilder::new(m).build(), client_script)
}

/// A lossless speculative engine: sign-bit sparse draft, dense verify.
fn speculative_engine(model: &Model, k: usize) -> Result<Box<dyn Engine + '_>, EngineError> {
    let draft = EngineBuilder::new(model)
        .signbit(AlphaSchedule::uniform(1.0))
        .build()?;
    let verify = EngineBuilder::new(model).build()?;
    EngineBuilder::speculative(draft, verify, k)
}

#[test]
fn streams_tokens_and_serves_health_and_stats() {
    let ((tokens, finish, health, stats_doc), final_stats) =
        with_server(test_config(), |addr, _| {
            let mut probe = Client::connect(addr).unwrap();
            let health = probe.get("/healthz").unwrap();
            assert_eq!(health.status, 200);

            let stream = Client::connect(addr)
                .unwrap()
                .post_streaming("/v1/generate", r#"{"prompt":[1,2,3],"max_new":6}"#)
                .unwrap();
            let (tokens, finish) = stream.collect_generation().unwrap();

            let stats = probe.get("/stats").unwrap();
            assert_eq!(stats.status, 200);
            (
                tokens,
                finish,
                health.json().unwrap(),
                stats.json().unwrap(),
            )
        });
    assert_eq!(tokens.len(), 6);
    assert_eq!(
        finish.get("finish").and_then(Json::as_str),
        Some("max_tokens")
    );
    assert_eq!(finish.get("tokens").and_then(Json::as_u64), Some(6));
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let sched = stats_doc.get("scheduler").expect("scheduler section");
    assert_eq!(sched.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(
        final_stats.scheduler.kv_blocks_in_use, 0,
        "pool drained after shutdown"
    );
    assert!(final_stats.draining);
}

#[test]
fn http_tokens_are_bit_identical_to_library_runs() {
    use sparseinfer::sparse::request::GenerateRequest;
    use sparseinfer::sparse::scheduler::Scheduler;

    // Reference: the same seeded request run directly through the library.
    let model = test_model();
    let req = GenerateRequest::new(&[7, 8, 9]).max_new(10);
    let mut reference = Scheduler::new(test_config().scheduler);
    reference
        .submit(EngineBuilder::new(&model).build().unwrap(), &req)
        .unwrap();
    let expected = reference.run().pop().unwrap().tokens;

    let (tokens, _) = with_server(test_config(), |addr, _| {
        Client::connect(addr)
            .unwrap()
            .post_streaming("/v1/generate", r#"{"prompt":[7,8,9],"max_new":10}"#)
            .unwrap()
            .collect_generation()
            .unwrap()
            .0
    });
    assert_eq!(tokens, expected, "greedy decode over HTTP == library run");
}

#[test]
fn mid_stream_disconnect_cancels_and_reclaims_kv() {
    let (stats_after_disconnect, final_stats) = with_server(test_config(), |addr, handle| {
        let mut stream = Client::connect(addr)
            .unwrap()
            // A long budget: without cancellation this would decode for a
            // very long time and the drain below would time the test out.
            .post_streaming("/v1/generate", r#"{"prompt":[1,2],"max_new":10000}"#)
            .unwrap();
        // Ensure the request is mid-decode, then vanish.
        let first = stream.next_event().unwrap().expect("first token");
        assert!(first.get("token").is_some());
        stream.abandon();

        // The server notices on its next failed write and cancels; poll
        // the owner-loop stats until the slot is gone.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = handle.stats();
            if stats.scheduler.active_slots == 0 && stats.completed == 1 {
                return stats;
            }
            assert!(
                Instant::now() < deadline,
                "server never reclaimed the disconnected request: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    assert_eq!(
        stats_after_disconnect.scheduler.kv_blocks_in_use, 0,
        "KV reclaimed"
    );
    assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0);
}

#[test]
fn deadline_exceeded_finishes_the_stream_with_partial_tokens() {
    let ((tokens, finish), _) = with_server(test_config(), |addr, _| {
        Client::connect(addr)
            .unwrap()
            .post_streaming(
                "/v1/generate",
                r#"{"prompt":[1,2],"max_new":10000,"deadline_ms":50}"#,
            )
            .unwrap()
            .collect_generation()
            .unwrap()
    });
    assert_eq!(
        finish.get("finish").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    assert_eq!(
        finish.get("tokens").and_then(Json::as_u64),
        Some(tokens.len() as u64),
        "partial tokens streamed before expiry are kept"
    );
    assert!(tokens.len() < 10_000);
}

#[test]
fn overload_answers_503_with_retry_after() {
    // One slot and a one-deep submission queue: 1 decoding + 1 pending
    // + 1 buffered in the channel saturates the server, so further
    // submits must bounce with 503 instead of queueing without bound.
    // Every request carries a deadline so the test's wall-clock stays
    // bounded regardless of decode speed.
    let config = ServerConfig {
        scheduler: SchedulerConfig {
            max_slots: 1,
            ..test_config().scheduler
        },
        queue_capacity: 1,
        connection_threads: 8,
        ..test_config()
    };
    let (saw_503, _) = with_server(config, |addr, _| {
        let mut saw_503 = false;
        std::thread::scope(|scope| {
            // Saturators on their own threads: the ones parked in the
            // bounded channel don't get a response head until drained, so
            // issuing them from the probe thread would block it. Their
            // starts are staggered — simultaneous submits into the
            // one-deep channel would shed each *other* and leave the
            // server idle instead of saturated (slot + pending + channel).
            for i in 0..3u64 {
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(i * 150));
                    let result = Client::connect(addr).unwrap().post_streaming(
                        "/v1/generate",
                        r#"{"prompt":[1],"max_new":10000,"deadline_ms":4000}"#,
                    );
                    // Streams until its deadline; the saturators only need
                    // to occupy the slot, the queue and the channel for a
                    // while.
                    if let Ok(stream) = result {
                        let _ = stream.collect_generation();
                    }
                });
            }
            // Probe once the saturators hold slot + pending + channel.
            // Probes carry a short deadline, so even an admitted probe
            // answers quickly and the loop can keep probing.
            std::thread::sleep(Duration::from_millis(600));
            let deadline = Instant::now() + Duration::from_secs(2);
            while !saw_503 && Instant::now() < deadline {
                let mut probe = Client::connect(addr).unwrap();
                let resp = probe
                    .post(
                        "/v1/generate",
                        r#"{"prompt":[2],"max_new":10000,"deadline_ms":50}"#,
                    )
                    .unwrap();
                if resp.status == 503 {
                    assert_eq!(resp.header("retry-after"), Some("1"));
                    assert!(resp.text().contains("overloaded"));
                    saw_503 = true;
                }
            }
        });
        saw_503
    });
    assert!(saw_503, "an overloaded server must shed load with 503");
}

#[test]
fn malformed_and_oversized_requests_do_not_kill_the_connection_handler() {
    let config = ServerConfig {
        limits: Limits {
            max_header_bytes: 1024,
            max_body_bytes: 256,
        },
        ..test_config()
    };
    let (_, final_stats) = with_server(config, |addr, _| {
        // Bad JSON -> 400, connection stays usable (keep-alive).
        let mut client = Client::connect(addr).unwrap();
        let resp = client.post("/v1/generate", "this is not json").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("invalid JSON"));

        // Same connection: a valid request still works after the 400.
        let resp = client
            .post("/v1/generate", r#"{"prompt":[1],"max_new":2}"#)
            .unwrap();
        assert_eq!(resp.status, 200);

        // Semantically invalid -> 400 with the field named.
        let resp = client
            .post("/v1/generate", r#"{"prompt":[],"max_new":2}"#)
            .unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("prompt"));

        // Unknown priority class -> 400, connection still alive.
        let resp = client
            .post("/v1/generate", r#"{"prompt":[1],"priority":"urgent"}"#)
            .unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.text().contains("priority"));

        // Same connection: a valid priority still works after the 400.
        let resp = client
            .post(
                "/v1/generate",
                r#"{"prompt":[1],"max_new":2,"priority":"high"}"#,
            )
            .unwrap();
        assert_eq!(resp.status, 200);

        // Oversized body -> 413 (these close the connection: fresh client).
        let huge = format!(r#"{{"prompt":[{}]}}"#, "1,".repeat(200) + "1");
        let mut client = Client::connect(addr).unwrap();
        let resp = client.post("/v1/generate", &huge).unwrap();
        assert_eq!(resp.status, 413);

        // Unknown endpoint -> 404.
        let mut client = Client::connect(addr).unwrap();
        let resp = client.get("/nope").unwrap();
        assert_eq!(resp.status, 404);

        // And the server still serves after all that abuse.
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    });
    assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0);
}

#[test]
fn high_priority_preempts_a_batch_stream_and_the_finish_event_reports_it() {
    // Budget fits exactly the batch request (tiny(): 2 layers, prompt 2 +
    // max_new 2048 at 4 tokens/block -> 1026 blocks), so the High arrival
    // must evict it; the swap-out restores and the batch stream still
    // delivers every token, with the eviction visible in its finish
    // event and in /stats. The batch decode is deliberately long
    // (~300ms wall clock) so the separately-posted High request lands
    // mid-decode rather than racing the batch request's completion.
    let config = ServerConfig {
        scheduler: SchedulerConfig {
            max_slots: 4,
            block_tokens: 4,
            kv_block_budget: 1026,
            prefix_cache: false,
            ..SchedulerConfig::default()
        },
        ..test_config()
    };
    let ((batch_tokens, batch_finish, high_finish, stats_doc), final_stats) =
        with_server(config, |addr, _| {
            let mut batch_stream = Client::connect(addr)
                .unwrap()
                .post_streaming(
                    "/v1/generate",
                    r#"{"prompt":[1,2],"max_new":2048,"priority":"batch"}"#,
                )
                .unwrap();
            // Wait for the first token so the batch request holds a slot.
            let first = batch_stream.next_event().unwrap().expect("a token");
            assert_eq!(first.get("index").and_then(Json::as_u64), Some(0));

            let (high_tokens, high_finish) = Client::connect(addr)
                .unwrap()
                .post_streaming(
                    "/v1/generate",
                    r#"{"prompt":[7,8],"max_new":4,"priority":"high"}"#,
                )
                .unwrap()
                .collect_generation()
                .unwrap();
            assert_eq!(high_tokens.len(), 4);

            let mut batch_tokens = vec![first.get("token").and_then(Json::as_u64).unwrap() as u32];
            let (rest, batch_finish) = batch_stream.collect_generation().unwrap();
            batch_tokens.extend(rest);

            let stats = Client::connect(addr).unwrap().get("/stats").unwrap();
            assert_eq!(stats.status, 200);
            (
                batch_tokens,
                batch_finish,
                high_finish,
                stats.json().unwrap(),
            )
        });
    assert_eq!(
        batch_tokens.len(),
        2048,
        "the evicted stream still completes"
    );
    assert_eq!(
        batch_finish.get("finish").and_then(Json::as_str),
        Some("max_tokens")
    );
    let preemptions = batch_finish
        .get("preemptions")
        .and_then(Json::as_u64)
        .expect("finish event carries preemptions");
    assert!(preemptions >= 1, "the batch stream must have been evicted");
    assert!(
        batch_finish
            .get("swapped_blocks")
            .and_then(Json::as_u64)
            .expect("finish event carries swapped_blocks")
            > 0,
        "default config swaps rather than recomputes"
    );
    assert_eq!(
        high_finish.get("preemptions").and_then(Json::as_u64),
        Some(0)
    );
    let preemption = stats_doc.get("preemption").expect("preemption section");
    assert!(
        preemption
            .get("preemptions")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    assert!(
        preemption
            .get("swapped_out")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    assert_eq!(
        preemption.get("preempted_now").and_then(Json::as_u64),
        Some(0)
    );
    let memory = stats_doc.get("memory").expect("memory section");
    assert_eq!(
        memory.get("swapped_bytes").and_then(Json::as_u64),
        Some(0),
        "cold buffers drained once everything resumed"
    );
    assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0, "pool drained");
    assert_eq!(final_stats.scheduler.memory.swapped_bytes, 0);
}

#[test]
fn concurrent_clients_at_several_slot_thread_counts_match_library_runs() {
    use sparseinfer::sparse::request::GenerateRequest;
    use sparseinfer::sparse::scheduler::Scheduler;

    // Distinct seeded requests (different samplers) so cross-request
    // interference would be visible as token divergence.
    let bodies: Vec<String> = (0..6)
        .map(|i| {
            format!(
                r#"{{"prompt":[{},{},{}],"max_new":8,"top_k":8,"temperature":0.7,"seed":{}}}"#,
                i + 1,
                i + 2,
                i + 3,
                i as u64 * 31 + 5,
            )
        })
        .collect();

    // Library reference, computed once (slot-thread count never changes
    // tokens at the library level; that is the scheduler's own test
    // surface).
    let model = test_model();
    let expected: Vec<Vec<u32>> = (0..6u32)
        .map(|i| {
            use sparseinfer::model::Sampler;
            let req = GenerateRequest::new(&[i + 1, i + 2, i + 3])
                .max_new(8)
                .sampler(Sampler::top_k(8, 0.7, u64::from(i) * 31 + 5));
            let mut scheduler = Scheduler::new(test_config().scheduler);
            scheduler
                .submit(EngineBuilder::new(&model).build().unwrap(), &req)
                .unwrap();
            scheduler.run().pop().unwrap().tokens
        })
        .collect();

    for slot_threads in [1, 2, 4] {
        let config = ServerConfig {
            slot_threads,
            scheduler: SchedulerConfig {
                max_slots: 4,
                ..test_config().scheduler
            },
            ..test_config()
        };
        let (all_tokens, final_stats) = with_server(config, |addr, _| {
            // All six requests from six concurrent client threads.
            let done = AtomicUsize::new(0);
            let mut results: Vec<Option<Vec<u32>>> = vec![None; bodies.len()];
            std::thread::scope(|scope| {
                for (slot, body) in results.iter_mut().zip(&bodies) {
                    let done = &done;
                    scope.spawn(move || {
                        let (tokens, finish) = Client::connect(addr)
                            .unwrap()
                            .post_streaming("/v1/generate", body)
                            .unwrap()
                            .collect_generation()
                            .unwrap();
                        assert_eq!(
                            finish.get("finish").and_then(Json::as_str),
                            Some("max_tokens")
                        );
                        *slot = Some(tokens);
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(done.load(Ordering::Relaxed), bodies.len());
            results.into_iter().map(Option::unwrap).collect::<Vec<_>>()
        });
        assert_eq!(
            all_tokens, expected,
            "{slot_threads} slot threads: HTTP tokens == library tokens"
        );
        assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0);
        assert_eq!(final_stats.completed, bodies.len());
    }
}

#[test]
fn speculative_server_is_bit_identical_to_dense_and_reports_counters() {
    use sparseinfer::sparse::request::GenerateRequest;
    use sparseinfer::sparse::scheduler::Scheduler;

    // Dense-only library reference: lossless speculation must reproduce
    // these tokens exactly, over HTTP, at every slot-thread count.
    let model = test_model();
    let bodies: Vec<String> = (0..4u32)
        .map(|i| format!(r#"{{"prompt":[{},{}],"max_new":12}}"#, i + 3, i + 5))
        .collect();
    let expected: Vec<Vec<u32>> = (0..4u32)
        .map(|i| {
            let req = GenerateRequest::new(&[i + 3, i + 5]).max_new(12);
            let mut scheduler = Scheduler::new(test_config().scheduler);
            scheduler
                .submit(EngineBuilder::new(&model).build().unwrap(), &req)
                .unwrap();
            scheduler.run().pop().unwrap().tokens
        })
        .collect();

    for slot_threads in [1, 2, 4] {
        let config = ServerConfig {
            slot_threads,
            scheduler: SchedulerConfig {
                max_slots: 4,
                ..test_config().scheduler
            },
            ..test_config()
        };
        let ((all_tokens, finishes, stats_doc), final_stats) = with_server_via(
            config,
            |m| speculative_engine(m, 4),
            |addr, _| {
                let mut results: Vec<Option<(Vec<u32>, Json)>> = vec![None; bodies.len()];
                std::thread::scope(|scope| {
                    for (slot, body) in results.iter_mut().zip(&bodies) {
                        scope.spawn(move || {
                            *slot = Some(
                                Client::connect(addr)
                                    .unwrap()
                                    .post_streaming("/v1/generate", body)
                                    .unwrap()
                                    .collect_generation()
                                    .unwrap(),
                            );
                        });
                    }
                });
                let stats = Client::connect(addr).unwrap().get("/stats").unwrap();
                assert_eq!(stats.status, 200);
                let (tokens, finishes): (Vec<_>, Vec<_>) =
                    results.into_iter().map(Option::unwrap).unzip();
                (tokens, finishes, stats.json().unwrap())
            },
        );
        assert_eq!(
            all_tokens, expected,
            "{slot_threads} slot threads: speculative HTTP tokens == dense library tokens"
        );
        for finish in &finishes {
            assert_eq!(
                finish.get("engine").and_then(Json::as_str),
                Some("speculative:sparse:sparseinfer+dense")
            );
            let spec = finish
                .get("speculative")
                .expect("finish event carries speculative counters");
            let drafted = spec.get("drafted").and_then(Json::as_u64).unwrap();
            let accepted = spec.get("accepted").and_then(Json::as_u64).unwrap();
            assert!(drafted > 0, "the draft engine proposed tokens");
            assert!(accepted <= drafted);
        }
        let spec = stats_doc
            .get("speculative")
            .expect("/stats carries a speculative section");
        let drafted = spec.get("drafted").and_then(Json::as_u64).unwrap();
        assert!(drafted > 0);
        assert!(spec.get("accepted").and_then(Json::as_u64).unwrap() <= drafted);
        assert!(spec.get("acceptance_rate").and_then(Json::as_f64).is_some());
        assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0);
        assert_eq!(final_stats.completed, bodies.len());
    }
}

#[test]
fn graceful_shutdown_drains_in_flight_streams() {
    let ((tokens, finish), final_stats) = with_server(test_config(), |addr, handle| {
        let mut stream = Client::connect(addr)
            .unwrap()
            .post_streaming("/v1/generate", r#"{"prompt":[3,1],"max_new":40}"#)
            .unwrap();
        // Mid-stream, request shutdown...
        let first = stream.next_event().unwrap().expect("first token");
        assert!(first.get("token").is_some());
        handle.shutdown();
        // ...and the stream must still run to its natural completion.
        let mut tokens = vec![first.get("token").and_then(Json::as_u64).unwrap() as u32];
        let (rest, finish) = stream.collect_generation().unwrap();
        tokens.extend(rest);
        (tokens, finish)
    });
    assert_eq!(
        tokens.len(),
        40,
        "in-flight stream completed despite shutdown"
    );
    assert_eq!(
        finish.get("finish").and_then(Json::as_str),
        Some("max_tokens")
    );
    assert_eq!(final_stats.scheduler.kv_blocks_in_use, 0);
    assert_eq!(final_stats.completed, 1);
}
