//! # SparseInfer — training-free activation sparsity for fast LLM inference
//!
//! A from-scratch Rust reproduction of *SparseInfer: Training-free Prediction
//! of Activation Sparsity for Fast LLM Inference* (Shin, Yang, Yi — DATE
//! 2025). This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `sparseinfer-tensor` | vectors/matrices, GEMV, **sign-bit packing**, f16/int8, RNG, stats |
//! | [`model`] | `sparseinfer-model` | ReLU-fied Llama-style decoder, paged KV block pool, sparsity-calibrated synthetic weights, samplers |
//! | [`predictor`] | `sparseinfer-predictor` | the **sign-bit predictor**, alpha schedules, DejaVu baseline, oracle/random, metrics |
//! | [`sparse`] | `sparseinfer-sparse` | sparse GEMVs and MLPs, the unified **`Engine` API**, request layer, the **continuous-batching scheduler**, op accounting |
//! | [`gpu_sim`] | `sparseinfer-gpu-sim` | Jetson Orin AGX roofline cost model: kernels, CKE, per-token latency |
//! | [`eval`] | `sparseinfer-eval` | synthetic GSM8K/BBH-analog suites, dense-gold accuracy, logit divergence |
//! | [`json`] | (this crate) | dependency-free JSON value tree, parser and writer, shared by the bench tooling and the HTTP serving frontend |
//! | [`stats`] | (this crate) | the single JSON encoding of [`SchedulerStats`](sparse::scheduler::SchedulerStats), shared by `/stats` and the trace-replay harness |
//!
//! # Quickstart
//!
//! Every execution configuration — dense baseline, sign-bit SparseInfer,
//! trained DejaVu, oracle, random — is built through one
//! [`EngineBuilder`](sparse::engine::EngineBuilder) and served through one
//! request layer:
//!
//! ```
//! use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer::predictor::AlphaSchedule;
//! use sparseinfer::sparse::engine::EngineBuilder;
//! use sparseinfer::sparse::request::{generate, GenerateRequest};
//!
//! // A ReLU-fied model with ~92% activation sparsity.
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//!
//! // The training-free predictor: packed sign bits + XOR/popcount,
//! // validated by the builder (layer mismatches are `Err`, not panics).
//! let mut engine = EngineBuilder::new(&model)
//!     .signbit(AlphaSchedule::early_layers(1.02, 1))
//!     .build()
//!     .expect("predictor covers every layer");
//!
//! // Decode with sparsity exploitation (kernel fusion + actual sparsity).
//! let req = GenerateRequest::new(&[1, 2, 3]).max_new(8);
//! let generation = generate(engine.as_mut(), &req).expect("non-empty prompt");
//! assert_eq!(generation.tokens.len(), 8);
//! println!("skipped {} rows", engine.ops().rows_skipped);
//! ```
//!
//! # Serving
//!
//! The serving entry point is the continuous-batching
//! [`Scheduler`](sparse::scheduler::Scheduler) over a paged KV cache:
//! requests [`submit`](sparse::scheduler::Scheduler::submit) at any time
//! (including while others are mid-decode), are admitted FIFO under
//! `max_slots` and a KV-block budget, stream tokens per tick, can be
//! cancelled through their [`RequestHandle`](sparse::scheduler::RequestHandle),
//! and release their KV blocks the moment they finish. Each request's
//! tokens are bit-identical to running it alone:
//!
//! ```
//! use sparseinfer::model::{generator::WeightGenerator, ModelConfig, Sampler};
//! use sparseinfer::predictor::AlphaSchedule;
//! use sparseinfer::sparse::engine::EngineBuilder;
//! use sparseinfer::sparse::request::GenerateRequest;
//! use sparseinfer::sparse::scheduler::{Scheduler, SchedulerConfig};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//! let mut scheduler = Scheduler::new(SchedulerConfig {
//!     max_slots: 2,            // concurrent decode slots
//!     block_tokens: 16,        // paged-KV granularity
//!     kv_block_budget: 1024,   // admission-control memory cap
//!     ..SchedulerConfig::default() // prefix cache on, default retention
//! });
//! let dense = EngineBuilder::new(&model).build().unwrap();
//! let sparse = EngineBuilder::new(&model).signbit(AlphaSchedule::uniform(1.0)).build().unwrap();
//! scheduler.submit(dense, &GenerateRequest::new(&[1, 2]).max_new(4)).unwrap();
//! let handle = scheduler.submit(
//!     sparse,
//!     &GenerateRequest::new(&[3, 4]).max_new(4).sampler(Sampler::top_k(8, 0.7, 7)),
//! ).unwrap();
//! assert_eq!(handle.id(), 1); // cancel mid-stream with handle.cancel()
//! for out in scheduler.run() {
//!     println!("request {} via {}: {:?} ({} MACs)", out.id, out.engine, out.tokens, out.ops.macs);
//! }
//! ```
//!
//! The closed [`Batch`](sparse::batch::Batch) wrapper (push everything,
//! then `run()`) remains for offline evaluation workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod stats;

pub use sparseinfer_eval as eval;
pub use sparseinfer_gpu_sim as gpu_sim;
pub use sparseinfer_model as model;
pub use sparseinfer_predictor as predictor;
pub use sparseinfer_sparse as sparse;
pub use sparseinfer_tensor as tensor;
