//! # SparseInfer — training-free activation sparsity for fast LLM inference
//!
//! A from-scratch Rust reproduction of *SparseInfer: Training-free Prediction
//! of Activation Sparsity for Fast LLM Inference* (Shin, Yang, Yi — DATE
//! 2025). This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tensor`] | `sparseinfer-tensor` | vectors/matrices, GEMV, **sign-bit packing**, f16/int8, RNG, stats |
//! | [`model`] | `sparseinfer-model` | ReLU-fied Llama-style decoder + sparsity-calibrated synthetic weights |
//! | [`predictor`] | `sparseinfer-predictor` | the **sign-bit predictor**, alpha schedules, DejaVu baseline, oracle/random, metrics |
//! | [`sparse`] | `sparseinfer-sparse` | skip masks in action: sparse GEMVs, the sparse gated MLP, inference engines, op accounting |
//! | [`gpu_sim`] | `sparseinfer-gpu-sim` | Jetson Orin AGX roofline cost model: kernels, CKE, per-token latency |
//! | [`eval`] | `sparseinfer-eval` | synthetic GSM8K/BBH-analog suites, dense-gold accuracy, logit divergence |
//!
//! # Quickstart
//!
//! ```
//! use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer::predictor::{AlphaSchedule, SignBitPredictor};
//! use sparseinfer::sparse::engine::{EngineOptions, SparseEngine};
//!
//! // A ReLU-fied model with ~92% activation sparsity.
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//!
//! // The training-free predictor: packed sign bits + XOR/popcount.
//! let predictor = SignBitPredictor::from_model(&model, AlphaSchedule::early_layers(1.02, 1));
//!
//! // Decode with sparsity exploitation (kernel fusion + actual sparsity).
//! let mut engine = SparseEngine::new(&model, predictor, EngineOptions::sparseinfer());
//! let tokens = engine.generate_greedy(&[1, 2, 3], 8, u32::MAX);
//! assert_eq!(tokens.len(), 8);
//! println!("skipped {} rows", engine.ops().rows_skipped);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sparseinfer_eval as eval;
pub use sparseinfer_gpu_sim as gpu_sim;
pub use sparseinfer_model as model;
pub use sparseinfer_predictor as predictor;
pub use sparseinfer_sparse as sparse;
pub use sparseinfer_tensor as tensor;
