//! The one JSON encoding of [`SchedulerStats`] — shared by the HTTP
//! `/stats` endpoint (`sparseinfer-serve`) and the trace-replay harness's
//! `SloReport` (`sparseinfer-trace`).
//!
//! [`Scheduler::stats`](sparseinfer_sparse::scheduler::Scheduler::stats)
//! is the single stats *surface*; this module is the single stats
//! *serialization*. Consumers that need extra fields (the server's
//! `completed`/`draining`, a harness's percentiles) append to the value
//! tree this function returns instead of re-encoding scheduler state
//! themselves, so the schema cannot fork.

use sparseinfer_sparse::engine::SpeculativeStats;
use sparseinfer_sparse::scheduler::SchedulerStats;

use crate::json::Json;

fn num(n: u64) -> Json {
    Json::Number(n as f64)
}

/// Encodes draft/accept counters as
/// `{"drafted":d,"accepted":a,"acceptance_rate":r}` — the same shape the
/// per-request finish events use.
pub fn speculative_json(spec: &SpeculativeStats) -> Json {
    Json::Object(vec![
        ("drafted".to_string(), num(spec.drafted)),
        ("accepted".to_string(), num(spec.accepted)),
        (
            "acceptance_rate".to_string(),
            Json::Number(spec.acceptance_rate()),
        ),
    ])
}

/// Encodes one [`SchedulerStats`] snapshot as a JSON object with the
/// sections `scheduler`, `dtype`, `kv`, `memory`, `prefix_cache`,
/// `speculative` and `preemption`.
///
/// `kv.block_budget` is omitted when the memory gate is disabled
/// (`usize::MAX` is not representable as an exact JSON number).
///
/// ```
/// use sparseinfer::json::Json;
/// use sparseinfer::sparse::scheduler::SchedulerStats;
/// use sparseinfer::stats::scheduler_stats_json;
///
/// let doc = scheduler_stats_json(&SchedulerStats::default());
/// let parsed = Json::parse(&doc.to_json()).unwrap();
/// let sched = parsed.get("scheduler").unwrap();
/// assert_eq!(sched.get("submitted").and_then(Json::as_u64), Some(0));
/// ```
pub fn scheduler_stats_json(stats: &SchedulerStats) -> Json {
    let mut kv = vec![
        (
            "blocks_in_use".to_string(),
            num(stats.kv_blocks_in_use as u64),
        ),
        ("in_use_bytes".to_string(), num(stats.kv_in_use_bytes)),
    ];
    if stats.kv_block_budget != usize::MAX {
        kv.push((
            "block_budget".to_string(),
            num(stats.kv_block_budget as u64),
        ));
    }
    Json::Object(vec![
        (
            "scheduler".to_string(),
            Json::Object(vec![
                ("ticks".to_string(), num(stats.ticks)),
                ("queued".to_string(), num(stats.queued as u64)),
                ("active_slots".to_string(), num(stats.active_slots as u64)),
                (
                    "reserved_blocks".to_string(),
                    num(stats.reserved_blocks as u64),
                ),
                (
                    "preempted".to_string(),
                    num(stats.preemption.preempted_now as u64),
                ),
                ("submitted".to_string(), num(stats.submitted as u64)),
                ("retired".to_string(), num(stats.retired as u64)),
            ]),
        ),
        (
            "dtype".to_string(),
            Json::Object(vec![
                ("kv".to_string(), Json::String(stats.kv_dtype.to_string())),
                (
                    "kv_bytes_per_elem".to_string(),
                    num(stats.kv_bytes_per_elem as u64),
                ),
            ]),
        ),
        ("kv".to_string(), Json::Object(kv)),
        (
            "memory".to_string(),
            Json::Object(vec![
                ("shared_bytes".to_string(), num(stats.memory.shared_bytes)),
                ("weight_bytes".to_string(), num(stats.memory.weight_bytes)),
                (
                    "per_session_bytes".to_string(),
                    num(stats.memory.per_session_bytes),
                ),
                ("swapped_bytes".to_string(), num(stats.memory.swapped_bytes)),
            ]),
        ),
        (
            "prefix_cache".to_string(),
            Json::Object(vec![
                (
                    "attached_requests".to_string(),
                    num(stats.prefix.attached_requests as u64),
                ),
                (
                    "skipped_tokens".to_string(),
                    num(stats.prefix.skipped_tokens),
                ),
                (
                    "published_blocks".to_string(),
                    num(stats.prefix.published_blocks as u64),
                ),
                (
                    "evicted_blocks".to_string(),
                    num(stats.prefix.evicted_blocks as u64),
                ),
                (
                    "retained_blocks".to_string(),
                    num(stats.prefix.retained_blocks as u64),
                ),
                (
                    "unreferenced_blocks".to_string(),
                    num(stats.prefix.unreferenced_blocks as u64),
                ),
            ]),
        ),
        (
            "speculative".to_string(),
            speculative_json(&stats.speculative),
        ),
        (
            "preemption".to_string(),
            Json::Object(vec![
                (
                    "preemptions".to_string(),
                    num(stats.preemption.preemptions as u64),
                ),
                (
                    "swapped_out".to_string(),
                    num(stats.preemption.swapped_out as u64),
                ),
                (
                    "recomputed".to_string(),
                    num(stats.preemption.recomputed as u64),
                ),
                ("resumed".to_string(), num(stats.preemption.resumed as u64)),
                (
                    "preempted_now".to_string(),
                    num(stats.preemption.preempted_now as u64),
                ),
                (
                    "swapped_bytes".to_string(),
                    num(stats.preemption.swapped_bytes),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_sparse::engine::MemoryEstimate;
    use sparseinfer_sparse::scheduler::{PreemptionStats, PrefixCacheStats};

    /// Round trip: every section and every numeric field survives a
    /// serialize → parse cycle with its value intact.
    #[test]
    fn scheduler_stats_round_trip_through_the_parser() {
        let stats = SchedulerStats {
            ticks: 37,
            submitted: 14,
            retired: 9,
            queued: 2,
            active_slots: 3,
            reserved_blocks: 11,
            kv_blocks_in_use: 9,
            kv_in_use_bytes: 4608,
            kv_block_budget: 4096,
            kv_dtype: "f16",
            kv_bytes_per_elem: 2,
            memory: MemoryEstimate {
                shared_bytes: 1024,
                weight_bytes: 768,
                per_session_bytes: 2048,
                swapped_bytes: 512,
            },
            prefix: PrefixCacheStats {
                attached_requests: 4,
                skipped_tokens: 64,
                published_blocks: 8,
                evicted_blocks: 1,
                retained_blocks: 7,
                unreferenced_blocks: 3,
            },
            preemption: PreemptionStats {
                preemptions: 5,
                swapped_out: 3,
                recomputed: 2,
                resumed: 4,
                preempted_now: 1,
                swapped_bytes: 256,
            },
            speculative: SpeculativeStats {
                drafted: 10,
                accepted: 4,
            },
        };
        let doc = Json::parse(&scheduler_stats_json(&stats).to_json()).unwrap();
        let sched = doc.get("scheduler").unwrap();
        assert_eq!(sched.get("ticks").and_then(Json::as_u64), Some(37));
        assert_eq!(sched.get("submitted").and_then(Json::as_u64), Some(14));
        assert_eq!(sched.get("retired").and_then(Json::as_u64), Some(9));
        assert_eq!(sched.get("queued").and_then(Json::as_u64), Some(2));
        assert_eq!(sched.get("active_slots").and_then(Json::as_u64), Some(3));
        assert_eq!(sched.get("preempted").and_then(Json::as_u64), Some(1));
        let dtype = doc.get("dtype").unwrap();
        assert_eq!(dtype.get("kv").and_then(Json::as_str), Some("f16"));
        assert_eq!(
            dtype.get("kv_bytes_per_elem").and_then(Json::as_u64),
            Some(2)
        );
        let kv = doc.get("kv").unwrap();
        assert_eq!(kv.get("blocks_in_use").and_then(Json::as_u64), Some(9));
        assert_eq!(kv.get("in_use_bytes").and_then(Json::as_u64), Some(4608));
        assert_eq!(kv.get("block_budget").and_then(Json::as_u64), Some(4096));
        let memory = doc.get("memory").unwrap();
        assert_eq!(
            memory.get("shared_bytes").and_then(Json::as_u64),
            Some(1024)
        );
        assert_eq!(memory.get("weight_bytes").and_then(Json::as_u64), Some(768));
        assert_eq!(
            memory.get("per_session_bytes").and_then(Json::as_u64),
            Some(2048)
        );
        assert_eq!(
            memory.get("swapped_bytes").and_then(Json::as_u64),
            Some(512)
        );
        let prefix = doc.get("prefix_cache").unwrap();
        assert_eq!(
            prefix.get("skipped_tokens").and_then(Json::as_u64),
            Some(64)
        );
        assert_eq!(
            prefix.get("unreferenced_blocks").and_then(Json::as_u64),
            Some(3)
        );
        let spec = doc.get("speculative").unwrap();
        assert_eq!(spec.get("drafted").and_then(Json::as_u64), Some(10));
        assert_eq!(
            spec.get("acceptance_rate").and_then(Json::as_f64),
            Some(0.4)
        );
        let preemption = doc.get("preemption").unwrap();
        assert_eq!(
            preemption.get("preemptions").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            preemption.get("swapped_bytes").and_then(Json::as_u64),
            Some(256)
        );
    }

    /// An unbounded budget is omitted rather than rounded through f64.
    #[test]
    fn unbounded_budget_is_omitted() {
        let doc = scheduler_stats_json(&SchedulerStats {
            kv_block_budget: usize::MAX,
            ..Default::default()
        });
        let parsed = Json::parse(&doc.to_json()).unwrap();
        assert!(parsed.get("kv").unwrap().get("block_budget").is_none());
    }
}
