//! Dependency-free JSON: a minimal value tree with a strict parser and a
//! canonical writer.
//!
//! Shared by the bench tooling (parsing committed `BENCH_*.json` baselines
//! in the `bench_gate` regression gate) and the HTTP serving frontend
//! (`/v1/generate` request bodies, `/stats` serialization) — both need
//! exactly this much JSON and neither may pull in a dependency, so the
//! implementation lives once, here, with round-trip tests.
//!
//! The parser is written for untrusted network input: it enforces a
//! nesting-depth cap (no stack overflow on `[[[[…`), rejects trailing
//! garbage, and surfaces every failure as a positioned [`JsonError`]
//! instead of a panic.
//!
//! # Example
//!
//! ```
//! use sparseinfer::json::Json;
//!
//! let value = Json::parse(r#"{"prompt": [1, 2], "max_new": 8}"#).unwrap();
//! assert_eq!(value.get("max_new").and_then(Json::as_f64), Some(8.0));
//! let back = value.to_json();
//! assert_eq!(Json::parse(&back).unwrap(), value);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any real
/// payload in this workspace; shallow enough that hostile `[[[[…` input
/// fails as data instead of overflowing the stack.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not
/// maps): serialization is deterministic and duplicate keys — illegal in
/// the payloads this workspace produces — resolve to the first occurrence
/// on [`get`](Self::get).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; integers up to 2^53
    /// round-trip exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Object(Vec<(String, Json)>),
}

/// A positioned JSON parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses `input` as one complete JSON document (trailing whitespace
    /// allowed, trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A positioned [`JsonError`] on any syntax violation, number
    /// overflow, bad escape, or nesting beyond [`MAX_DEPTH`].
    pub fn parse(input: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes the value as compact JSON. [`parse`](Self::parse) of the
    /// result reproduces the value exactly (modulo `f64` formatting of
    /// non-integer numbers, which round-trips through the shortest
    /// representation Rust prints).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a field of an object (first occurrence); `None` for other
    /// value kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a [`Json::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if this is a number that is
    /// one (no fractional part, within `u64` range) — the shape every
    /// count field in this workspace's payloads has.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a [`Json::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Writes `n` the way every record in this workspace expects: integers
/// without a fractional tail, everything else via Rust's shortest `f64`
/// formatting. Non-finite numbers have no JSON form and degrade to `null`.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: the low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code =
                                        0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 advanced past the digits already; the
                            // unconditional advance below is for the
                            // single-byte escapes, so compensate.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through verbatim: the
                    // input is a &str, so the bytes are valid by
                    // construction.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let before = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "1e3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_json()).unwrap(), v, "{text}");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Number(1000.0));
    }

    #[test]
    fn nested_documents_round_trip() {
        let text = r#"{"bench":"serving","records":[{"name":"itl_p50","us_per_iter":155.202,"speedup_over_dense":null,"threads":1},{"name":"x","us_per_iter":1,"ok":true}],"tags":["a","b"]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(Json::parse(&v.to_json()).unwrap(), v);
        let records = v.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[0].get("name").and_then(Json::as_str),
            Some("itl_p50")
        );
        assert_eq!(
            records[0].get("us_per_iter").and_then(Json::as_f64),
            Some(155.202)
        );
        assert_eq!(records[0].get("speedup_over_dense"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("line1\nline2\ttab \"quoted\" back\\slash \u{1}".to_string());
        let text = original.to_json();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Unicode escapes parse, including surrogate pairs.
        assert_eq!(
            Json::parse(r#""\u0041\ud83d\ude00""#).unwrap(),
            Json::String("A😀".to_string())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(
            Json::parse("\"héllo\"").unwrap(),
            Json::String("héllo".to_string())
        );
    }

    #[test]
    fn object_lookup_is_first_occurrence_and_order_preserving() {
        let v = Json::parse(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.to_json(), r#"{"b":1,"a":2,"b":3}"#);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn numbers_expose_integer_views() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("42.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn malformed_documents_are_positioned_errors() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\" 1}",
            "\"\\q\"",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
        let err = Json::parse("[1, 2, x]").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.to_string().contains("byte 7"));
    }

    #[test]
    fn hostile_nesting_fails_as_data_not_stack_overflow() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert_eq!(Json::parse(&deep).unwrap_err().message, "nesting too deep");
        // …while legitimate nesting inside the cap still parses.
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(Json::parse(&ok).is_ok());
    }
}
