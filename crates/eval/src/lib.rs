//! Accuracy evaluation harness (the substitute for lm-harness GSM8K/BBH runs;
//! see DESIGN.md §2).
//!
//! The paper's Tables II/III measure how much the sparse engine *degrades*
//! the model relative to its own dense baseline as a function of `alpha`.
//! With synthetic weights the absolute benchmark semantics are meaningless,
//! but the degradation mechanism is identical: mispredicted skips perturb
//! the MLP outputs, perturbed logits flip greedily decoded tokens, flipped
//! tokens change answers. We therefore score candidate engines against the
//! **dense model's greedy continuation as gold**:
//!
//! * [`tasks`] generates two prompt suites shaped like the paper's
//!   benchmarks — `gsm8k-syn` (few-shot arithmetic word problems) and
//!   `bbh-syn` (symbolic multi-step puzzles);
//! * [`harness`] decodes each prompt with the dense engine (gold) and the
//!   candidate engine, and reports exact-match and token-overlap rates;
//! * paper-style table scores are obtained by scaling the baseline scores
//!   (30.71 GSM8K / 44.80 BBH for 13B) by the measured match quality.
//!
//! The paper's sanity check — random skipping at 90% sparsity scores 0 —
//! falls out of the same pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod divergence;
pub mod harness;
pub mod tasks;

pub use harness::{evaluate_engine, teacher_forced_engine_matches, AccuracyReport, TaskOutcome};
pub use tasks::{EvalTask, TaskSuite};
