//! Synthetic evaluation task suites.
//!
//! Two generators produce prompt sets shaped like the paper's benchmarks:
//!
//! * **gsm8k-syn** — few-shot arithmetic word problems ("Q: ... A: ..."),
//!   matching the 8-shot GSM8K prompts the paper feeds the models;
//! * **bbh-syn** — symbolic multi-step transformations in the style of
//!   BIG-Bench-Hard tasks (list reversal, parity, sorting).
//!
//! The *content* only needs to be diverse and deterministic: gold answers
//! come from the dense model itself (see the crate docs), so what matters is
//! that every engine sees identical prompts.

use sparseinfer_model::ByteTokenizer;
use sparseinfer_tensor::Prng;

/// One evaluation prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalTask {
    /// Stable identifier (`gsm8k-syn/3`).
    pub id: String,
    /// Human-readable prompt text.
    pub text: String,
    /// Tokenized prompt.
    pub tokens: Vec<u32>,
}

/// A named collection of tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSuite {
    /// Suite name (`gsm8k-syn` or `bbh-syn`).
    pub name: String,
    /// The tasks.
    pub tasks: Vec<EvalTask>,
}

impl TaskSuite {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Generates the arithmetic word-problem suite.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gsm8k_syn(n: usize, seed: u64) -> Self {
        assert!(n > 0, "suite needs at least one task");
        let tok = ByteTokenizer::new();
        let mut rng = Prng::seed(seed ^ 0x65_37_38_6B);
        let names = ["Tom", "Mia", "Sam", "Ava", "Leo", "Zoe"];
        let objects = ["apples", "books", "coins", "cards", "shells", "pens"];
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let who = *rng.choose(&names);
            let what = *rng.choose(&objects);
            let a = rng.below(40) + 2;
            let b = rng.below(30) + 2;
            let c = rng.below(9) + 2;
            let text = format!("Q: {who} has {a} {what}, buys {b}, gives {c}. How many left? A:");
            tasks.push(EvalTask {
                id: format!("gsm8k-syn/{i}"),
                tokens: tok.encode(&text),
                text,
            });
        }
        Self {
            name: "gsm8k-syn".into(),
            tasks,
        }
    }

    /// Generates the symbolic-reasoning suite.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bbh_syn(n: usize, seed: u64) -> Self {
        assert!(n > 0, "suite needs at least one task");
        let tok = ByteTokenizer::new();
        let mut rng = Prng::seed(seed ^ 0x62_62_68);
        let ops = ["reverse", "sort ascending", "rotate left", "deduplicate"];
        let mut tasks = Vec::with_capacity(n);
        for i in 0..n {
            let op = *rng.choose(&ops);
            let len = rng.below(4) + 3;
            let seq: Vec<String> = (0..len).map(|_| (rng.below(90) + 10).to_string()).collect();
            let text = format!("Task: {op} [{}]. Answer:", seq.join(", "));
            tasks.push(EvalTask {
                id: format!("bbh-syn/{i}"),
                tokens: tok.encode(&text),
                text,
            });
        }
        Self {
            name: "bbh-syn".into(),
            tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsm8k_suite_is_deterministic_and_sized() {
        let a = TaskSuite::gsm8k_syn(10, 1);
        let b = TaskSuite::gsm8k_syn(10, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.name, "gsm8k-syn");
    }

    #[test]
    fn different_seeds_give_different_prompts() {
        let a = TaskSuite::gsm8k_syn(5, 1);
        let b = TaskSuite::gsm8k_syn(5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn prompts_look_like_their_benchmark() {
        let g = TaskSuite::gsm8k_syn(3, 7);
        assert!(g.tasks[0].text.starts_with("Q: "));
        assert!(g.tasks[0].text.contains("How many"));
        let b = TaskSuite::bbh_syn(3, 7);
        assert!(b.tasks[0].text.starts_with("Task: "));
        assert!(b.tasks[0].text.ends_with("Answer:"));
    }

    #[test]
    fn tokens_round_trip_through_the_tokenizer() {
        let tok = ByteTokenizer::new();
        let suite = TaskSuite::bbh_syn(2, 3);
        for t in &suite.tasks {
            assert_eq!(tok.decode(&t.tokens), t.text);
            assert_eq!(t.tokens[0], sparseinfer_model::tokenizer::BOS);
        }
    }

    #[test]
    fn task_ids_are_unique() {
        let suite = TaskSuite::gsm8k_syn(20, 5);
        let mut ids: Vec<&str> = suite.tasks.iter().map(|t| t.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_suite_rejected() {
        let _ = TaskSuite::gsm8k_syn(0, 1);
    }
}
