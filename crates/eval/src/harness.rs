//! Dense-gold accuracy evaluation.
//!
//! Candidate engines plug in through the unified
//! [`sparseinfer_sparse::Engine`] trait: [`evaluate_engine`] decodes
//! every task through the request layer, and
//! [`teacher_forced_engine_matches`] scores per-position argmax agreement
//! with dense prefill (the protocol behind the paper's Tables II/III).

use sparseinfer_model::Model;
use sparseinfer_sparse::request::{generate, GenerateRequest};
use sparseinfer_sparse::Engine;

use crate::tasks::TaskSuite;

/// Outcome of one task: gold vs candidate continuation comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskOutcome {
    /// Task identifier.
    pub id: String,
    /// Whole-continuation exact match.
    pub exact: bool,
    /// Position-wise token overlap in `[0, 1]` (over the gold length).
    pub overlap: f64,
}

/// Aggregate accuracy of a candidate engine against the dense gold.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Per-task outcomes.
    pub outcomes: Vec<TaskOutcome>,
}

impl AccuracyReport {
    /// Fraction of tasks with exact-match continuations.
    pub fn exact_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.exact).count() as f64 / self.outcomes.len() as f64
    }

    /// Mean token overlap across tasks.
    pub fn mean_overlap(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.overlap).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Fraction of tasks counted correct at an overlap threshold — the
    /// tolerance for answer-preserving near-misses.
    pub fn match_rate(&self, threshold: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .filter(|o| o.exact || o.overlap >= threshold)
            .count() as f64
            / self.outcomes.len() as f64
    }

    /// Projects the match quality onto a paper-style benchmark score:
    /// `baseline_score × match_rate(0.85)`. The dense baseline by
    /// construction scores exactly `baseline_score`.
    pub fn scaled_score(&self, baseline_score: f64) -> f64 {
        baseline_score * self.match_rate(0.85)
    }
}

/// Greedy gold continuations for every task (dense decode).
pub fn gold_continuations(model: &Model, suite: &TaskSuite, max_new: usize) -> Vec<Vec<u32>> {
    suite
        .tasks
        .iter()
        .map(|t| model.generate_greedy(&t.tokens, max_new, sparseinfer_model::tokenizer::EOS))
        .collect()
}

/// Evaluates a candidate decoding function against precomputed gold
/// continuations. The candidate is any closure mapping a prompt to a
/// generated continuation (dense engine, SparseInfer at some alpha,
/// PowerInfer-style, random baseline, ...).
///
/// # Panics
///
/// Panics if `gold.len() != suite.len()`.
pub fn evaluate_against_gold(
    suite: &TaskSuite,
    gold: &[Vec<u32>],
    mut candidate: impl FnMut(&[u32]) -> Vec<u32>,
) -> AccuracyReport {
    assert_eq!(gold.len(), suite.len(), "gold/suite length mismatch");
    let outcomes = suite
        .tasks
        .iter()
        .zip(gold)
        .map(|(task, gold_tokens)| {
            let generated = candidate(&task.tokens);
            TaskOutcome {
                id: task.id.clone(),
                exact: &generated == gold_tokens,
                overlap: token_overlap(gold_tokens, &generated),
            }
        })
        .collect();
    AccuracyReport { outcomes }
}

/// Evaluates an [`Engine`] against precomputed gold continuations: each
/// task prompt is decoded greedily through the request layer with `eos` as
/// the stop token and `max_new` as the budget. The request pins the greedy
/// sampler explicitly, so an engine whose default sampler is stochastic is
/// still scored on its argmax decode (gold continuations are greedy).
///
/// # Panics
///
/// Panics if `gold.len() != suite.len()` or a task prompt is empty.
pub fn evaluate_engine(
    engine: &mut dyn Engine,
    suite: &TaskSuite,
    gold: &[Vec<u32>],
    max_new: usize,
    eos: u32,
) -> AccuracyReport {
    evaluate_against_gold(suite, gold, |prompt| {
        generate(
            engine,
            &GenerateRequest::new(prompt)
                .max_new(max_new)
                .stop_at(eos)
                .sampler(sparseinfer_model::Sampler::greedy()),
        )
        .expect("task prompts are non-empty")
        .tokens
    })
}

/// Position-wise overlap of `candidate` with `gold`, normalized by the gold
/// length. Empty gold counts as full overlap only if the candidate is empty
/// too.
pub fn token_overlap(gold: &[u32], candidate: &[u32]) -> f64 {
    if gold.is_empty() {
        return if candidate.is_empty() { 1.0 } else { 0.0 };
    }
    let matches = gold.iter().zip(candidate).filter(|(g, c)| g == c).count();
    matches as f64 / gold.len() as f64
}

/// Teacher-forced evaluation: the candidate stepper is fed the *gold* token
/// stream and judged on whether its argmax at each position reproduces the
/// gold token.
///
/// Free-running comparison compounds a single flipped token into total
/// divergence, which is far harsher than what happens on a real LLM (whose
/// decoding is robust to small logit perturbations). Teacher forcing
/// measures the per-position flip probability caused by mispredicted skips —
/// the actual degradation mechanism the paper's alpha knob controls — while
/// keeping the comparison well-defined on a synthetic model.
///
/// The stepper receives `(token, position_logits_requested)` pairs via a
/// closure `step(token) -> Vector` that advances the candidate engine one
/// token and returns its logits.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn teacher_forced_matches(
    prompt: &[u32],
    gold: &[u32],
    mut step: impl FnMut(u32) -> sparseinfer_tensor::Vector,
) -> Vec<bool> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    // Feed the prompt; logits after its last token predict gold[0].
    let mut logits = sparseinfer_tensor::Vector::zeros(0);
    for t in prompt {
        logits = step(*t);
    }
    let mut out = Vec::with_capacity(gold.len());
    for g in gold {
        let predicted = logits.argmax().expect("nonzero vocab") as u32;
        out.push(predicted == *g);
        logits = step(*g); // force the gold token regardless of prediction
    }
    out
}

/// Teacher-forced scoring of an [`Engine`]: the prompt is prefilled
/// *densely* up to its last token (the paper exploits sparsity only in
/// decode), the last prompt token and every gold token go through the
/// engine, and each position is scored by whether the engine's argmax
/// reproduces the gold token.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn teacher_forced_engine_matches(
    engine: &mut dyn Engine,
    prompt: &[u32],
    gold: &[u32],
) -> Vec<bool> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let mut session = engine
        .model()
        .start_session_with_capacity(prompt.len() + gold.len());
    for t in &prompt[..prompt.len() - 1] {
        let _ = engine.model().forward_token(*t, &mut session);
    }
    // One recycled logits buffer for the whole teacher-forced pass.
    let mut logits = sparseinfer_tensor::Vector::zeros(0);
    engine.step_into(prompt[prompt.len() - 1], &mut session, &mut logits);
    let mut out = Vec::with_capacity(gold.len());
    for g in gold {
        let predicted = logits.argmax().expect("nonzero vocab") as u32;
        out.push(predicted == *g);
        engine.step_into(*g, &mut session, &mut logits);
    }
    out
}

/// Runs [`teacher_forced_matches`] over a whole suite, producing an
/// [`AccuracyReport`] whose `overlap` is the per-task match rate and whose
/// `exact` flags full-sequence agreement.
///
/// # Panics
///
/// Panics if `gold.len() != suite.len()`.
pub fn evaluate_teacher_forced(
    suite: &TaskSuite,
    gold: &[Vec<u32>],
    mut make_stepper: impl FnMut() -> Box<dyn FnMut(u32) -> sparseinfer_tensor::Vector>,
) -> AccuracyReport {
    assert_eq!(gold.len(), suite.len(), "gold/suite length mismatch");
    let outcomes = suite
        .tasks
        .iter()
        .zip(gold)
        .map(|(task, gold_tokens)| {
            let mut step = make_stepper();
            let matches = teacher_forced_matches(&task.tokens, gold_tokens, &mut step);
            let hit = matches.iter().filter(|m| **m).count();
            TaskOutcome {
                id: task.id.clone(),
                exact: hit == matches.len(),
                overlap: if matches.is_empty() {
                    1.0
                } else {
                    hit as f64 / matches.len() as f64
                },
            }
        })
        .collect();
    AccuracyReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_sparse::engine::EngineBuilder;

    fn small_suite() -> TaskSuite {
        TaskSuite::gsm8k_syn(4, 9)
    }

    fn sim_model() -> Model {
        // Tiny has vocab 64 < 259 needed by the byte tokenizer, so tests use
        // a slightly larger config.
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 300;
        WeightGenerator::new(&cfg, 55).build()
    }

    #[test]
    fn token_overlap_basics() {
        assert_eq!(token_overlap(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(token_overlap(&[1, 2, 3], &[1, 9, 3]), 2.0 / 3.0);
        assert_eq!(token_overlap(&[1, 2, 3], &[]), 0.0);
        assert_eq!(token_overlap(&[], &[]), 1.0);
        assert_eq!(token_overlap(&[], &[1]), 0.0);
    }

    #[test]
    fn dense_candidate_scores_perfectly() {
        let model = sim_model();
        let suite = small_suite();
        let gold = gold_continuations(&model, &suite, 8);
        let report = evaluate_against_gold(&suite, &gold, |prompt| {
            model.generate_greedy(prompt, 8, sparseinfer_model::tokenizer::EOS)
        });
        assert_eq!(report.exact_rate(), 1.0);
        assert_eq!(report.mean_overlap(), 1.0);
        assert_eq!(report.scaled_score(30.71), 30.71);
    }

    #[test]
    fn oracle_sparse_candidate_scores_perfectly() {
        let model = sim_model();
        let suite = small_suite();
        let gold = gold_continuations(&model, &suite, 8);
        let mut engine = EngineBuilder::new(&model).oracle().build().unwrap();
        let report = evaluate_engine(
            engine.as_mut(),
            &suite,
            &gold,
            8,
            sparseinfer_model::tokenizer::EOS,
        );
        assert_eq!(report.exact_rate(), 1.0, "oracle masking must be lossless");
    }

    #[test]
    fn random_ninety_percent_skipping_scores_near_zero() {
        // Paper §V-C: random selection at 90% sparsity → 0% accuracy.
        let model = sim_model();
        let suite = small_suite();
        let gold = gold_continuations(&model, &suite, 8);
        let mut engine = EngineBuilder::new(&model).random(0.9, 3).build().unwrap();
        let report = evaluate_engine(
            engine.as_mut(),
            &suite,
            &gold,
            8,
            sparseinfer_model::tokenizer::EOS,
        );
        assert_eq!(report.exact_rate(), 0.0);
        assert!(
            report.mean_overlap() < 0.5,
            "overlap {}",
            report.mean_overlap()
        );
        assert_eq!(report.scaled_score(30.71), 0.0);
    }

    #[test]
    fn teacher_forced_engine_agrees_with_closure_protocol() {
        let model = sim_model();
        let prompt = [1u32, 2, 3];
        let gold = model.generate_greedy(&prompt, 6, u32::MAX);
        let mut engine = EngineBuilder::new(&model).build().unwrap();
        let matches = teacher_forced_engine_matches(engine.as_mut(), &prompt, &gold);
        assert_eq!(matches.len(), gold.len());
        assert!(
            matches.iter().all(|m| *m),
            "dense engine vs dense gold must agree"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_gold_panics() {
        let suite = small_suite();
        let _ = evaluate_against_gold(&suite, &[], |_| vec![]);
    }

    #[test]
    fn teacher_forcing_dense_model_matches_itself_exactly() {
        let model = sim_model();
        let prompt = [1u32, 2, 3];
        let gold = model.generate_greedy(&prompt, 6, u32::MAX);
        let mut session = model.start_session();
        let matches =
            teacher_forced_matches(&prompt, &gold, |t| model.forward_token(t, &mut session));
        assert_eq!(matches.len(), gold.len());
        assert!(
            matches.iter().all(|m| *m),
            "dense vs itself must agree everywhere"
        );
    }

    #[test]
    fn teacher_forcing_counts_flips_without_cascade() {
        // A candidate that parrots a constant token matches gold exactly at
        // the positions where gold happens to be that token — teacher
        // forcing localizes errors instead of cascading them.
        let model = sim_model();
        let prompt = [4u32, 5];
        let gold = model.generate_greedy(&prompt, 6, u32::MAX);
        // Build a stepper that always predicts token `gold[1]`.
        let constant = gold[1];
        let vocab = model.config().vocab_size;
        let matches = teacher_forced_matches(&prompt, &gold, |_t| {
            let mut v = sparseinfer_tensor::Vector::zeros(vocab);
            v[constant as usize] = 1.0;
            v
        });
        let expected: Vec<bool> = gold.iter().map(|g| *g == constant).collect();
        assert_eq!(matches, expected);
    }

    #[test]
    fn evaluate_teacher_forced_aggregates_per_task() {
        let model = sim_model();
        let suite = TaskSuite::gsm8k_syn(2, 11);
        let gold = gold_continuations(&model, &suite, 5);
        let model_ref = &model;
        let report = evaluate_teacher_forced(&suite, &gold, || {
            let mut session = model_ref.start_session();
            let m = model_ref.clone();
            Box::new(move |t| m.forward_token(t, &mut session))
        });
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.exact_rate(), 1.0);
        assert_eq!(report.mean_overlap(), 1.0);
    }

    #[test]
    #[should_panic(expected = "prompt must be non-empty")]
    fn teacher_forcing_rejects_empty_prompt() {
        let _ = teacher_forced_matches(&[], &[1], |_| sparseinfer_tensor::Vector::zeros(4));
    }
}
