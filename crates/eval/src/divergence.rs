//! Logit-level divergence between dense and sparse execution.
//!
//! Token-match metrics are end-to-end but coarse; these logit metrics show
//! *how much* the mispredicted skips perturb the model before any argmax
//! snaps the error to a token flip. Used by the alpha-sweep analyses and the
//! DSE example.

use sparseinfer_tensor::Vector;

/// Divergence statistics between two logit vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogitDivergence {
    /// Cosine similarity of the raw logits.
    pub cosine: f64,
    /// L2 distance of the raw logits.
    pub l2: f64,
    /// KL divergence `KL(dense ‖ sparse)` of the softmax distributions.
    pub kl: f64,
    /// Whether the argmax token agrees.
    pub argmax_match: bool,
}

/// Computes divergence between a reference (dense) and candidate (sparse)
/// logit vector.
///
/// # Panics
///
/// Panics if the vectors differ in length or are empty.
pub fn logit_divergence(dense: &Vector, sparse: &Vector) -> LogitDivergence {
    assert_eq!(dense.len(), sparse.len(), "logit length mismatch");
    assert!(!dense.is_empty(), "empty logits");

    let dot = dense.dot(sparse).expect("equal lengths") as f64;
    let cosine = dot / (dense.norm() as f64 * sparse.norm() as f64).max(1e-30);
    let l2 = dense
        .iter()
        .zip(sparse.iter())
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        .sqrt();

    let p = softmax(dense);
    let q = softmax(sparse);
    let kl = p
        .iter()
        .zip(&q)
        .map(|(pi, qi)| {
            if *pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi.max(1e-12)).ln()
            }
        })
        .sum::<f64>();

    LogitDivergence {
        cosine,
        l2,
        kl,
        argmax_match: dense.argmax() == sparse.argmax(),
    }
}

fn softmax(v: &Vector) -> Vec<f64> {
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let exps: Vec<f64> = v.iter().map(|x| ((*x as f64) - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Running mean of divergences over a decode stream.
#[derive(Debug, Clone, Default)]
pub struct DivergenceAccumulator {
    count: u64,
    cosine_sum: f64,
    l2_sum: f64,
    kl_sum: f64,
    argmax_matches: u64,
}

impl DivergenceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one comparison.
    pub fn push(&mut self, d: &LogitDivergence) {
        self.count += 1;
        self.cosine_sum += d.cosine;
        self.l2_sum += d.l2;
        self.kl_sum += d.kl;
        if d.argmax_match {
            self.argmax_matches += 1;
        }
    }

    /// Number of comparisons recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean cosine similarity.
    pub fn mean_cosine(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.cosine_sum / self.count as f64
        }
    }

    /// Mean KL divergence.
    pub fn mean_kl(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.kl_sum / self.count as f64
        }
    }

    /// Fraction of positions whose argmax token agreed.
    pub fn argmax_match_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.argmax_matches as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_logits_have_zero_divergence() {
        let v = Vector::from_vec(vec![1.0, -2.0, 0.5, 3.0]);
        let d = logit_divergence(&v, &v);
        // dot/norm run in f32; only f32-level agreement is guaranteed.
        assert!((d.cosine - 1.0).abs() < 1e-5);
        assert!(d.l2 < 1e-6);
        assert!(d.kl.abs() < 1e-9);
        assert!(d.argmax_match);
    }

    #[test]
    fn perturbation_increases_all_metrics() {
        let a = Vector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let mut small = a.clone();
        small[0] += 0.1;
        let mut large = a.clone();
        large[0] += 3.0;
        large[3] -= 3.0;
        let ds = logit_divergence(&a, &small);
        let dl = logit_divergence(&a, &large);
        assert!(dl.l2 > ds.l2);
        assert!(dl.kl > ds.kl);
        assert!(dl.cosine < ds.cosine);
        assert!(ds.argmax_match);
        assert!(!dl.argmax_match);
    }

    #[test]
    fn accumulator_averages() {
        let a = Vector::from_vec(vec![1.0, 0.0]);
        let b = Vector::from_vec(vec![0.9, 0.1]);
        let mut acc = DivergenceAccumulator::new();
        acc.push(&logit_divergence(&a, &a));
        acc.push(&logit_divergence(&a, &b));
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.argmax_match_rate(), 1.0);
        assert!(acc.mean_cosine() > 0.99);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_logits_panic() {
        let _ = logit_divergence(&Vector::zeros(2), &Vector::zeros(3));
    }
}
