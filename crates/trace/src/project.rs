//! Capacity planning: replays a *measured* trace through the
//! [`gpu_sim`](sparseinfer::gpu_sim) roofline model to project what the
//! same load would cost on a real device.
//!
//! The CPU replay supplies the schedule — which requests were resident on
//! which ticks, how much prefill each skipped, how many tokens each
//! emitted — all deterministic tick-stamp facts. The projection supplies
//! the per-token prices on the target [`GpuSpec`]. Each request's total
//! cost (un-skipped prefill tokens at the prefill price plus emitted
//! tokens at the decode price) is spread uniformly over its measured
//! residency `[admitted_tick, finished_tick]`; summing the per-tick loads
//! and prefix-summing them turns the tick clock into a simulated wall
//! clock, from which projected TTFT percentiles and throughput fall out.
//!
//! This is a planning model, not a cycle simulator — but it preserves
//! exactly the *relative* orderings that matter for capacity questions
//! (sparse beats dense, a warm prefix cache beats a cold one, a wider
//! memory bus beats a narrower one), and those orderings are validated
//! against the measured CPU run in this crate's tests.

use sparseinfer::gpu_sim::latency::{
    dense_token_latency_at, sparseinfer_token_latency, MlpStepSparsity, SparseVariant,
};
use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::json::Json;
use sparseinfer::model::ModelConfig;

use crate::replay::{percentile_f, RequestRecord};

/// Per-token prices on a device, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price of one prefill token (prefill is dense either way; only the
    /// prefix cache changes how many of them a request pays for).
    pub prefill_us_per_token: f64,
    /// Price of one decode token.
    pub decode_us_per_token: f64,
}

impl CostModel {
    /// Dense (llama.cpp-baseline) prices at context length `ctx`.
    pub fn dense(spec: &GpuSpec, config: &ModelConfig, ctx: usize) -> Self {
        let dense = dense_token_latency_at(spec, config, ctx).total_us();
        Self {
            prefill_us_per_token: dense,
            decode_us_per_token: dense,
        }
    }

    /// SparseInfer prices: dense prefill, fused sign-bit sparse decode at
    /// a uniform per-layer `sparsity`.
    pub fn sparseinfer(spec: &GpuSpec, config: &ModelConfig, sparsity: f64, ctx: usize) -> Self {
        let per_layer = vec![MlpStepSparsity::uniform(sparsity); config.n_layers];
        let sparse =
            sparseinfer_token_latency(spec, config, &per_layer, SparseVariant::fused(), ctx)
                .total_us();
        Self {
            prefill_us_per_token: dense_token_latency_at(spec, config, ctx).total_us(),
            decode_us_per_token: sparse,
        }
    }
}

/// The projected cost of one measured trace on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// The device name, from [`GpuSpec::name`].
    pub gpu: String,
    /// Simulated wall clock for the whole trace, µs.
    pub total_us: f64,
    /// Projected TTFT percentiles `[p50, p95, p99]`, µs.
    pub ttft_us: [f64; 3],
    /// Tokens the trace emitted (from the measured records).
    pub tokens: usize,
    /// Projected mean decode cost, µs per emitted token.
    pub us_per_token: f64,
}

impl Projection {
    /// Encodes the projection as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("gpu".to_string(), Json::String(self.gpu.clone())),
            ("total_us".to_string(), Json::Number(self.total_us)),
            (
                "ttft_us".to_string(),
                Json::Object(vec![
                    ("p50".to_string(), Json::Number(self.ttft_us[0])),
                    ("p95".to_string(), Json::Number(self.ttft_us[1])),
                    ("p99".to_string(), Json::Number(self.ttft_us[2])),
                ]),
            ),
            ("tokens".to_string(), Json::Number(self.tokens as f64)),
            ("us_per_token".to_string(), Json::Number(self.us_per_token)),
        ])
    }
}

/// Projects a measured replay onto a device.
///
/// `spec` is validated first (so a hand-edited device spec fails loudly),
/// and `cost` carries the per-token prices — build it with
/// [`CostModel::dense`] or [`CostModel::sparseinfer`] against the *paper
/// scale* model configuration you are planning for, which need not be the
/// small CPU model that produced the records.
///
/// # Panics
///
/// Panics if `spec` fails [`GpuSpec::validate`].
pub fn project(records: &[RequestRecord], cost: &CostModel, spec: &GpuSpec) -> Projection {
    spec.validate().expect("valid GpuSpec");
    let horizon = records
        .iter()
        .map(|r| r.finished_tick as usize + 1)
        .max()
        .unwrap_or(0);

    // Spread each request's device cost uniformly over its measured
    // residency, then sum per tick: concurrent residents make a tick
    // proportionally more expensive, which is how queueing delay at high
    // offered load survives the translation onto the simulated clock.
    let mut tick_load_us = vec![0.0f64; horizon];
    for r in records {
        let Some(admitted) = r.admitted_tick else {
            continue;
        };
        let prefilled = r.prompt_tokens.saturating_sub(r.prefill_skipped_tokens);
        let total = prefilled as f64 * cost.prefill_us_per_token
            + r.tokens.len() as f64 * cost.decode_us_per_token;
        let residency = (r.finished_tick - admitted + 1) as f64;
        let share = total / residency;
        for load in &mut tick_load_us[admitted as usize..=r.finished_tick as usize] {
            *load += share;
        }
    }

    // Simulated time at the *start* of each tick, plus the grand total.
    let mut at_start = vec![0.0f64; horizon + 1];
    for (t, load) in tick_load_us.iter().enumerate() {
        at_start[t + 1] = at_start[t] + load;
    }
    let total_us = at_start[horizon];

    let mut ttfts: Vec<f64> = records
        .iter()
        .filter_map(|r| {
            // First token lands at the end of its emission tick; waiting
            // starts when the request was submitted.
            let first = r.first_token_tick?;
            Some(at_start[first as usize + 1] - at_start[r.submitted_tick as usize])
        })
        .collect();
    ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite projection"));

    let tokens: usize = records.iter().map(|r| r.tokens.len()).sum();
    Projection {
        gpu: spec.name.clone(),
        total_us,
        ttft_us: [
            percentile_f(&ttfts, 0.50),
            percentile_f(&ttfts, 0.95),
            percentile_f(&ttfts, 0.99),
        ],
        tokens,
        us_per_token: if tokens == 0 {
            0.0
        } else {
            total_us / tokens as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer::sparse::request::FinishReason;

    #[allow(clippy::too_many_arguments)]
    fn record(
        id: usize,
        submitted: u64,
        admitted: u64,
        first: u64,
        finished: u64,
        prompt: usize,
        skipped: usize,
        tokens: usize,
    ) -> RequestRecord {
        RequestRecord {
            id,
            prompt_tokens: prompt,
            tokens: vec![1; tokens],
            finish: FinishReason::MaxTokens,
            submitted_tick: submitted,
            admitted_tick: Some(admitted),
            first_token_tick: Some(first),
            finished_tick: finished,
            queue_wait_ticks: Some(admitted - submitted),
            prefill_skipped_tokens: skipped,
            preemptions: 0,
            macs: 0,
            ttft_us: Some(1.0),
        }
    }

    fn paper_scale() -> (GpuSpec, ModelConfig) {
        (GpuSpec::jetson_orin_agx_64gb(), ModelConfig::sim_7b())
    }

    #[test]
    fn queueing_shows_up_in_projected_ttft() {
        let (spec, config) = paper_scale();
        let cost = CostModel::dense(&spec, &config, 128);
        // Two identical requests; the second waits 4 ticks in queue.
        let first = record(0, 0, 0, 0, 3, 8, 0, 4);
        let queued = record(1, 0, 4, 4, 7, 8, 0, 4);
        let solo = project(std::slice::from_ref(&first), &cost, &spec);
        let both = project(&[first, queued], &cost, &spec);
        // The queued request's TTFT includes everything the first one
        // burned before it started.
        assert!(
            both.ttft_us[1] > solo.ttft_us[0] * 2.0,
            "queued {:?} vs solo {:?}",
            both.ttft_us,
            solo.ttft_us
        );
        assert!(both.total_us > solo.total_us);
    }

    #[test]
    fn skipped_prefill_is_cheaper() {
        let (spec, config) = paper_scale();
        let cost = CostModel::dense(&spec, &config, 128);
        let cold = vec![record(0, 0, 0, 0, 3, 64, 0, 4)];
        let warm = vec![record(0, 0, 0, 0, 3, 64, 48, 4)];
        let cold_p = project(&cold, &cost, &spec);
        let warm_p = project(&warm, &cost, &spec);
        assert!(warm_p.total_us < cold_p.total_us);
        assert!(warm_p.ttft_us[0] < cold_p.ttft_us[0]);
    }

    #[test]
    fn sparse_decode_is_cheaper_than_dense_on_the_same_trace() {
        let (spec, config) = paper_scale();
        let trace = vec![record(0, 0, 0, 0, 9, 4, 0, 32)];
        let dense = project(&trace, &CostModel::dense(&spec, &config, 256), &spec);
        let sparse = project(
            &trace,
            &CostModel::sparseinfer(&spec, &config, 0.9, 256),
            &spec,
        );
        assert!(sparse.total_us < dense.total_us);
    }

    #[test]
    fn never_admitted_requests_cost_nothing() {
        let (spec, config) = paper_scale();
        let cost = CostModel::dense(&spec, &config, 128);
        let mut r = record(0, 0, 0, 0, 3, 8, 0, 4);
        r.admitted_tick = None;
        r.first_token_tick = None;
        r.tokens.clear();
        let p = project(&[r], &cost, &spec);
        assert_eq!(p.total_us, 0.0);
        assert_eq!(p.tokens, 0);
    }
}
