//! Trace-driven load harness and capacity planning for the SparseInfer
//! serving stack.
//!
//! Three pieces, composing front to back:
//!
//! 1. [`spec`] — a seeded [`TraceSpec`] describing a workload
//!    *population* (arrival process, prompt/output length mix,
//!    shared-prefix mix, priority mix, cancellation rate) that expands
//!    deterministically into a concrete [`Workload`]: the same seed
//!    always yields the same request sequence.
//! 2. [`replay`](mod@replay) — a driver that feeds a workload through
//!    the library's continuous-batching
//!    [`Scheduler`](sparseinfer::sparse::scheduler::Scheduler) and
//!    reports an [`SloReport`]: TTFT / inter-token latency percentiles
//!    and goodput (wall clock, host-dependent) next to queue-wait,
//!    preemption and KV-headroom numbers derived from the scheduler's
//!    deterministic tick stamps (identical on every host and at every
//!    slot-thread count).
//! 3. [`project`](mod@project) — replays the *measured* per-request
//!    residencies through the [`gpu_sim`](sparseinfer::gpu_sim)
//!    roofline model to project what the same trace would cost on a
//!    real device ([`GpuSpec`](sparseinfer::gpu_sim::GpuSpec)) — the
//!    capacity-planning half: would this offered load meet its SLO on
//!    a Jetson Orin?
//!
//! ```
//! use sparseinfer::model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer::sparse::engine::EngineBuilder;
//! use sparseinfer::sparse::scheduler::SchedulerConfig;
//! use sparseinfer_trace::replay::{replay, ReplayConfig};
//! use sparseinfer_trace::spec::TraceSpec;
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//! // Token ids must fit the serving model's vocabulary.
//! let workload = TraceSpec::steady(7).requests(6).vocab(64).generate();
//! let config = ReplayConfig {
//!     scheduler: SchedulerConfig::builder().max_slots(2).build().unwrap(),
//!     ..ReplayConfig::default()
//! };
//! let outcome = replay(&workload, &config, |_| {
//!     EngineBuilder::new(&model).build().unwrap()
//! });
//! assert_eq!(outcome.report.requests, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod project;
pub mod replay;
pub mod spec;

pub use project::{project, CostModel, Projection};
pub use replay::{replay, ReplayConfig, ReplayOutcome, RequestRecord, SloReport};
pub use spec::{
    ArrivalProcess, LengthMix, PrefixMix, PriorityMix, TraceRequest, TraceSpec, Workload,
};
