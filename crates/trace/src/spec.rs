//! Workload populations: a seeded [`TraceSpec`] that expands into a
//! concrete, deterministic [`Workload`].
//!
//! Determinism is the whole point: every random draw comes from the
//! workspace's own xoshiro [`Prng`], each concern (arrivals, lengths,
//! prefix assignment, priorities, cancellation) on its own
//! [`fork`](Prng::fork)ed stream, so changing one knob never shifts the
//! draws of another. The same `(spec, seed)` therefore always produces
//! the same request sequence — on any host, forever — which is what lets
//! the replay driver publish tick-level numbers a regression gate can
//! compare across machines.

use sparseinfer::sparse::request::Priority;
use sparseinfer::tensor::Prng;

/// When requests arrive, measured in scheduler ticks (the replay driver
/// submits every request whose arrival tick has been reached before each
/// [`tick`](sparseinfer::sparse::scheduler::Scheduler::tick)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson-like steady traffic: independent exponential inter-arrival
    /// gaps with the given mean. Offered load scales as `1 / mean`.
    Steady {
        /// Mean gap between consecutive arrivals, in ticks.
        mean_gap_ticks: f64,
    },
    /// Bursty traffic: arrivals land in groups of `burst_size` (the whole
    /// group on one tick), bursts separated by exponential gaps.
    Bursty {
        /// Requests per burst.
        burst_size: usize,
        /// Mean gap between consecutive burst starts, in ticks.
        mean_burst_gap_ticks: f64,
    },
    /// A steady background plus one flash crowd: `crowd_size` of the
    /// trace's requests all arrive on `crowd_at_tick`, every one of them
    /// carrying shared prefix 0 — the "everyone hits the same system
    /// prompt at once" stampede the prefix cache exists for.
    FlashCrowd {
        /// Mean inter-arrival gap of the background traffic, in ticks.
        background_gap_ticks: f64,
        /// The tick the crowd lands on.
        crowd_at_tick: u64,
        /// How many of the trace's requests belong to the crowd (clamped
        /// to the trace size).
        crowd_size: usize,
    },
}

/// Prompt and output length mix: a short/long bimodal prompt population
/// plus a uniform continuation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthMix {
    /// Inclusive token-count range of short prompts.
    pub short_prompt: (usize, usize),
    /// Inclusive token-count range of long prompts.
    pub long_prompt: (usize, usize),
    /// Fraction of requests drawing from the long range.
    pub long_fraction: f64,
    /// Inclusive range of `max_new` continuation budgets.
    pub max_new: (usize, usize),
}

impl Default for LengthMix {
    fn default() -> Self {
        Self {
            short_prompt: (2, 6),
            long_prompt: (12, 24),
            long_fraction: 0.25,
            max_new: (4, 16),
        }
    }
}

/// Shared-prefix population: a fraction of requests prepend one of a
/// small set of fixed system prompts, so a prefix-cache-enabled replay
/// has something to share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixMix {
    /// Number of distinct shared prefixes in the population.
    pub prefixes: usize,
    /// Token length of each shared prefix.
    pub prefix_tokens: usize,
    /// Fraction of requests that carry a shared prefix.
    pub shared_fraction: f64,
}

impl Default for PrefixMix {
    fn default() -> Self {
        Self {
            prefixes: 2,
            prefix_tokens: 16,
            shared_fraction: 0.5,
        }
    }
}

/// Priority class mix; the remainder after `high` and `batch` is
/// [`Priority::Normal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityMix {
    /// Fraction of [`Priority::High`] requests.
    pub high: f64,
    /// Fraction of [`Priority::Batch`] requests.
    pub batch: f64,
}

impl Default for PriorityMix {
    fn default() -> Self {
        Self {
            high: 0.1,
            batch: 0.2,
        }
    }
}

/// A seeded description of a workload population. Expand it with
/// [`generate`](TraceSpec::generate).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// RNG seed; the trace is a pure function of the spec including this.
    pub seed: u64,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Prompt/output length mix.
    pub lengths: LengthMix,
    /// Shared-prefix mix.
    pub prefixes: PrefixMix,
    /// Fraction of requests that cancel mid-stream (after a uniformly
    /// drawn 1..=3 emitted tokens).
    pub cancel_rate: f64,
    /// Priority class mix.
    pub priorities: PriorityMix,
    /// Exclusive upper bound on generated token ids (ids are drawn from
    /// `1..vocab`); keep it at or below the serving model's vocabulary.
    pub vocab: u32,
}

impl TraceSpec {
    /// Steady Poisson-like traffic with defaults for everything else.
    pub fn steady(seed: u64) -> Self {
        Self {
            seed,
            requests: 24,
            arrival: ArrivalProcess::Steady {
                mean_gap_ticks: 2.0,
            },
            lengths: LengthMix::default(),
            prefixes: PrefixMix::default(),
            cancel_rate: 0.1,
            priorities: PriorityMix::default(),
            vocab: 290,
        }
    }

    /// Bursty traffic: groups of 4 arriving together.
    pub fn bursty(seed: u64) -> Self {
        Self {
            arrival: ArrivalProcess::Bursty {
                burst_size: 4,
                mean_burst_gap_ticks: 8.0,
            },
            ..Self::steady(seed)
        }
    }

    /// Steady background plus a flash crowd of a third of the trace on
    /// one shared prefix.
    pub fn flash_crowd(seed: u64) -> Self {
        let base = Self::steady(seed);
        Self {
            arrival: ArrivalProcess::FlashCrowd {
                background_gap_ticks: 3.0,
                crowd_at_tick: 8,
                crowd_size: base.requests / 3,
            },
            ..base
        }
    }

    /// Sets the trace size (builder-style, for the presets).
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        if let ArrivalProcess::FlashCrowd { crowd_size, .. } = &mut self.arrival {
            *crowd_size = (*crowd_size).min(n);
        }
        self
    }

    /// Sets the token-id bound — match it to the serving model's
    /// vocabulary when the model is smaller than the default.
    pub fn vocab(mut self, vocab: u32) -> Self {
        self.vocab = vocab;
        self
    }

    /// Sets the mean arrival gap of a [`Steady`](ArrivalProcess::Steady)
    /// or [`Bursty`](ArrivalProcess::Bursty) process — the offered-load
    /// knob (smaller gap, higher load).
    pub fn mean_gap_ticks(mut self, gap: f64) -> Self {
        match &mut self.arrival {
            ArrivalProcess::Steady { mean_gap_ticks } => *mean_gap_ticks = gap,
            ArrivalProcess::Bursty {
                mean_burst_gap_ticks,
                ..
            } => *mean_burst_gap_ticks = gap,
            ArrivalProcess::FlashCrowd {
                background_gap_ticks,
                ..
            } => *background_gap_ticks = gap,
        }
        self
    }

    /// Expands the spec into its concrete request sequence.
    ///
    /// Requests come out sorted by arrival tick (ties in draw order), so
    /// the replay driver can submit them with a single cursor.
    pub fn generate(&self) -> Workload {
        let mut root = Prng::seed(self.seed);
        let mut arrivals_rng = root.fork(1);
        let mut lengths_rng = root.fork(2);
        let mut prefix_rng = root.fork(3);
        let mut priority_rng = root.fork(4);
        let mut cancel_rng = root.fork(5);
        let mut body_rng = root.fork(6);

        let (arrivals, crowd) = self.arrival_ticks(&mut arrivals_rng);

        let mut requests: Vec<TraceRequest> = Vec::with_capacity(self.requests);
        for (i, arrives_at_tick) in arrivals.into_iter().enumerate() {
            let in_crowd = crowd.contains(&i);
            let prefix_id = if in_crowd {
                // The stampede hammers one prefix by construction.
                Some(0)
            } else if self.prefixes.prefixes > 0 && prefix_rng.flip(self.prefixes.shared_fraction) {
                Some(prefix_rng.below(self.prefixes.prefixes))
            } else {
                // Burn the second draw anyway so the stream stays aligned
                // across flips — adding a prefix to one request must not
                // reshuffle every later request's assignment.
                let _ = prefix_rng.below(self.prefixes.prefixes.max(1));
                None
            };

            let long = lengths_rng.flip(self.lengths.long_fraction);
            let range = if long {
                self.lengths.long_prompt
            } else {
                self.lengths.short_prompt
            };
            let body_len = draw_range(&mut lengths_rng, range).max(1);
            let max_new = draw_range(&mut lengths_rng, self.lengths.max_new).max(1);

            let mut prompt = match prefix_id {
                Some(p) => self.prefix_tokens(p),
                None => Vec::new(),
            };
            prompt.extend(
                (0..body_len).map(|_| 1 + body_rng.below(self.vocab.max(2) as usize - 1) as u32),
            );

            let priority = if priority_rng.flip(self.priorities.high) {
                Priority::High
            } else if priority_rng.flip(self.priorities.batch) {
                Priority::Batch
            } else {
                Priority::Normal
            };

            let cancel_after_tokens = if cancel_rng.flip(self.cancel_rate) {
                Some(1 + cancel_rng.below(3))
            } else {
                // Keep the cancel stream aligned, as with prefixes above.
                let _ = cancel_rng.below(3);
                None
            };

            requests.push(TraceRequest {
                arrives_at_tick,
                prompt,
                max_new,
                priority,
                cancel_after_tokens,
                prefix_id,
            });
        }

        requests.sort_by_key(|r| r.arrives_at_tick);
        Workload { requests }
    }

    /// The fixed token body of shared prefix `p` — a pure function of the
    /// prefix id, not of the RNG, so two traces over the same population
    /// share bytes even across seeds.
    pub fn prefix_tokens(&self, p: usize) -> Vec<u32> {
        let vocab = self.vocab.max(2) as usize;
        (0..self.prefixes.prefix_tokens)
            .map(|i| (1 + (p * 37 + i * 5) % (vocab - 1)) as u32)
            .collect()
    }

    /// Arrival tick of every request, plus the index set of flash-crowd
    /// members (empty for the other processes).
    fn arrival_ticks(&self, rng: &mut Prng) -> (Vec<u64>, Vec<usize>) {
        let mut ticks = Vec::with_capacity(self.requests);
        match self.arrival {
            ArrivalProcess::Steady { mean_gap_ticks } => {
                let mut t = 0.0f64;
                for _ in 0..self.requests {
                    t += exponential(rng, mean_gap_ticks);
                    ticks.push(t as u64);
                }
                (ticks, Vec::new())
            }
            ArrivalProcess::Bursty {
                burst_size,
                mean_burst_gap_ticks,
            } => {
                let burst = burst_size.max(1);
                let mut t = 0.0f64;
                while ticks.len() < self.requests {
                    let at = t as u64;
                    for _ in 0..burst.min(self.requests - ticks.len()) {
                        ticks.push(at);
                    }
                    t += exponential(rng, mean_burst_gap_ticks);
                }
                (ticks, Vec::new())
            }
            ArrivalProcess::FlashCrowd {
                background_gap_ticks,
                crowd_at_tick,
                crowd_size,
            } => {
                let crowd_size = crowd_size.min(self.requests);
                let background = self.requests - crowd_size;
                let mut t = 0.0f64;
                for _ in 0..background {
                    t += exponential(rng, background_gap_ticks);
                    ticks.push(t as u64);
                }
                let crowd_start = ticks.len();
                ticks.extend(std::iter::repeat_n(crowd_at_tick, crowd_size));
                (ticks, (crowd_start..crowd_start + crowd_size).collect())
            }
        }
    }
}

/// One concrete request of a generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRequest {
    /// Scheduler tick on which the request arrives.
    pub arrives_at_tick: u64,
    /// The full prompt (shared prefix, if any, plus the unique body).
    pub prompt: Vec<u32>,
    /// Continuation budget.
    pub max_new: usize,
    /// Admission class.
    pub priority: Priority,
    /// Cancel after this many emitted tokens (`None`: runs to finish).
    pub cancel_after_tokens: Option<usize>,
    /// Which shared prefix the prompt starts with, if any.
    pub prefix_id: Option<usize>,
}

/// A generated trace: the request sequence in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The requests, sorted by [`arrives_at_tick`](TraceRequest::arrives_at_tick).
    pub requests: Vec<TraceRequest>,
}

impl Workload {
    /// Total prompt tokens across the trace.
    pub fn prompt_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.prompt.len()).sum()
    }

    /// Total continuation budget across the trace.
    pub fn max_new_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.max_new).sum()
    }
}

/// One exponential inter-arrival gap with the given mean (the gap process
/// of a Poisson arrival stream).
fn exponential(rng: &mut Prng, mean: f64) -> f64 {
    let mean = mean.max(f64::MIN_POSITIVE);
    -mean * (1.0 - rng.uniform()).ln()
}

/// Uniform draw from an inclusive range (degenerate ranges allowed).
fn draw_range(rng: &mut Prng, (lo, hi): (usize, usize)) -> usize {
    let (lo, hi) = (lo.min(hi), lo.max(hi));
    lo + rng.below(hi - lo + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_generates_the_identical_sequence() {
        for spec in [
            TraceSpec::steady(11),
            TraceSpec::bursty(11),
            TraceSpec::flash_crowd(11),
        ] {
            let a = spec.generate();
            let b = spec.generate();
            assert_eq!(a, b, "{:?}", spec.arrival);
            assert_eq!(a.requests.len(), spec.requests);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceSpec::steady(1).generate();
        let b = TraceSpec::steady(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_bursts_cluster() {
        let w = TraceSpec::bursty(5).generate();
        let ticks: Vec<u64> = w.requests.iter().map(|r| r.arrives_at_tick).collect();
        assert!(ticks.windows(2).all(|p| p[0] <= p[1]), "sorted arrivals");
        // With bursts of 4, at least one tick must carry 4 arrivals.
        assert!(
            ticks.windows(4).any(|p| p[0] == p[3]),
            "bursty arrivals must cluster: {ticks:?}"
        );
    }

    #[test]
    fn flash_crowd_lands_together_on_one_prefix() {
        let spec = TraceSpec::flash_crowd(9);
        let ArrivalProcess::FlashCrowd {
            crowd_at_tick,
            crowd_size,
            ..
        } = spec.arrival
        else {
            unreachable!()
        };
        let w = spec.generate();
        let crowd: Vec<_> = w
            .requests
            .iter()
            .filter(|r| r.arrives_at_tick == crowd_at_tick && r.prefix_id == Some(0))
            .collect();
        assert!(
            crowd.len() >= crowd_size,
            "crowd of {crowd_size} must land on tick {crowd_at_tick} with prefix 0"
        );
        let prefix = spec.prefix_tokens(0);
        for r in crowd.iter().take(crowd_size) {
            assert!(r.prompt.starts_with(&prefix));
        }
    }

    #[test]
    fn knobs_shape_the_population() {
        let mut spec = TraceSpec::steady(3).requests(200);
        spec.cancel_rate = 0.0;
        spec.priorities = PriorityMix {
            high: 0.0,
            batch: 0.0,
        };
        spec.prefixes.shared_fraction = 1.0;
        let w = spec.generate();
        assert!(w.requests.iter().all(|r| r.cancel_after_tokens.is_none()));
        assert!(w.requests.iter().all(|r| r.priority == Priority::Normal));
        assert!(w.requests.iter().all(|r| r.prefix_id.is_some()));
        assert!(w
            .requests
            .iter()
            .all(|r| r.prompt.len() > spec.prefixes.prefix_tokens));

        spec.prefixes.shared_fraction = 0.0;
        let w = spec.generate();
        assert!(w.requests.iter().all(|r| r.prefix_id.is_none()));
    }

    #[test]
    fn token_ids_stay_inside_the_vocabulary() {
        let spec = TraceSpec::flash_crowd(13).requests(64);
        let w = spec.generate();
        for r in &w.requests {
            assert!(!r.prompt.is_empty());
            assert!(r.max_new >= 1);
            assert!(r.prompt.iter().all(|&t| t >= 1 && t < spec.vocab));
        }
    }
}
