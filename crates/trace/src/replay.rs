//! The replay driver: feeds a generated [`Workload`] through the
//! library's continuous-batching [`Scheduler`] and reports SLO metrics.
//!
//! The report deliberately mixes two kinds of number and labels which is
//! which:
//!
//! - **Deterministic** quantities derived from the scheduler's tick
//!   stamps — queue waits, preemption/eviction counts, emitted token
//!   counts, peak KV blocks. These are a pure function of the trace and
//!   the scheduler configuration: identical on every host and at every
//!   slot-thread count, so a regression gate can compare them across
//!   machines.
//! - **Wall-clock** quantities — TTFT and inter-token-latency
//!   percentiles, throughput, goodput. These depend on the host (a
//!   1-core container time-slices concurrent slots rather than
//!   overlapping them) and are gated per-host only.

use std::time::Instant;

use sparseinfer::json::Json;
use sparseinfer::sparse::engine::Engine;
use sparseinfer::sparse::request::{FinishReason, GenerateRequest};
use sparseinfer::sparse::scheduler::{RequestHandle, Scheduler, SchedulerConfig, SchedulerStats};
use sparseinfer::tensor::ParallelOptions;

use crate::spec::Workload;

/// How to run a replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The scheduler under load.
    pub scheduler: SchedulerConfig,
    /// Slot threads ticking concurrently (1 = single-threaded). Token
    /// streams and every deterministic report field are identical at any
    /// value; only the wall-clock percentiles move.
    pub slot_threads: usize,
    /// The TTFT target the goodput figure counts against, in µs.
    pub ttft_slo_us: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            slot_threads: 1,
            ttft_slo_us: 50_000.0,
        }
    }
}

/// Everything measured about one request of a replay.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Scheduler request id (the submission index of the trace).
    pub id: usize,
    /// Prompt length, in tokens.
    pub prompt_tokens: usize,
    /// The generated tokens (bit-identical across slot-thread counts for
    /// a fixed trace — the determinism contract, testable here).
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Tick the request was submitted on.
    pub submitted_tick: u64,
    /// Tick of first admission into a slot; `None` if it never ran.
    pub admitted_tick: Option<u64>,
    /// Tick its first token was emitted on; `None` if it never emitted.
    pub first_token_tick: Option<u64>,
    /// Tick it retired on.
    pub finished_tick: u64,
    /// Queue wait in ticks (`admitted - submitted`); `None` if never
    /// admitted. Deterministic.
    pub queue_wait_ticks: Option<u64>,
    /// Prompt positions served from the prefix cache instead of prefill.
    pub prefill_skipped_tokens: usize,
    /// Times the request was preempted.
    pub preemptions: usize,
    /// MACs the request executed (decode path; deterministic).
    pub macs: u64,
    /// Wall-clock time from submission to first token, µs.
    pub ttft_us: Option<f64>,
}

/// The SLO report of one replay.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests that ran to a natural finish (`MaxTokens` / `Stop`).
    pub completed: usize,
    /// Requests cancelled mid-stream (the trace's cancellation knob).
    pub cancelled: usize,
    /// Tokens emitted across the replay. Deterministic.
    pub tokens: usize,
    /// Wall-clock duration of the replay, µs.
    pub total_us: f64,
    /// Emitted tokens per second of wall clock.
    pub tokens_per_s: f64,
    /// TTFT percentiles `[p50, p95, p99]`, µs (wall clock).
    pub ttft_us: [f64; 3],
    /// Inter-token-latency percentiles `[p50, p95, p99]`, µs (wall clock).
    pub itl_us: [f64; 3],
    /// Queue-wait percentiles `[p50, p95, p99]` in ticks. Deterministic.
    pub queue_wait_ticks: [u64; 3],
    /// Worst queue wait in ticks. Deterministic.
    pub queue_wait_max_ticks: u64,
    /// Fraction of admitted requests whose TTFT met
    /// [`ttft_slo_us`](ReplayConfig::ttft_slo_us).
    pub slo_attainment: f64,
    /// Requests per second that met the TTFT SLO — the goodput figure.
    pub goodput_rps: f64,
    /// Peak KV blocks allocated at any tick boundary. Deterministic.
    pub peak_kv_blocks: usize,
    /// Peak KV bytes allocated at any tick boundary.
    pub peak_kv_bytes: u64,
    /// `kv_block_budget - peak_kv_blocks`; `None` when the budget is
    /// unbounded. Deterministic — the capacity-planning headroom.
    pub kv_headroom_blocks: Option<usize>,
    /// The headroom in bytes; `None` when unbounded.
    pub kv_headroom_bytes: Option<u64>,
    /// The scheduler's final stats snapshot (preemption, prefix-cache and
    /// speculative aggregates included).
    pub scheduler: SchedulerStats,
}

impl SloReport {
    /// Encodes the report, with the scheduler section going through the
    /// workspace's single stats serializer
    /// ([`sparseinfer::stats::scheduler_stats_json`]) — the same schema
    /// the HTTP `/stats` endpoint serves.
    pub fn to_json(&self) -> Json {
        fn num_u(n: u64) -> Json {
            Json::Number(n as f64)
        }
        fn num_f(n: f64) -> Json {
            Json::Number(n)
        }
        fn percentiles_f(v: &[f64; 3]) -> Json {
            Json::Object(vec![
                ("p50".to_string(), num_f(v[0])),
                ("p95".to_string(), num_f(v[1])),
                ("p99".to_string(), num_f(v[2])),
            ])
        }
        let queue = vec![
            ("p50".to_string(), num_u(self.queue_wait_ticks[0])),
            ("p95".to_string(), num_u(self.queue_wait_ticks[1])),
            ("p99".to_string(), num_u(self.queue_wait_ticks[2])),
            ("max".to_string(), num_u(self.queue_wait_max_ticks)),
        ];
        let mut kv = vec![
            ("peak_blocks".to_string(), num_u(self.peak_kv_blocks as u64)),
            ("peak_bytes".to_string(), num_u(self.peak_kv_bytes)),
        ];
        if let Some(blocks) = self.kv_headroom_blocks {
            kv.push(("headroom_blocks".to_string(), num_u(blocks as u64)));
        }
        if let Some(bytes) = self.kv_headroom_bytes {
            kv.push(("headroom_bytes".to_string(), num_u(bytes)));
        }
        Json::Object(vec![
            (
                "harness".to_string(),
                Json::Object(vec![
                    ("requests".to_string(), num_u(self.requests as u64)),
                    ("completed".to_string(), num_u(self.completed as u64)),
                    ("cancelled".to_string(), num_u(self.cancelled as u64)),
                    ("tokens".to_string(), num_u(self.tokens as u64)),
                    ("total_us".to_string(), num_f(self.total_us)),
                    ("tokens_per_s".to_string(), num_f(self.tokens_per_s)),
                ]),
            ),
            ("ttft_us".to_string(), percentiles_f(&self.ttft_us)),
            ("itl_us".to_string(), percentiles_f(&self.itl_us)),
            ("queue_wait_ticks".to_string(), Json::Object(queue)),
            (
                "slo".to_string(),
                Json::Object(vec![
                    ("attainment".to_string(), num_f(self.slo_attainment)),
                    ("goodput_rps".to_string(), num_f(self.goodput_rps)),
                ]),
            ),
            ("kv".to_string(), Json::Object(kv)),
            (
                "scheduler_stats".to_string(),
                sparseinfer::stats::scheduler_stats_json(&self.scheduler),
            ),
        ])
    }
}

/// A replay's full result: the per-request records (for projection and
/// determinism checks) plus the aggregated report.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-request measurements, ordered by request id.
    pub records: Vec<RequestRecord>,
    /// The aggregated SLO report.
    pub report: SloReport,
}

/// Replays a workload through a fresh [`Scheduler`], building each
/// request's engine with `engine_for(request index)`.
///
/// The driver advances one scheduler tick per loop iteration: it submits
/// every request whose arrival tick has been reached, ticks, applies the
/// trace's mid-stream cancellations, and samples the KV pool at the tick
/// boundary. It runs until the trace is fully submitted and drained.
pub fn replay<'m, F>(workload: &Workload, config: &ReplayConfig, mut engine_for: F) -> ReplayOutcome
where
    F: FnMut(usize) -> Box<dyn Engine + 'm>,
{
    let mut scheduler = Scheduler::new(config.scheduler);
    if config.slot_threads > 1 {
        scheduler = scheduler.parallel(ParallelOptions::threads(config.slot_threads));
    }
    let n = workload.requests.len();
    let start = Instant::now();
    let now_us = |start: &Instant| start.elapsed().as_secs_f64() * 1e6;

    let mut handles: Vec<Option<RequestHandle>> = (0..n).map(|_| None).collect();
    // Scheduler ids are assigned per *accepted* submission; a rejected
    // submit allocates no id, so the id → trace-index mapping is explicit.
    let mut trace_index_of_id: Vec<usize> = Vec::with_capacity(n);
    let mut submitted_at_us = vec![0.0f64; n];
    let mut emitted = vec![0usize; n];
    let mut first_token_tick: Vec<Option<u64>> = vec![None; n];
    let mut ttft_us: Vec<Option<f64>> = vec![None; n];
    let mut last_us: Vec<Option<f64>> = vec![None; n];
    let mut gaps: Vec<f64> = Vec::new();

    let mut peak_kv_blocks = 0usize;
    let mut peak_kv_bytes = 0u64;
    let mut block_bytes = 0u64;

    let mut next = 0usize;
    let mut tick: u64 = 0;
    loop {
        while next < n && workload.requests[next].arrives_at_tick <= tick {
            let r = &workload.requests[next];
            let request = GenerateRequest::new(&r.prompt)
                .max_new(r.max_new)
                .priority(r.priority);
            submitted_at_us[next] = now_us(&start);
            // A rejected submit (e.g. a prompt that could never fit the
            // whole KV budget) produces no record; everything accepted
            // does, whatever its finish reason.
            if let Ok(handle) = scheduler.submit(engine_for(next), &request) {
                handles[next] = Some(handle);
                trace_index_of_id.push(next);
            }
            next += 1;
        }
        let unfinished = scheduler.tick(|ev| {
            let now = now_us(&start);
            let i = trace_index_of_id[ev.request];
            match last_us[i] {
                None => {
                    ttft_us[i] = Some(now - submitted_at_us[i]);
                    first_token_tick[i] = Some(tick);
                }
                Some(prev) => gaps.push(now - prev),
            }
            last_us[i] = Some(now);
            emitted[i] += 1;
        });
        for (i, r) in workload.requests.iter().enumerate() {
            if let (Some(cancel_at), Some(handle)) = (r.cancel_after_tokens, handles[i].as_ref()) {
                if emitted[i] >= cancel_at {
                    handle.cancel();
                }
            }
        }
        let pool = scheduler.kv_pool();
        let blocks = pool.blocks_in_use();
        let bytes = pool.in_use_bytes();
        if blocks > 0 {
            block_bytes = bytes / blocks as u64;
        }
        peak_kv_blocks = peak_kv_blocks.max(blocks);
        peak_kv_bytes = peak_kv_bytes.max(bytes);
        tick += 1;
        if unfinished == 0 && next == n {
            break;
        }
    }
    let total_us = now_us(&start);
    let stats = scheduler.stats();
    let mut outputs = scheduler.take_finished();
    outputs.sort_by_key(|o| o.id);

    let mut records: Vec<RequestRecord> = Vec::with_capacity(outputs.len());
    for o in outputs {
        let i = trace_index_of_id[o.id];
        let queue_wait_ticks = o.admitted_tick.map(|a| a - o.submitted_tick);
        records.push(RequestRecord {
            id: o.id,
            prompt_tokens: workload.requests[i].prompt.len(),
            tokens: o.tokens,
            finish: o.finish,
            submitted_tick: o.submitted_tick,
            admitted_tick: o.admitted_tick,
            first_token_tick: first_token_tick[i],
            finished_tick: o.finished_tick,
            queue_wait_ticks,
            prefill_skipped_tokens: o.prefill_skipped_tokens,
            preemptions: o.preemptions,
            macs: o.ops.macs,
            ttft_us: ttft_us[i],
        });
    }

    let report = aggregate(
        config,
        &records,
        &stats,
        total_us,
        gaps,
        peak_kv_blocks,
        peak_kv_bytes,
        block_bytes,
    );
    ReplayOutcome { records, report }
}

/// Folds the per-request records into the [`SloReport`].
#[allow(clippy::too_many_arguments)]
fn aggregate(
    config: &ReplayConfig,
    records: &[RequestRecord],
    stats: &SchedulerStats,
    total_us: f64,
    mut gaps: Vec<f64>,
    peak_kv_blocks: usize,
    peak_kv_bytes: u64,
    block_bytes: u64,
) -> SloReport {
    let completed = records
        .iter()
        .filter(|r| matches!(r.finish, FinishReason::MaxTokens | FinishReason::Stop(_)))
        .count();
    let cancelled = records
        .iter()
        .filter(|r| matches!(r.finish, FinishReason::Cancelled))
        .count();
    let tokens: usize = records.iter().map(|r| r.tokens.len()).sum();

    let mut ttfts: Vec<f64> = records.iter().filter_map(|r| r.ttft_us).collect();
    ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mut waits: Vec<u64> = records.iter().filter_map(|r| r.queue_wait_ticks).collect();
    waits.sort_unstable();

    let met_slo = records
        .iter()
        .filter_map(|r| r.ttft_us)
        .filter(|&t| t <= config.ttft_slo_us)
        .count();
    let total_s = (total_us / 1e6).max(f64::MIN_POSITIVE);

    let budget = config.scheduler.kv_block_budget;
    let kv_headroom_blocks = (budget != usize::MAX).then(|| budget.saturating_sub(peak_kv_blocks));
    let kv_headroom_bytes = kv_headroom_blocks.map(|b| b as u64 * block_bytes);

    SloReport {
        requests: records.len(),
        completed,
        cancelled,
        tokens,
        total_us,
        tokens_per_s: tokens as f64 / total_s,
        ttft_us: [
            percentile_f(&ttfts, 0.50),
            percentile_f(&ttfts, 0.95),
            percentile_f(&ttfts, 0.99),
        ],
        itl_us: [
            percentile_f(&gaps, 0.50),
            percentile_f(&gaps, 0.95),
            percentile_f(&gaps, 0.99),
        ],
        queue_wait_ticks: [
            percentile_u(&waits, 0.50),
            percentile_u(&waits, 0.95),
            percentile_u(&waits, 0.99),
        ],
        queue_wait_max_ticks: waits.last().copied().unwrap_or(0),
        slo_attainment: if ttfts.is_empty() {
            0.0
        } else {
            met_slo as f64 / ttfts.len() as f64
        },
        goodput_rps: met_slo as f64 / total_s,
        peak_kv_blocks,
        peak_kv_bytes,
        kv_headroom_blocks,
        kv_headroom_bytes,
        scheduler: stats.clone(),
    }
}

/// Nearest-rank percentile of an ascending slice (0 on empty input).
pub fn percentile_f(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// [`percentile_f`] over integer tick counts.
pub fn percentile_u(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TraceSpec;
    use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
    use sparseinfer::sparse::engine::EngineBuilder;

    fn tiny_model() -> Model {
        let mut cfg = ModelConfig::tiny();
        cfg.vocab_size = 300;
        WeightGenerator::new(&cfg, 7).build()
    }

    fn tight_config() -> ReplayConfig {
        ReplayConfig {
            scheduler: SchedulerConfig::builder()
                .max_slots(2)
                .block_tokens(8)
                .kv_block_budget(256)
                .build()
                .unwrap(),
            ..ReplayConfig::default()
        }
    }

    #[test]
    fn replay_drains_the_whole_trace_and_reports_it() {
        let model = tiny_model();
        let workload = TraceSpec::steady(21).requests(8).generate();
        let outcome = replay(&workload, &tight_config(), |_| {
            EngineBuilder::new(&model).build().unwrap()
        });
        let report = &outcome.report;
        assert_eq!(outcome.records.len(), 8);
        assert_eq!(report.requests, 8);
        assert_eq!(report.completed + report.cancelled, 8);
        assert!(report.tokens > 0);
        assert!(report.peak_kv_blocks > 0);
        assert_eq!(report.kv_headroom_blocks, Some(256 - report.peak_kv_blocks));
        assert_eq!(report.scheduler.retired, 8);
        // Every admitted request has consistent tick stamps.
        for r in &outcome.records {
            let admitted = r.admitted_tick.expect("budget fits all");
            assert!(admitted >= r.submitted_tick);
            assert!(r.finished_tick >= admitted);
            assert_eq!(r.queue_wait_ticks, Some(admitted - r.submitted_tick));
            if let Some(first) = r.first_token_tick {
                assert!(first >= admitted);
            }
        }
    }

    #[test]
    fn report_serializes_through_the_shared_stats_schema() {
        let model = tiny_model();
        let workload = TraceSpec::bursty(4).requests(6).generate();
        let outcome = replay(&workload, &tight_config(), |_| {
            EngineBuilder::new(&model).build().unwrap()
        });
        let doc = Json::parse(&outcome.report.to_json().to_json()).unwrap();
        let harness = doc.get("harness").unwrap();
        assert_eq!(harness.get("requests").and_then(Json::as_u64), Some(6));
        assert!(doc.get("ttft_us").unwrap().get("p95").is_some());
        assert!(doc.get("queue_wait_ticks").unwrap().get("max").is_some());
        assert!(doc.get("kv").unwrap().get("headroom_blocks").is_some());
        // The scheduler section is the workspace-wide schema — the same
        // one the HTTP /stats endpoint serves.
        let sched = doc.get("scheduler_stats").unwrap();
        assert_eq!(
            sched
                .get("scheduler")
                .and_then(|s| s.get("retired"))
                .and_then(Json::as_u64),
            Some(6)
        );
        assert!(sched.get("preemption").is_some());
    }
}
