//! Harness-level contracts: trace determinism across slot-thread counts,
//! and the gpu-sim projection agreeing with the measured CPU run on every
//! relative ordering it exists to predict.

use sparseinfer::gpu_sim::GpuSpec;
use sparseinfer::model::{generator::WeightGenerator, Model, ModelConfig};
use sparseinfer::predictor::AlphaSchedule;
use sparseinfer::sparse::engine::{Engine, EngineBuilder};
use sparseinfer::sparse::scheduler::SchedulerConfig;
use sparseinfer_trace::{replay, CostModel, ReplayConfig, ReplayOutcome, TraceSpec};

fn harness_model() -> Model {
    let mut cfg = ModelConfig::tiny();
    cfg.vocab_size = 300;
    WeightGenerator::new(&cfg, 77).build()
}

/// Dense/sparse engine mix, alternating per request — the shape real
/// mixed traffic has, and the harder case for the determinism contract.
fn mixed_engine<'m>(model: &'m Model, i: usize) -> Box<dyn Engine + 'm> {
    if i.is_multiple_of(2) {
        EngineBuilder::new(model)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap()
    } else {
        EngineBuilder::new(model).build().unwrap()
    }
}

fn contended_config(slot_threads: usize) -> ReplayConfig {
    ReplayConfig {
        scheduler: SchedulerConfig::builder()
            .max_slots(3)
            .block_tokens(8)
            .kv_block_budget(96)
            .preemption(true)
            .build()
            .unwrap(),
        slot_threads,
        ..ReplayConfig::default()
    }
}

/// The deterministic half of a replay, extracted for equality assertions.
#[derive(Debug, PartialEq)]
struct DeterministicView {
    tokens: Vec<Vec<u32>>,
    queue_waits: Vec<Option<u64>>,
    tick_stamps: Vec<(u64, Option<u64>, u64)>,
    macs: Vec<u64>,
    completed: usize,
    cancelled: usize,
    total_tokens: usize,
    queue_wait_ticks: [u64; 3],
    peak_kv_blocks: usize,
    preemptions: usize,
}

impl DeterministicView {
    fn of(outcome: &ReplayOutcome) -> Self {
        Self {
            tokens: outcome.records.iter().map(|r| r.tokens.clone()).collect(),
            queue_waits: outcome.records.iter().map(|r| r.queue_wait_ticks).collect(),
            tick_stamps: outcome
                .records
                .iter()
                .map(|r| (r.submitted_tick, r.admitted_tick, r.finished_tick))
                .collect(),
            macs: outcome.records.iter().map(|r| r.macs).collect(),
            completed: outcome.report.completed,
            cancelled: outcome.report.cancelled,
            total_tokens: outcome.report.tokens,
            queue_wait_ticks: outcome.report.queue_wait_ticks,
            peak_kv_blocks: outcome.report.peak_kv_blocks,
            preemptions: outcome.report.scheduler.preemption.preemptions,
        }
    }
}

/// Satellite contract: the same trace replayed at 1, 2 and 4 slot threads
/// is token-identical and identical in every deterministic SLO count —
/// only the wall-clock percentiles may move.
#[test]
fn replay_is_deterministic_across_slot_thread_counts() {
    let model = harness_model();
    for spec in [
        TraceSpec::steady(31).requests(12),
        TraceSpec::bursty(31).requests(12),
    ] {
        let workload = spec.generate();
        let reference = DeterministicView::of(&replay(&workload, &contended_config(1), |i| {
            mixed_engine(&model, i)
        }));
        assert!(reference.total_tokens > 0);
        for threads in [2usize, 4] {
            let outcome = replay(&workload, &contended_config(threads), |i| {
                mixed_engine(&model, i)
            });
            assert_eq!(
                DeterministicView::of(&outcome),
                reference,
                "threads={threads}: deterministic replay fields diverged"
            );
        }
    }
}

/// The same seed expands to the same workload; a different seed does not
/// (the spec-level half of the determinism satellite).
#[test]
fn trace_spec_expansion_is_seed_deterministic() {
    let spec = TraceSpec::flash_crowd(5).requests(20);
    assert_eq!(spec.generate(), spec.generate());
    assert_ne!(
        spec.generate(),
        TraceSpec::flash_crowd(6).requests(20).generate()
    );
}

/// Tentpole validation: the gpu-sim projection must order dense vs sparse
/// the same way the measured CPU run does (measured via deterministic MAC
/// counts — the CPU-side wall clock is too host-dependent to gate on).
#[test]
fn projection_orders_dense_vs_sparse_like_the_measured_run() {
    let model = harness_model();
    let workload = TraceSpec::steady(17).requests(10).generate();
    let config = contended_config(1);

    let dense_run = replay(&workload, &config, |_| {
        EngineBuilder::new(&model).build().unwrap()
    });
    let sparse_run = replay(&workload, &config, |_| {
        EngineBuilder::new(&model)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap()
    });

    // Measured: the sparse engines skipped real rows on the same trace.
    let macs = |o: &ReplayOutcome| o.records.iter().map(|r| r.macs).sum::<u64>();
    assert!(
        macs(&sparse_run) < macs(&dense_run),
        "sparse replay must execute fewer MACs than dense"
    );

    // Projected: the simulator agrees, on both device presets, at the
    // paper-scale model the planning question is actually about.
    let paper = ModelConfig::sim_7b();
    for spec in [
        GpuSpec::jetson_orin_agx_64gb(),
        GpuSpec::jetson_orin_nano_8gb(),
    ] {
        let dense = sparseinfer_trace::project(
            &dense_run.records,
            &CostModel::dense(&spec, &paper, 256),
            &spec,
        );
        let sparse = sparseinfer_trace::project(
            &dense_run.records,
            &CostModel::sparseinfer(&spec, &paper, 0.9, 256),
            &spec,
        );
        assert!(
            sparse.total_us < dense.total_us,
            "{}: projected sparse {} must beat dense {}",
            spec.name,
            sparse.total_us,
            dense.total_us
        );
        assert!(sparse.ttft_us[1] <= dense.ttft_us[1]);
    }
}

/// Tentpole validation, prefix-cache axis: warm beats cold in the
/// measured run (fewer prefilled tokens) and the projection orders the
/// two replays the same way.
#[test]
fn projection_orders_cold_vs_warm_prefix_like_the_measured_run() {
    let model = harness_model();
    let mut spec = TraceSpec::steady(23).requests(10).mean_gap_ticks(8.0);
    spec.cancel_rate = 0.0;
    spec.prefixes.shared_fraction = 1.0;
    spec.prefixes.prefixes = 1;
    let workload = spec.generate();

    let run = |prefix_cache: bool| {
        let config = ReplayConfig {
            scheduler: SchedulerConfig::builder()
                .max_slots(2)
                .block_tokens(8)
                .prefix_cache(prefix_cache)
                .build()
                .unwrap(),
            ..ReplayConfig::default()
        };
        replay(&workload, &config, |_| {
            EngineBuilder::new(&model).build().unwrap()
        })
    };
    let cold = run(false);
    let warm = run(true);

    // Measured: the warm run prefilled strictly fewer prompt positions.
    let prefilled = |o: &ReplayOutcome| {
        o.records
            .iter()
            .map(|r| r.prompt_tokens - r.prefill_skipped_tokens)
            .sum::<usize>()
    };
    assert_eq!(warm.report.scheduler.prefix.skipped_tokens as usize, {
        let skipped: usize = warm.records.iter().map(|r| r.prefill_skipped_tokens).sum();
        skipped
    });
    assert!(
        prefilled(&warm) < prefilled(&cold),
        "warm replay must skip prefill the cold one pays for"
    );
    // Tokens are unaffected by the cache — only the prefill work moved.
    let tokens = |o: &ReplayOutcome| {
        o.records
            .iter()
            .map(|r| r.tokens.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(tokens(&warm), tokens(&cold));

    // Projected: the simulator orders the two runs the same way.
    let gpu = GpuSpec::jetson_orin_agx_64gb();
    let cost = CostModel::dense(&gpu, &ModelConfig::sim_7b(), 256);
    let cold_p = sparseinfer_trace::project(&cold.records, &cost, &gpu);
    let warm_p = sparseinfer_trace::project(&warm.records, &cost, &gpu);
    assert!(
        warm_p.total_us < cold_p.total_us,
        "projected warm {} must beat cold {}",
        warm_p.total_us,
        cold_p.total_us
    );
}
