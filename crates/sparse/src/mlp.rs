//! The sparse gated-MLP executor (steps 1–4 of §III under a skip mask).
//!
//! Execution is *sequential* (gate before up), the variant the paper argues
//! for in §IV: it enables kernel fusion and — more importantly — lets the
//! exact zeros discovered after the gate GEMV ("actual sparsity") be unioned
//! into the mask used by the up and down projections, compensating rows the
//! conservative predictor kept alive unnecessarily.

use sparseinfer_model::GatedMlp;
use sparseinfer_predictor::SkipMask;
use sparseinfer_tensor::{ThreadPool, Vector, Workspace};

use crate::gemv::{
    sparse_down_proj_into, sparse_down_proj_q8_into, sparse_gemv_into, sparse_gemv_q8_into,
};
use crate::ops::OpCounter;
use crate::quantized::FusedQuantizedMlp;

/// Switches for the sparse MLP execution, matching the four SparseInfer
/// variants of the paper's Fig. 4 (`base`, `+KF`, `+AS`, `+KF+AS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpOptions {
    /// Fuse steps 1–3 into one "kernel": numerically identical, but X is
    /// loaded once and `h1`/`h2` never round-trip through memory (§IV-B4's
    /// traffic analysis). Affects only the byte accounting.
    pub kernel_fusion: bool,
    /// Union the exact zeros found after step 1 into the mask used by steps
    /// 2–4 (the paper's "actual sparsity").
    pub actual_sparsity: bool,
}

impl Default for MlpOptions {
    fn default() -> Self {
        Self {
            kernel_fusion: true,
            actual_sparsity: true,
        }
    }
}

/// Result of one sparse MLP execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMlpOutput {
    /// The block output (length `d`).
    pub output: Vector,
    /// Sparsity of the predicted mask that entered the block.
    pub predicted_sparsity: f64,
    /// Sparsity of the mask actually applied to steps 2–4 (≥ predicted when
    /// actual-sparsity compensation is on).
    pub effective_sparsity: f64,
}

/// Executes the gated MLP under `predicted`, reporting into `ops`.
///
/// Skipped gate rows produce `h1[r] = activation(0)`, which is zero for the
/// ReLU family — exactly the approximation the paper makes. (For SiLU/GELU
/// the function still zeroes the skipped rows; that *would* perturb the
/// result, which is why SparseInfer targets ReLU-fied models.)
///
/// # Panics
///
/// Panics if `x` or `predicted` disagree with the block's dimensions.
pub fn sparse_mlp_forward(
    mlp: &GatedMlp,
    x: &Vector,
    predicted: &SkipMask,
    options: MlpOptions,
    ops: &mut OpCounter,
) -> SparseMlpOutput {
    let mut ws = Workspace::new();
    let mut effective = SkipMask::all_dense(0);
    let mut output = Vector::zeros(0);
    let (predicted_sparsity, effective_sparsity) = sparse_mlp_forward_into(
        mlp,
        x,
        predicted,
        options,
        &ThreadPool::single(),
        &mut ws,
        &mut effective,
        ops,
        &mut output,
    );
    SparseMlpOutput {
        output,
        predicted_sparsity,
        effective_sparsity,
    }
}

/// Workspace variant of [`sparse_mlp_forward`] — the decode hot path.
///
/// All intermediates (`h1`, `h2`) come from `ws`, the applied mask is built
/// in place in `effective` (enter with any contents; leaves holding
/// `predicted ∪ actual`), the block output lands in `out`, and the three
/// GEMVs fan out across `pool`. After warm-up the call performs zero heap
/// allocations, and its output is bit-identical to the allocating wrapper
/// at every thread count (shared kernels, fixed reduction order).
///
/// Returns `(predicted_sparsity, effective_sparsity)`.
///
/// # Panics
///
/// Panics if `x` or `predicted` disagree with the block's dimensions.
#[allow(clippy::too_many_arguments)] // the hot path threads every resource explicitly
pub fn sparse_mlp_forward_into(
    mlp: &GatedMlp,
    x: &Vector,
    predicted: &SkipMask,
    options: MlpOptions,
    pool: &ThreadPool,
    ws: &mut Workspace,
    effective: &mut SkipMask,
    ops: &mut OpCounter,
    out: &mut Vector,
) -> (f64, f64) {
    assert_eq!(x.len(), mlp.hidden_dim(), "input length mismatch");
    assert_eq!(predicted.len(), mlp.mlp_dim(), "mask length mismatch");

    let d = mlp.hidden_dim() as u64;
    let k = mlp.mlp_dim() as u64;
    let predicted_sparsity = predicted.sparsity();

    // Step 1 (gate computation) under the predicted mask.
    let mut h1 = ws.take(mlp.mlp_dim());
    sparse_gemv_into(mlp.w_gate(), x, predicted, pool, ops, &mut h1);
    mlp.activation().apply_slice(h1.as_mut_slice());

    // Actual-sparsity compensation: exact zeros after the activation join
    // the mask for steps 2–4.
    effective.copy_from(predicted);
    if options.actual_sparsity {
        effective.union_exact_zeros(&h1);
    }
    let effective_sparsity = effective.sparsity();

    // Step 2 (input processing) and step 3 (gate application, in place:
    // h1 becomes h3 = h1 ⊙ h2).
    let mut h2 = ws.take(mlp.mlp_dim());
    sparse_gemv_into(mlp.w_up(), x, effective, pool, ops, &mut h2);
    for (a, b) in h1.as_mut_slice().iter_mut().zip(h2.as_slice()) {
        *a *= b;
    }

    // Step 4 (output generation) over the transposed down projection.
    sparse_down_proj_into(mlp.w_down_t(), &h1, effective, pool, ops, out);
    ws.give(h1);
    ws.give(h2);

    // Inter-kernel activation traffic (§IV-B4):
    //   fused:   load X once + write h3;      then step 4: read h3, write out.
    //   unfused: load X twice, h1 and h2 each store+load, h3 store;
    //            then step 4: read h3, write out.
    let elems = if options.kernel_fusion {
        2 * d + 2 * k
    } else {
        3 * d + 6 * k
    };
    ops.activation_bytes += elems * OpCounter::ACTIVATION_BYTES;

    (predicted_sparsity, effective_sparsity)
}

/// [`sparse_mlp_forward_into`] over block-quantized INT8 weights — the
/// serving hot path when the engine runs with `WeightFormat::Int8`.
///
/// Identical step structure (gate → activation → actual-sparsity union →
/// up → gate application → down projection), with each GEMV routed through
/// the fused block-dequant kernels. Because those kernels reduce in exactly
/// the order the f32 kernels would over the dequantized weights, this whole
/// forward is bit-identical to [`sparse_mlp_forward_into`] on
/// `mlp.dequantize()`d matrices — at every thread count. Quantization
/// perturbs values once, at weight-prep time, never the execution.
///
/// Returns `(predicted_sparsity, effective_sparsity)`.
///
/// # Panics
///
/// Panics if `x` or `predicted` disagree with the block's dimensions.
#[allow(clippy::too_many_arguments)] // the hot path threads every resource explicitly
pub fn sparse_mlp_q8_forward_into(
    mlp: &FusedQuantizedMlp,
    x: &Vector,
    predicted: &SkipMask,
    options: MlpOptions,
    pool: &ThreadPool,
    ws: &mut Workspace,
    effective: &mut SkipMask,
    ops: &mut OpCounter,
    out: &mut Vector,
) -> (f64, f64) {
    assert_eq!(x.len(), mlp.hidden_dim(), "input length mismatch");
    assert_eq!(predicted.len(), mlp.mlp_dim(), "mask length mismatch");

    let d = mlp.hidden_dim() as u64;
    let k = mlp.mlp_dim() as u64;
    let predicted_sparsity = predicted.sparsity();

    // Step 1 (gate computation) under the predicted mask.
    let mut h1 = ws.take(mlp.mlp_dim());
    sparse_gemv_q8_into(mlp.w_gate(), x, predicted, pool, ops, &mut h1);
    mlp.activation().apply_slice(h1.as_mut_slice());

    // Actual-sparsity compensation.
    effective.copy_from(predicted);
    if options.actual_sparsity {
        effective.union_exact_zeros(&h1);
    }
    let effective_sparsity = effective.sparsity();

    // Step 2 (input processing) and step 3 (gate application, in place).
    let mut h2 = ws.take(mlp.mlp_dim());
    sparse_gemv_q8_into(mlp.w_up(), x, effective, pool, ops, &mut h2);
    for (a, b) in h1.as_mut_slice().iter_mut().zip(h2.as_slice()) {
        *a *= b;
    }

    // Step 4 (output generation) over the transposed down projection.
    sparse_down_proj_q8_into(mlp.w_down_t(), &h1, effective, pool, ops, out);
    ws.give(h1);
    ws.give(h2);

    // Activation traffic is format-independent (intermediates stay f32).
    let elems = if options.kernel_fusion {
        2 * d + 2 * k
    } else {
        3 * d + 6 * k
    };
    ops.activation_bytes += elems * OpCounter::ACTIVATION_BYTES;

    (predicted_sparsity, effective_sparsity)
}

/// Dense reference execution with identical accounting hooks — the
/// llama.cpp-equivalent path used by [`DenseEngine`](crate::engine::DenseEngine).
pub fn dense_mlp_forward(mlp: &GatedMlp, x: &Vector, ops: &mut OpCounter) -> Vector {
    let out = sparse_mlp_forward(
        mlp,
        x,
        &SkipMask::all_dense(mlp.mlp_dim()),
        MlpOptions {
            kernel_fusion: false,
            actual_sparsity: false,
        },
        ops,
    );
    out.output
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_predictor::{OraclePredictor, SparsityPredictor};
    use sparseinfer_tensor::Prng;

    fn setup() -> (sparseinfer_model::Model, Vector) {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 31).build();
        let mut rng = Prng::seed(32);
        let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.5, 0.9) as f32);
        (model, x)
    }

    #[test]
    fn oracle_mask_reproduces_dense_output_exactly() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let mut oracle = OraclePredictor::from_model(&model);
        let mask = oracle.predict(0, &x);

        let mut ops = OpCounter::default();
        let sparse = sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops);
        let dense = mlp.forward(&x);
        for (a, b) in sparse.output.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn dense_mask_reproduces_dense_output() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let mut ops = OpCounter::default();
        let out = dense_mlp_forward(mlp, &x, &mut ops);
        let dense = mlp.forward(&x);
        for (a, b) in out.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Dense path computes 3·d·k MACs.
        assert_eq!(ops.macs, 3 * (mlp.hidden_dim() * mlp.mlp_dim()) as u64);
    }

    #[test]
    fn actual_sparsity_only_raises_effective_sparsity() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let predicted = SkipMask::all_dense(mlp.mlp_dim()); // predict nothing
        let mut ops = OpCounter::default();
        let out = sparse_mlp_forward(
            mlp,
            &x,
            &predicted,
            MlpOptions {
                kernel_fusion: false,
                actual_sparsity: true,
            },
            &mut ops,
        );
        assert_eq!(out.predicted_sparsity, 0.0);
        // The calibrated model is ~90% sparse, so actual sparsity must fire.
        assert!(
            out.effective_sparsity > 0.5,
            "effective {}",
            out.effective_sparsity
        );
        // And the result still matches dense exactly (zeros contribute
        // nothing to steps 2–4).
        let dense = mlp.forward(&x);
        for (a, b) in out.output.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn actual_sparsity_reduces_work_at_equal_output() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let predicted = SkipMask::all_dense(mlp.mlp_dim());

        let mut with = OpCounter::default();
        let _ = sparse_mlp_forward(
            mlp,
            &x,
            &predicted,
            MlpOptions {
                kernel_fusion: false,
                actual_sparsity: true,
            },
            &mut with,
        );
        let mut without = OpCounter::default();
        let _ = sparse_mlp_forward(
            mlp,
            &x,
            &predicted,
            MlpOptions {
                kernel_fusion: false,
                actual_sparsity: false,
            },
            &mut without,
        );
        assert!(
            with.macs < without.macs,
            "{} vs {}",
            with.macs,
            without.macs
        );
        assert!(with.weight_bytes_loaded < without.weight_bytes_loaded);
    }

    #[test]
    fn kernel_fusion_reduces_activation_traffic_only() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let mask = SkipMask::from_fn(mlp.mlp_dim(), |r| r % 3 == 0);

        let mut fused = OpCounter::default();
        let out_f = sparse_mlp_forward(
            mlp,
            &x,
            &mask,
            MlpOptions {
                kernel_fusion: true,
                actual_sparsity: false,
            },
            &mut fused,
        );
        let mut unfused = OpCounter::default();
        let out_u = sparse_mlp_forward(
            mlp,
            &x,
            &mask,
            MlpOptions {
                kernel_fusion: false,
                actual_sparsity: false,
            },
            &mut unfused,
        );
        assert_eq!(
            out_f.output, out_u.output,
            "fusion must be numerically neutral"
        );
        assert!(fused.activation_bytes < unfused.activation_bytes);
        assert_eq!(fused.macs, unfused.macs);
        assert_eq!(fused.weight_bytes_loaded, unfused.weight_bytes_loaded);
    }

    #[test]
    fn q8_forward_is_bitwise_equal_to_f32_forward_over_dequantized_weights() {
        // The quantized route's determinism contract, end to end: running
        // the fused INT8 forward is *exactly* running the f32 forward on the
        // dequantized weights — at every thread count.
        use crate::quantized::FusedQuantizedMlp;
        use sparseinfer_tensor::ParallelOptions;

        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = FusedQuantizedMlp::quantize(mlp);
        let deq = GatedMlp::new(
            qmlp.w_gate().dequantize(),
            qmlp.w_up().dequantize(),
            qmlp.w_down_t().dequantize(),
            mlp.activation(),
        );
        let predicted = SkipMask::from_fn(mlp.mlp_dim(), |r| r % 3 == 0);

        let mut reference: Option<Vector> = None;
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut ws = Workspace::new();
            let mut eff_q = SkipMask::all_dense(0);
            let mut out_q = Vector::zeros(0);
            let (ps_q, es_q) = sparse_mlp_q8_forward_into(
                &qmlp,
                &x,
                &predicted,
                MlpOptions::default(),
                &pool,
                &mut ws,
                &mut eff_q,
                &mut OpCounter::default(),
                &mut out_q,
            );
            let mut eff_f = SkipMask::all_dense(0);
            let mut out_f = Vector::zeros(0);
            let (ps_f, es_f) = sparse_mlp_forward_into(
                &deq,
                &x,
                &predicted,
                MlpOptions::default(),
                &pool,
                &mut ws,
                &mut eff_f,
                &mut OpCounter::default(),
                &mut out_f,
            );
            assert_eq!(ps_q, ps_f);
            assert_eq!(es_q, es_f, "effective sparsity @ {threads} threads");
            for (i, (a, b)) in out_q.iter().zip(out_f.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "element {i} @ {threads} threads");
            }
            match &reference {
                None => reference = Some(out_q),
                Some(r) => assert_eq!(&out_q, r, "thread identity @ {threads}"),
            }
        }
    }

    #[test]
    fn q8_forward_counts_one_byte_per_weight() {
        use crate::quantized::FusedQuantizedMlp;
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = FusedQuantizedMlp::quantize(mlp);
        let mask = SkipMask::from_fn(mlp.mlp_dim(), |r| r % 2 == 0);
        let mut ws = Workspace::new();
        let mut eff = SkipMask::all_dense(0);
        let mut out = Vector::zeros(0);
        let mut ops = OpCounter::default();
        sparse_mlp_q8_forward_into(
            &qmlp,
            &x,
            &mask,
            MlpOptions::default(),
            &ThreadPool::single(),
            &mut ws,
            &mut eff,
            &mut ops,
            &mut out,
        );
        assert_eq!(ops.weight_bytes_loaded, ops.macs, "1 byte per MAC");
    }

    #[test]
    fn false_positive_skips_perturb_but_stay_bounded() {
        // Skipping a truly-active row zeroes its contribution: output should
        // differ from dense, demonstrating why precision matters.
        let (model, x) = setup();
        // Use the last (stabilized) layer, whose row calibration matches the
        // test input's distribution and leaves some rows active.
        let mlp = model.layers()[model.config().n_layers - 1].mlp();
        let z = mlp.gate_preactivations(&x);
        // Find an active row and force-skip it.
        let active_row = (0..mlp.mlp_dim())
            .find(|r| z[*r] > 0.0)
            .expect("some active row");
        let mask = SkipMask::from_fn(mlp.mlp_dim(), |r| r == active_row);
        let mut ops = OpCounter::default();
        let sparse = sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops);
        let dense = mlp.forward(&x);
        let diff: f32 = sparse
            .output
            .iter()
            .zip(dense.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.0, "skipping an active row must change the output");
    }
}
