//! The unified serving-grade engine API.
//!
//! One object-safe [`Engine`] trait fronts every way this workspace can run
//! a model — dense (the llama.cpp baseline) or sparse under any
//! [`SparsityPredictor`] (sign-bit, DejaVu-style trained, oracle, random) —
//! and one [`EngineBuilder`] constructs them all:
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig, Sampler};
//! use sparseinfer_predictor::AlphaSchedule;
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::{generate, GenerateRequest};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//!
//! // Dense baseline: a builder with no predictor.
//! let mut dense = EngineBuilder::new(&model).build().unwrap();
//!
//! // SparseInfer: the training-free sign-bit predictor.
//! let mut sparse = EngineBuilder::new(&model)
//!     .signbit(AlphaSchedule::uniform(1.0))
//!     .sampler(Sampler::greedy())
//!     .build()
//!     .unwrap();
//!
//! let req = GenerateRequest::new(&[1, 2, 3]).max_new(8);
//! let a = generate(dense.as_mut(), &req).unwrap();
//! let b = generate(sparse.as_mut(), &req).unwrap();
//! assert_eq!(a.tokens.len(), 8);
//! assert_eq!(b.tokens.len(), 8);
//! println!("sparse skipped {} rows", sparse.ops().rows_skipped);
//! ```
//!
//! The trait is deliberately small: [`Engine::step`] advances one token
//! through one [`DecodeSession`] and returns logits. Everything above it —
//! sampling policies, [`GenerateRequest`](crate::request::GenerateRequest)s,
//! streaming callbacks, and the round-robin [`Batch`](crate::batch::Batch)
//! scheduler that interleaves many concurrent sessions — composes against
//! `&mut dyn Engine`, so batching, sharding and async layers can be added
//! without touching the execution cores.
//!
//! Engines accumulate [`OpCounter`] statistics and per-layer sparsity so
//! the benchmark harness can hand *measured* masks and traffic to the GPU
//! cost model. Construction errors ([`EngineError`]) are values, not
//! panics: a layer-count mismatch between predictor and model comes back as
//! `Err`, the contract a serving frontend needs.

use sparseinfer_model::model::DecodeSession;
use sparseinfer_model::sampling::Sampler;
use sparseinfer_model::Model;
use sparseinfer_predictor::{
    AlphaSchedule, DejaVuPredictor, OraclePredictor, RandomPredictor, SignBitPredictor, SkipMask,
    SparsityPredictor,
};
use sparseinfer_tensor::Vector;

use crate::error::EngineError;
use crate::mlp::{dense_mlp_forward, sparse_mlp_forward, MlpOptions};
use crate::ops::OpCounter;

/// Per-engine execution options (the paper's Fig. 4 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// MLP execution switches.
    pub mlp: MlpOptions,
}

impl EngineOptions {
    /// Full SparseInfer configuration: kernel fusion + actual sparsity.
    pub fn sparseinfer() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: true,
                actual_sparsity: true,
            },
        }
    }

    /// Base variant: prediction only, no fusion, no actual sparsity.
    pub fn base() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: false,
                actual_sparsity: false,
            },
        }
    }

    /// Base + kernel fusion.
    pub fn with_kernel_fusion() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: true,
                actual_sparsity: false,
            },
        }
    }

    /// Base + actual sparsity.
    pub fn with_actual_sparsity() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: false,
                actual_sparsity: true,
            },
        }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::sparseinfer()
    }
}

/// Accumulated per-layer sparsity statistics of a decode run.
#[derive(Debug, Clone, Default)]
pub struct SparsityStats {
    predicted_sum: Vec<f64>,
    effective_sum: Vec<f64>,
    tokens: u64,
}

impl SparsityStats {
    fn new(n_layers: usize) -> Self {
        Self {
            predicted_sum: vec![0.0; n_layers],
            effective_sum: vec![0.0; n_layers],
            tokens: 0,
        }
    }

    /// Mean predicted sparsity per layer.
    pub fn mean_predicted(&self) -> Vec<f64> {
        self.means(&self.predicted_sum)
    }

    /// Mean effective (predicted ∪ actual) sparsity per layer.
    pub fn mean_effective(&self) -> Vec<f64> {
        self.means(&self.effective_sum)
    }

    /// Number of tokens recorded.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Merges another run's statistics into this one (token-weighted, so
    /// the means stay means over the union of tokens). An empty accumulator
    /// adopts the other side's layer count.
    ///
    /// # Panics
    ///
    /// Panics if both sides are non-empty and cover different layer counts.
    pub fn merge(&mut self, other: &SparsityStats) {
        if other.tokens == 0 {
            return;
        }
        if self.tokens == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.predicted_sum.len(),
            other.predicted_sum.len(),
            "cannot merge stats over different layer counts"
        );
        for (a, b) in self.predicted_sum.iter_mut().zip(&other.predicted_sum) {
            *a += b;
        }
        for (a, b) in self.effective_sum.iter_mut().zip(&other.effective_sum) {
            *a += b;
        }
        self.tokens += other.tokens;
    }

    fn means(&self, sums: &[f64]) -> Vec<f64> {
        if self.tokens == 0 {
            return vec![0.0; sums.len()];
        }
        sums.iter().map(|s| s / self.tokens as f64).collect()
    }
}

/// One decode-capable execution configuration of a model.
///
/// Object-safe on purpose: the request layer, the eval harness and the
/// [`Batch`](crate::batch::Batch) scheduler all drive `&mut dyn Engine` /
/// `Box<dyn Engine>`, so dense and sparse configurations mix freely in one
/// scheduler.
pub trait Engine: std::fmt::Debug {
    /// The model this engine executes.
    fn model(&self) -> &Model;

    /// Advances `session` by one token and returns the logits.
    fn step(&mut self, token: u32, session: &mut DecodeSession) -> Vector;

    /// The accumulated operation counts.
    fn ops(&self) -> &OpCounter;

    /// Resets counters and sparsity statistics.
    fn reset_ops(&mut self);

    /// Accumulated sparsity statistics; `None` for engines that never skip
    /// (the dense baseline).
    fn stats(&self) -> Option<&SparsityStats> {
        None
    }

    /// The sampler requests fall back to when they don't carry their own
    /// (set via [`EngineBuilder::sampler`]).
    fn default_sampler(&self) -> Sampler {
        Sampler::greedy()
    }

    /// Short, stable configuration name for printouts.
    fn name(&self) -> &str;
}

/// Dense decoding engine (the llama.cpp baseline) with op accounting.
#[derive(Debug)]
pub struct DenseEngine<'m> {
    model: &'m Model,
    ops: OpCounter,
    sampler: Sampler,
}

impl<'m> DenseEngine<'m> {
    /// Wraps a model.
    pub fn new(model: &'m Model) -> Self {
        Self {
            model,
            ops: OpCounter::default(),
            sampler: Sampler::greedy(),
        }
    }

    /// Greedy generation with dense execution — a thin wrapper over the
    /// request layer ([`generate`](crate::request::generate)).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&mut self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        generate_greedy_via_request(self, prompt, max_new, eos)
    }
}

impl Engine for DenseEngine<'_> {
    fn model(&self) -> &Model {
        self.model
    }

    fn step(&mut self, token: u32, session: &mut DecodeSession) -> Vector {
        let model = self.model;
        let mut h = model.embed(token);
        for (layer, cache) in model.layers().iter().zip(session.caches.iter_mut()) {
            let mid = layer.attention_half(&h, session.position, cache);
            account_attention(&mut self.ops, layer.hidden_dim(), cache.len());
            let x = layer.mlp_norm().forward(&mid);
            let mlp_out = dense_mlp_forward(layer.mlp(), &x, &mut self.ops);
            h = mid;
            h.add_assign(&mlp_out);
        }
        session.position += 1;
        model.logits(&h)
    }

    fn ops(&self) -> &OpCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops = OpCounter::default();
    }

    fn default_sampler(&self) -> Sampler {
        self.sampler.clone()
    }

    fn name(&self) -> &str {
        "dense"
    }
}

/// Sparsity-exploiting decoding engine over a boxed, dynamically chosen
/// predictor.
#[derive(Debug)]
pub struct SparseEngine<'m> {
    model: &'m Model,
    predictor: Box<dyn SparsityPredictor>,
    options: EngineOptions,
    ops: OpCounter,
    stats: SparsityStats,
    sampler: Sampler,
    label: String,
}

impl<'m> SparseEngine<'m> {
    /// Wraps a model and predictor, verifying they cover the same layers.
    pub fn new(
        model: &'m Model,
        predictor: Box<dyn SparsityPredictor>,
        options: EngineOptions,
    ) -> Result<Self, EngineError> {
        if predictor.n_layers() != model.layers().len() {
            return Err(EngineError::LayerCountMismatch {
                model_layers: model.layers().len(),
                predictor_layers: predictor.n_layers(),
            });
        }
        let n = model.layers().len();
        let label = format!("sparse:{}", predictor.name());
        Ok(Self {
            model,
            predictor,
            options,
            ops: OpCounter::default(),
            stats: SparsityStats::new(n),
            sampler: Sampler::greedy(),
            label,
        })
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &dyn SparsityPredictor {
        self.predictor.as_ref()
    }

    /// Mutable access to the predictor (e.g. to change the alpha schedule
    /// mid-experiment).
    pub fn predictor_mut(&mut self) -> &mut dyn SparsityPredictor {
        self.predictor.as_mut()
    }

    /// The execution options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Greedy generation with sparse execution — a thin wrapper over the
    /// request layer. The prefill phase runs *densely* (the paper exploits
    /// sparsity only during decode).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&mut self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        generate_greedy_via_request(self, prompt, max_new, eos)
    }
}

impl Engine for SparseEngine<'_> {
    fn model(&self) -> &Model {
        self.model
    }

    fn step(&mut self, token: u32, session: &mut DecodeSession) -> Vector {
        let model = self.model;
        let mut h = model.embed(token);
        for (li, (layer, cache)) in model
            .layers()
            .iter()
            .zip(session.caches.iter_mut())
            .enumerate()
        {
            let mid = layer.attention_half(&h, session.position, cache);
            account_attention(&mut self.ops, layer.hidden_dim(), cache.len());
            let x = layer.mlp_norm().forward(&mid);

            let mask: SkipMask = self.predictor.predict(li, &x);
            let cost = self.predictor.prediction_cost(li);
            self.ops.xor_popc += cost.xor_popc;
            self.ops.predictor_macs += cost.macs;
            self.ops.weight_bytes_loaded += cost.bytes_loaded;

            let out = sparse_mlp_forward(layer.mlp(), &x, &mask, self.options.mlp, &mut self.ops);
            self.stats.predicted_sum[li] += out.predicted_sparsity;
            self.stats.effective_sum[li] += out.effective_sparsity;

            h = mid;
            h.add_assign(&out.output);
        }
        self.stats.tokens += 1;
        session.position += 1;
        model.logits(&h)
    }

    fn ops(&self) -> &OpCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops = OpCounter::default();
        self.stats = SparsityStats::new(self.model.layers().len());
    }

    fn stats(&self) -> Option<&SparsityStats> {
        Some(&self.stats)
    }

    fn default_sampler(&self) -> Sampler {
        self.sampler.clone()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Builds any engine configuration against one model.
///
/// No predictor ⇒ the dense baseline; otherwise a [`SparseEngine`] over the
/// boxed predictor. Convenience methods cover every predictor family in the
/// paper. `build` validates the configuration and returns `Err` instead of
/// panicking.
#[derive(Debug)]
pub struct EngineBuilder<'m> {
    model: &'m Model,
    predictor: Option<Box<dyn SparsityPredictor>>,
    options: EngineOptions,
    sampler: Sampler,
}

impl<'m> EngineBuilder<'m> {
    /// Starts a builder for `model` (dense, SparseInfer options, greedy
    /// sampler until told otherwise).
    pub fn new(model: &'m Model) -> Self {
        Self {
            model,
            predictor: None,
            options: EngineOptions::default(),
            sampler: Sampler::greedy(),
        }
    }

    /// Uses an explicit boxed predictor.
    pub fn predictor(mut self, predictor: Box<dyn SparsityPredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Uses the training-free sign-bit predictor at `schedule` (packs the
    /// model's gate sign bits now — the one-time load-time step).
    pub fn signbit(self, schedule: AlphaSchedule) -> Self {
        let p = SignBitPredictor::from_model(self.model, schedule);
        self.predictor(Box::new(p))
    }

    /// Uses the exact oracle predictor (upper bound / test reference).
    pub fn oracle(self) -> Self {
        let p = OraclePredictor::from_model(self.model);
        self.predictor(Box::new(p))
    }

    /// Uses the random-skipping baseline at skip probability `p`.
    pub fn random(self, p: f64, seed: u64) -> Self {
        let cfg = self.model.config();
        let r = RandomPredictor::new(p, cfg.mlp_dim, cfg.n_layers, seed);
        self.predictor(Box::new(r))
    }

    /// Uses a trained DejaVu-style predictor (the PowerInfer role).
    pub fn dejavu(self, predictor: DejaVuPredictor) -> Self {
        self.predictor(Box::new(predictor))
    }

    /// Sets the execution options (kernel fusion / actual sparsity).
    pub fn options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the default sampler requests fall back to.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Builds the engine, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError::LayerCountMismatch`] if a predictor covers a
    /// different number of layers than the model.
    pub fn build(self) -> Result<Box<dyn Engine + 'm>, EngineError> {
        match self.predictor {
            None => {
                let mut e = DenseEngine::new(self.model);
                e.sampler = self.sampler;
                Ok(Box::new(e))
            }
            Some(p) => {
                let mut e = SparseEngine::new(self.model, p, self.options)?;
                e.sampler = self.sampler;
                Ok(Box::new(e))
            }
        }
    }
}

/// Legacy greedy entry point, shared by the engines' `generate_greedy`
/// wrappers: one request through the request layer.
fn generate_greedy_via_request(
    engine: &mut dyn Engine,
    prompt: &[u32],
    max_new: usize,
    eos: u32,
) -> Vec<u32> {
    let req = crate::request::GenerateRequest::new(prompt)
        .max_new(max_new)
        .stop_at(eos)
        .sampler(Sampler::greedy());
    crate::request::generate(engine, &req)
        .expect("prompt must be non-empty")
        .tokens
}

/// Counts the dense attention work of one layer at context length `ctx`:
/// four `d×d` projections plus score/value accumulation over the context.
fn account_attention(ops: &mut OpCounter, d: usize, ctx: usize) {
    let d = d as u64;
    let ctx = ctx as u64;
    ops.macs += 4 * d * d + 2 * ctx * d;
    ops.weight_bytes_loaded += 4 * d * d * OpCounter::WEIGHT_BYTES;
    // KV cache traffic: read ctx keys + values.
    ops.activation_bytes += 2 * ctx * d * OpCounter::ACTIVATION_BYTES;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 77).build()
    }

    #[test]
    fn dense_engine_matches_model_decode() {
        let m = model();
        let mut engine = DenseEngine::new(&m);
        let expected = m.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        let actual = engine.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        assert_eq!(actual, expected);
        assert!(engine.ops().macs > 0);
    }

    #[test]
    fn builder_dense_equals_dense_engine() {
        let m = model();
        let mut built = EngineBuilder::new(&m).build().unwrap();
        let mut session = m.start_session();
        let logits = built.step(3, &mut session);
        let mut direct = DenseEngine::new(&m);
        let mut session2 = m.start_session();
        let expected = direct.step(3, &mut session2);
        assert_eq!(logits, expected);
        assert_eq!(built.name(), "dense");
        assert!(built.stats().is_none());
    }

    #[test]
    fn oracle_sparse_engine_matches_dense_decode_exactly() {
        let m = model();
        let mut engine = EngineBuilder::new(&m).oracle().build().unwrap();
        let dense = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let sparse = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
        )
        .unwrap()
        .tokens;
        assert_eq!(sparse, dense, "oracle-masked execution must be lossless");
        // And it must skip a large fraction of rows on the calibrated model.
        let eff = engine
            .stats()
            .expect("sparse engine has stats")
            .mean_effective();
        let mean: f64 = eff.iter().sum::<f64>() / eff.len() as f64;
        assert!(mean > 0.5, "mean effective sparsity {mean}");
    }

    #[test]
    fn signbit_engine_decodes_and_skips_rows() {
        let m = model();
        let mut engine = SparseEngine::new(
            &m,
            Box::new(SignBitPredictor::from_model(
                &m,
                AlphaSchedule::uniform(1.0),
            )),
            EngineOptions::sparseinfer(),
        )
        .unwrap();
        let out = engine.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        assert_eq!(out.len(), 6);
        assert!(
            engine.ops().xor_popc > 0,
            "predictor cost must be accounted"
        );
        assert!(engine.ops().rows_skipped > 0);
        assert!(Engine::stats(&engine).expect("sparse stats").tokens() > 0);
        assert_eq!(Engine::name(&engine), "sparse:sparseinfer");
    }

    #[test]
    fn sparse_engine_does_less_mlp_work_than_dense() {
        let m = model();
        let mut dense = DenseEngine::new(&m);
        let _ = dense.generate_greedy(&[1, 2, 3], 6, u32::MAX);

        let mut sparse = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        let _ = crate::request::generate(
            sparse.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(6),
        )
        .unwrap();

        assert!(
            sparse.ops().macs < dense.ops().macs,
            "sparse {} vs dense {}",
            sparse.ops().macs,
            dense.ops().macs
        );
    }

    #[test]
    fn random_predictor_engine_diverges_from_dense() {
        let m = model();
        let dense_out = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let mut engine = EngineBuilder::new(&m).random(0.9, 5).build().unwrap();
        let sparse_out = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
        )
        .unwrap()
        .tokens;
        assert_ne!(
            sparse_out, dense_out,
            "random 90% skipping must corrupt decode"
        );
    }

    #[test]
    fn actual_sparsity_raises_effective_over_predicted() {
        let m = model();
        // A conservative schedule under-predicts, leaving room for actual
        // sparsity to help.
        let mut engine = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.5))
            .options(EngineOptions::sparseinfer())
            .build()
            .unwrap();
        let _ = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(4),
        )
        .unwrap();
        let stats = engine.stats().expect("sparse stats");
        let predicted = stats.mean_predicted();
        let effective = stats.mean_effective();
        for (l, (p, e)) in predicted.iter().zip(&effective).enumerate() {
            assert!(e >= p, "layer {l}: effective {e} < predicted {p}");
        }
        let gain: f64 = effective.iter().sum::<f64>() - predicted.iter().sum::<f64>();
        assert!(gain > 0.0, "actual sparsity must add something");
    }

    #[test]
    fn predictor_layer_mismatch_is_an_error_not_a_panic() {
        let m = model();
        let p = RandomPredictor::new(0.5, m.config().mlp_dim, 1, 1);
        let err = EngineBuilder::new(&m)
            .predictor(Box::new(p))
            .build()
            .expect_err("mismatch must be rejected");
        assert_eq!(
            err,
            EngineError::LayerCountMismatch {
                model_layers: m.layers().len(),
                predictor_layers: 1
            }
        );
    }

    #[test]
    fn builder_sampler_becomes_engine_default() {
        let m = model();
        let engine = EngineBuilder::new(&m)
            .sampler(Sampler::temperature(0.5, 3))
            .build()
            .unwrap();
        assert_eq!(engine.default_sampler().name(), "temperature");
    }
}
