//! The unified serving-grade engine API.
//!
//! One object-safe [`Engine`] trait fronts every way this workspace can run
//! a model — dense (the llama.cpp baseline) or sparse under any
//! [`SparsityPredictor`] (sign-bit, DejaVu-style trained, oracle, random) —
//! and one [`EngineBuilder`] constructs them all:
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig, Sampler};
//! use sparseinfer_predictor::AlphaSchedule;
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::{generate, GenerateRequest};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
//!
//! // Dense baseline: a builder with no predictor.
//! let mut dense = EngineBuilder::new(&model).build().unwrap();
//!
//! // SparseInfer: the training-free sign-bit predictor.
//! let mut sparse = EngineBuilder::new(&model)
//!     .signbit(AlphaSchedule::uniform(1.0))
//!     .sampler(Sampler::greedy())
//!     .build()
//!     .unwrap();
//!
//! let req = GenerateRequest::new(&[1, 2, 3]).max_new(8);
//! let a = generate(dense.as_mut(), &req).unwrap();
//! let b = generate(sparse.as_mut(), &req).unwrap();
//! assert_eq!(a.tokens.len(), 8);
//! assert_eq!(b.tokens.len(), 8);
//! println!("sparse skipped {} rows", sparse.ops().rows_skipped);
//! ```
//!
//! The trait is deliberately small: [`Engine::score_block_into`] — the one
//! required decode entry point — teacher-forces a token run through one
//! [`DecodeSession`] and writes per-position logits into caller-owned
//! buffers (the allocation-free decode hot path; [`Engine::step_into`] is
//! its k = 1 case, and [`Engine::step_block_into`] layers optional
//! speculative drafting on top — see [`SpeculativeEngine`]). Everything
//! above it —
//! sampling policies, [`GenerateRequest`](crate::request::GenerateRequest)s,
//! streaming callbacks, and the continuous-batching
//! [`Scheduler`](crate::scheduler::Scheduler) that admits, interleaves and
//! retires many concurrent sessions — composes against `&mut dyn Engine`,
//! so batching, sharding and async layers can be added without touching
//! the execution cores.
//!
//! # Hot-path architecture
//!
//! * **Workspace reuse** — every engine owns a
//!   [`Workspace`], a per-session
//!   [`PredictorScratch`] and two recycled [`SkipMask`]s; with a
//!   capacity-reserved session, a steady-state decode step performs **zero
//!   heap allocations** (proven by the workspace allocation-guard test).
//! * **Thread parallelism** — [`EngineBuilder::parallel`] plumbs a
//!   [`ParallelOptions`] thread count into every GEMV/down-projection;
//!   outputs are bit-identical at any thread count because each output
//!   element has a single writer and a fixed reduction order.
//! * **Shared predictors** — predictors sit behind `Arc`, so a
//!   [`Batch`](crate::batch::Batch) of N sessions loads one copy of the
//!   packed sign tables (or DejaVu weights): batch memory is O(1) in
//!   in-flight requests (see [`MemoryEstimate`]), while per-slot
//!   [`OpCounter`]/[`SparsityStats`]/sampler state stays isolated.
//!
//! Engines accumulate [`OpCounter`] statistics and per-layer sparsity so
//! the benchmark harness can hand *measured* masks and traffic to the GPU
//! cost model. Construction errors ([`EngineError`]) are values, not
//! panics: a layer-count mismatch between predictor and model comes back as
//! `Err`, the contract a serving frontend needs.

use std::sync::Arc;

use sparseinfer_model::model::DecodeSession;
use sparseinfer_model::sampling::Sampler;
use sparseinfer_model::Model;
use sparseinfer_predictor::{
    AlphaSchedule, DejaVuPredictor, OraclePredictor, PredictorScratch, RandomPredictor,
    SignBitPredictor, SkipMask, SparsityPredictor,
};
use sparseinfer_tensor::{ParallelOptions, ThreadPool, Vector, Workspace};

use crate::error::EngineError;
use crate::mlp::{sparse_mlp_forward_into, sparse_mlp_q8_forward_into, MlpOptions};
use crate::ops::OpCounter;
use crate::quantized::FusedQuantizedMlp;

/// MLP weight storage format executed by an engine.
///
/// `F32` reads the model's own matrices; `Int8` executes a block-quantized
/// copy (one scale per 32 columns) through the fused block-dequant kernels,
/// loading one byte per weight instead of four. Either way, decode is
/// bit-identical to its own solo run at every thread count — quantization
/// perturbs *values* once at weight-prep time, never the reduction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightFormat {
    /// Full-precision `f32` — the model's own matrices.
    #[default]
    F32,
    /// Block-quantized INT8 via [`QuantizedWeights`].
    Int8,
}

impl WeightFormat {
    /// Short stable name for flags and stats ("f32" / "int8").
    pub fn label(self) -> &'static str {
        match self {
            WeightFormat::F32 => "f32",
            WeightFormat::Int8 => "int8",
        }
    }
}

/// One model's MLP weights quantized to block-INT8 — the weight analogue
/// of a shared predictor. Build once at load time, share across engines
/// via `Arc` ([`EngineBuilder::quantized_shared`]) so a batch of N slots
/// holds one INT8 copy, not N.
#[derive(Debug)]
pub struct QuantizedWeights {
    layers: Vec<FusedQuantizedMlp>,
}

impl QuantizedWeights {
    /// Quantizes every layer's gate/up/down matrices (one-time, at load).
    pub fn quantize(model: &Model) -> Self {
        Self {
            layers: model
                .layers()
                .iter()
                .map(|l| FusedQuantizedMlp::quantize(l.mlp()))
                .collect(),
        }
    }

    /// Per-layer quantized MLP blocks, in model layer order.
    pub fn layers(&self) -> &[FusedQuantizedMlp] {
        &self.layers
    }

    /// Total INT8 payload bytes (values plus block scales) — the shrunken
    /// weight footprint [`MemoryEstimate::weight_bytes`] reports.
    pub fn size_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.size_bytes() as u64).sum()
    }

    fn fits(&self, model: &Model) -> bool {
        self.layers.len() == model.layers().len()
            && self.layers.iter().zip(model.layers()).all(|(q, l)| {
                q.mlp_dim() == l.mlp().mlp_dim() && q.hidden_dim() == l.mlp().hidden_dim()
            })
    }
}

/// Per-engine execution options (the paper's Fig. 4 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// MLP execution switches.
    pub mlp: MlpOptions,
}

impl EngineOptions {
    /// Full SparseInfer configuration: kernel fusion + actual sparsity.
    pub fn sparseinfer() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: true,
                actual_sparsity: true,
            },
        }
    }

    /// Base variant: prediction only, no fusion, no actual sparsity.
    pub fn base() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: false,
                actual_sparsity: false,
            },
        }
    }

    /// Base + kernel fusion.
    pub fn with_kernel_fusion() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: true,
                actual_sparsity: false,
            },
        }
    }

    /// Base + actual sparsity.
    pub fn with_actual_sparsity() -> Self {
        Self {
            mlp: MlpOptions {
                kernel_fusion: false,
                actual_sparsity: true,
            },
        }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::sparseinfer()
    }
}

/// Accumulated per-layer sparsity statistics of a decode run.
#[derive(Debug, Clone, Default)]
pub struct SparsityStats {
    predicted_sum: Vec<f64>,
    effective_sum: Vec<f64>,
    tokens: u64,
}

impl SparsityStats {
    fn new(n_layers: usize) -> Self {
        Self {
            predicted_sum: vec![0.0; n_layers],
            effective_sum: vec![0.0; n_layers],
            tokens: 0,
        }
    }

    /// Mean predicted sparsity per layer.
    pub fn mean_predicted(&self) -> Vec<f64> {
        self.means(&self.predicted_sum)
    }

    /// Mean effective (predicted ∪ actual) sparsity per layer.
    pub fn mean_effective(&self) -> Vec<f64> {
        self.means(&self.effective_sum)
    }

    /// Number of tokens recorded.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Merges another run's statistics into this one (token-weighted, so
    /// the means stay means over the union of tokens). An empty accumulator
    /// adopts the other side's layer count.
    ///
    /// # Panics
    ///
    /// Panics if both sides are non-empty and cover different layer counts.
    pub fn merge(&mut self, other: &SparsityStats) {
        if other.tokens == 0 {
            return;
        }
        if self.tokens == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.predicted_sum.len(),
            other.predicted_sum.len(),
            "cannot merge stats over different layer counts"
        );
        for (a, b) in self.predicted_sum.iter_mut().zip(&other.predicted_sum) {
            *a += b;
        }
        for (a, b) in self.effective_sum.iter_mut().zip(&other.effective_sum) {
            *a += b;
        }
        self.tokens += other.tokens;
    }

    fn means(&self, sums: &[f64]) -> Vec<f64> {
        if self.tokens == 0 {
            return vec![0.0; sums.len()];
        }
        sums.iter().map(|s| s / self.tokens as f64).collect()
    }
}

/// Split memory footprint of one engine: state that can be shared across
/// concurrent sessions versus state every session must own.
///
/// The split is what makes the ROADMAP's batch-memory story measurable:
/// `Batch::memory_estimate` counts `shared_bytes` once per *distinct*
/// predictor (deduplicated by `Arc` identity) and `per_session_bytes` once
/// per slot, so a 32-slot batch over one shared predictor costs
/// `shared + 32·per_session` instead of `32·(shared + per_session)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryEstimate {
    /// Bytes of shared, read-only state (packed sign tables, DejaVu
    /// weights, oracle gate copies, quantized weight copies). Zero for
    /// the plain dense baseline.
    pub shared_bytes: u64,
    /// Of `shared_bytes`, how much is quantized MLP weight payload —
    /// zero under [`WeightFormat::F32`] (the engine reads the model's own
    /// matrices, accounted with the model), the INT8 copy's bytes (~¼ of
    /// the f32 matrices) under [`WeightFormat::Int8`]. A subcomponent,
    /// not an addend: [`total`](Self::total) must not add it again.
    pub weight_bytes: u64,
    /// Bytes of per-session state (scratch buffers, masks, workspace pool,
    /// statistics). Model weights and KV caches are accounted elsewhere.
    pub per_session_bytes: u64,
    /// Bytes of cold KV buffers held by swapped-out preempted requests
    /// (see [`Scheduler::preemption_stats`](crate::scheduler::Scheduler::preemption_stats)).
    /// Counted separately from the pool so swap-out can never hide
    /// memory from the estimate. Always zero for a single engine.
    pub swapped_bytes: u64,
}

impl MemoryEstimate {
    /// Shared plus per-session plus swapped-out bytes.
    pub fn total(&self) -> u64 {
        self.shared_bytes + self.per_session_bytes + self.swapped_bytes
    }
}

/// Lifetime draft/accept counters of a speculative engine.
///
/// `drafted` counts proposals put forward by the draft engine; `accepted`
/// counts those confirmed by dense verification. The ratio is the
/// *acceptance rate* — the knob-quality signal of speculative decoding
/// (tokens are bit-identical to dense-only decode regardless; acceptance
/// only decides how much dense work each verified block amortizes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculativeStats {
    /// Draft tokens proposed.
    pub drafted: u64,
    /// Draft tokens confirmed by the verifier and emitted.
    pub accepted: u64,
}

impl SpeculativeStats {
    /// `accepted / drafted` (0 when nothing was drafted).
    pub fn acceptance_rate(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }

    /// Adds another counter pair into this one.
    pub fn merge(&mut self, other: &SpeculativeStats) {
        self.drafted += other.drafted;
        self.accepted += other.accepted;
    }
}

/// One block-decode step's outputs, recycled across calls.
///
/// Holds the draft proposals and one verified logit vector per fed
/// position: `logits(0)` follows the fed token, `logits(i)` follows
/// `proposals()[i - 1]`. Buffers are grow-only — vectors keep their
/// allocations between steps, so steady-state block decode stays
/// allocation-free.
#[derive(Debug, Default)]
pub struct StepBlock {
    proposals: Vec<u32>,
    logits: Vec<Vector>,
    /// Logit vectors valid this step (`proposals.len() + 1`).
    scored: usize,
}

impl StepBlock {
    /// An empty block buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the proposals and makes exactly `slots` logit vectors
    /// addressable, reusing prior allocations.
    pub fn reset(&mut self, slots: usize) {
        self.proposals.clear();
        if self.logits.len() < slots {
            self.logits.resize_with(slots, || Vector::zeros(0));
        }
        self.scored = slots;
    }

    /// Records one draft proposal (in draft order).
    ///
    /// # Panics
    ///
    /// Panics if the proposal would outnumber the logit slots reserved by
    /// [`reset`](Self::reset).
    pub fn push_proposal(&mut self, token: u32) {
        assert!(
            self.proposals.len() + 1 < self.scored,
            "proposals must leave one logit slot for the fed token"
        );
        self.proposals.push(token);
    }

    /// Shrinks the addressable logit slots to `slots` (when fewer
    /// proposals materialized than were reserved for).
    pub fn truncate_scored(&mut self, slots: usize) {
        debug_assert!(slots > self.proposals.len(), "one slot per fed position");
        self.scored = self.scored.min(slots);
    }

    /// The draft proposals of this step, in order (empty for
    /// non-speculative engines).
    pub fn proposals(&self) -> &[u32] {
        &self.proposals
    }

    /// The verified logits after the `i`-th fed position (`0` is the fed
    /// token, `i >= 1` is proposal `i - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is past the scored positions.
    pub fn logits(&self, i: usize) -> &Vector {
        assert!(
            i < self.scored,
            "position {i} not scored (of {})",
            self.scored
        );
        &self.logits[i]
    }

    /// Mutable access to every scored logit slot, for engines filling the
    /// block.
    pub fn logits_mut(&mut self) -> &mut [Vector] {
        &mut self.logits[..self.scored]
    }
}

/// One decode-capable execution configuration of a model.
///
/// Object-safe on purpose: the request layer, the eval harness and the
/// [`Batch`](crate::batch::Batch) scheduler all drive `&mut dyn Engine` /
/// `Box<dyn Engine>`, so dense and sparse configurations mix freely in one
/// scheduler. `Send` is a supertrait so the batch scheduler can advance
/// independent sessions on worker threads.
pub trait Engine: std::fmt::Debug + Send {
    /// The model this engine executes.
    fn model(&self) -> &Model;

    /// Teacher-forced scoring over a token run — the **one** required
    /// decode entry point. Feeds `tokens[i]` at position
    /// `session.position + i` and writes the logits following it into
    /// `logits[i]` (resized in place); the session advances by
    /// `tokens.len()` positions. Single-token stepping is the
    /// `tokens.len() == 1` case, and speculative verification is one call
    /// over `[fed token, draft₁, …, draftₖ]` — every position's logits are
    /// bit-identical to feeding the same run one
    /// [`step_into`](Self::step_into) at a time. With a capacity-reserved
    /// session and recycled `logits` buffers, a warm engine performs zero
    /// heap allocations per call (existing workspaces are reused across
    /// positions).
    ///
    /// # Panics
    ///
    /// Implementations panic if `tokens.len() != logits.len()`.
    fn score_block_into(
        &mut self,
        tokens: &[u32],
        session: &mut DecodeSession,
        logits: &mut [Vector],
    );

    /// Advances `session` by one token, writing the logits into `logits`
    /// (resized in place) — the k = 1 case of
    /// [`score_block_into`](Self::score_block_into).
    fn step_into(&mut self, token: u32, session: &mut DecodeSession, logits: &mut Vector) {
        self.score_block_into(
            std::slice::from_ref(&token),
            session,
            std::slice::from_mut(logits),
        );
    }

    /// Advances `session` by one token and returns the logits — convenience
    /// wrapper over the block API (allocates the returned buffer).
    fn step(&mut self, token: u32, session: &mut DecodeSession) -> Vector {
        let mut logits = Vector::zeros(0);
        self.step_into(token, session, &mut logits);
        logits
    }

    /// One block-decode step: feeds `token`, optionally drafts up to
    /// `limit - 1` speculative proposals, and scores every fed position,
    /// leaving `out` with the proposals and one logit vector per fed
    /// position (`out.logits(0)` follows `token`, `out.logits(i)` follows
    /// `out.proposals()[i - 1]`). The session advances by
    /// `1 + out.proposals().len()` positions; the **caller** samples
    /// acceptance and rolls rejected positions back via
    /// [`DecodeSession::truncate`]. `limit` is the caller's remaining
    /// token budget (`>= 1`); the default implementation never drafts —
    /// plain engines behave exactly like single-token stepping.
    fn step_block_into(
        &mut self,
        token: u32,
        session: &mut DecodeSession,
        limit: usize,
        out: &mut StepBlock,
    ) {
        debug_assert!(limit >= 1, "a block step must be allowed one token");
        let _ = limit;
        out.reset(1);
        self.score_block_into(std::slice::from_ref(&token), session, out.logits_mut());
    }

    /// Feedback from the acceptance loop: how many of the last block's
    /// proposals were accepted. Non-speculative engines ignore it.
    fn note_accepted(&mut self, accepted: usize) {
        let _ = accepted;
    }

    /// Accumulated draft/accept counters; `None` for engines that never
    /// draft.
    fn speculative_stats(&self) -> Option<SpeculativeStats> {
        None
    }

    /// The accumulated operation counts.
    fn ops(&self) -> &OpCounter;

    /// Resets counters and sparsity statistics.
    fn reset_ops(&mut self);

    /// Accumulated sparsity statistics; `None` for engines that never skip
    /// (the dense baseline).
    fn stats(&self) -> Option<&SparsityStats> {
        None
    }

    /// The sampler requests fall back to when they don't carry their own
    /// (set via [`EngineBuilder::sampler`]).
    fn default_sampler(&self) -> Sampler {
        Sampler::greedy()
    }

    /// Shared-vs-per-session memory footprint of this engine's execution
    /// state (excluding model weights and KV caches).
    fn memory_estimate(&self) -> MemoryEstimate {
        MemoryEstimate::default()
    }

    /// Identity of the shared predictor state, if any — the same value for
    /// engines sharing one `Arc`ed predictor, used by
    /// [`Batch::memory_estimate`](crate::batch::Batch::memory_estimate) to
    /// count shared bytes once.
    fn shared_state_id(&self) -> Option<usize> {
        None
    }

    /// The MLP weight storage format this engine executes. Speculative
    /// engines report their *draft's* format (the sparse hot path; the
    /// verifier's is visible through its own engine).
    fn weight_format(&self) -> WeightFormat {
        WeightFormat::F32
    }

    /// Short, stable configuration name for printouts.
    fn name(&self) -> &str;
}

/// Dense decoding engine (the llama.cpp baseline) with op accounting.
#[derive(Debug)]
pub struct DenseEngine<'m> {
    model: &'m Model,
    ops: OpCounter,
    sampler: Sampler,
    pool: ThreadPool,
    ws: Workspace,
    dense_mask: SkipMask,
    effective: SkipMask,
    quantized: Option<Arc<QuantizedWeights>>,
    label: &'static str,
}

impl<'m> DenseEngine<'m> {
    /// Wraps a model.
    pub fn new(model: &'m Model) -> Self {
        Self {
            model,
            ops: OpCounter::default(),
            sampler: Sampler::greedy(),
            pool: ThreadPool::single(),
            ws: Workspace::new(),
            dense_mask: SkipMask::all_dense(0),
            effective: SkipMask::all_dense(0),
            quantized: None,
            label: "dense",
        }
    }

    /// Greedy generation with dense execution — a thin wrapper over the
    /// request layer ([`generate`](crate::request::generate)).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&mut self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        generate_greedy_via_request(self, prompt, max_new, eos)
    }
}

impl Engine for DenseEngine<'_> {
    fn model(&self) -> &Model {
        self.model
    }

    fn score_block_into(
        &mut self,
        tokens: &[u32],
        session: &mut DecodeSession,
        logits: &mut [Vector],
    ) {
        assert_eq!(tokens.len(), logits.len(), "one logit vector per token");
        let model = self.model;
        for (&token, out) in tokens.iter().zip(logits.iter_mut()) {
            let mut h = self.ws.take(model.config().hidden_dim);
            model.embed_into(token, &mut h);
            for (li, (layer, cache)) in model
                .layers()
                .iter()
                .zip(session.caches.iter_mut())
                .enumerate()
            {
                let mid =
                    layer.attention_half_ws(&h, session.position, cache, &self.pool, &mut self.ws);
                account_attention(&mut self.ops, layer.hidden_dim(), cache.len());
                let mut x = self.ws.take(layer.hidden_dim());
                layer.mlp_norm().forward_into(&mid, &mut x);
                if self.dense_mask.len() != layer.mlp().mlp_dim() {
                    self.dense_mask.reset_dense(layer.mlp().mlp_dim());
                }
                // Dense = sparse execution under the all-active mask with the
                // base options (no fusion, no actual sparsity) — exactly the
                // seed's `dense_mlp_forward`.
                let base = MlpOptions {
                    kernel_fusion: false,
                    actual_sparsity: false,
                };
                let _ = match &self.quantized {
                    Some(q) => sparse_mlp_q8_forward_into(
                        &q.layers()[li],
                        &x,
                        &self.dense_mask,
                        base,
                        &self.pool,
                        &mut self.ws,
                        &mut self.effective,
                        &mut self.ops,
                        &mut h,
                    ),
                    None => sparse_mlp_forward_into(
                        layer.mlp(),
                        &x,
                        &self.dense_mask,
                        base,
                        &self.pool,
                        &mut self.ws,
                        &mut self.effective,
                        &mut self.ops,
                        &mut h,
                    ),
                };
                self.ws.give(x);
                h.add_assign(&mid);
                self.ws.give(mid);
            }
            session.position += 1;
            model.logits_into(&h, &self.pool, &mut self.ws, out);
            self.ws.give(h);
        }
    }

    fn ops(&self) -> &OpCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops = OpCounter::default();
    }

    fn default_sampler(&self) -> Sampler {
        self.sampler.clone()
    }

    fn memory_estimate(&self) -> MemoryEstimate {
        let weight_bytes = self.quantized.as_ref().map_or(0, |q| q.size_bytes());
        MemoryEstimate {
            shared_bytes: weight_bytes,
            weight_bytes,
            per_session_bytes: self.ws.pooled_bytes()
                + mask_bytes(&self.dense_mask)
                + mask_bytes(&self.effective),
            swapped_bytes: 0,
        }
    }

    fn shared_state_id(&self) -> Option<usize> {
        self.quantized
            .as_ref()
            .map(|q| Arc::as_ptr(q) as *const () as usize)
    }

    fn weight_format(&self) -> WeightFormat {
        if self.quantized.is_some() {
            WeightFormat::Int8
        } else {
            WeightFormat::F32
        }
    }

    fn name(&self) -> &str {
        self.label
    }
}

/// Sparsity-exploiting decoding engine over a shared, dynamically chosen
/// predictor.
///
/// The predictor sits behind an `Arc` and is **read-only**: any number of
/// engines (batch slots) share one copy of its packed-sign/DejaVu state,
/// while each engine owns the mutable per-session pieces — scratch buffers,
/// masks, workspace, counters, sampler.
#[derive(Debug)]
pub struct SparseEngine<'m> {
    model: &'m Model,
    predictor: Arc<dyn SparsityPredictor>,
    options: EngineOptions,
    ops: OpCounter,
    stats: SparsityStats,
    sampler: Sampler,
    label: String,
    pool: ThreadPool,
    ws: Workspace,
    scratch: PredictorScratch,
    mask: SkipMask,
    effective: SkipMask,
    quantized: Option<Arc<QuantizedWeights>>,
}

impl<'m> SparseEngine<'m> {
    /// Wraps a model and predictor, verifying they cover the same layers.
    /// Accepts `Box` or `Arc` predictors; `Arc` enables sharing one
    /// predictor across many engines.
    pub fn new(
        model: &'m Model,
        predictor: impl Into<Arc<dyn SparsityPredictor>>,
        options: EngineOptions,
    ) -> Result<Self, EngineError> {
        let predictor = predictor.into();
        if predictor.n_layers() != model.layers().len() {
            return Err(EngineError::LayerCountMismatch {
                model_layers: model.layers().len(),
                predictor_layers: predictor.n_layers(),
            });
        }
        let n = model.layers().len();
        let label = format!("sparse:{}", predictor.name());
        Ok(Self {
            model,
            predictor,
            options,
            ops: OpCounter::default(),
            stats: SparsityStats::new(n),
            sampler: Sampler::greedy(),
            label,
            pool: ThreadPool::single(),
            ws: Workspace::new(),
            scratch: PredictorScratch::new(),
            mask: SkipMask::all_dense(0),
            effective: SkipMask::all_dense(0),
            quantized: None,
        })
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &dyn SparsityPredictor {
        self.predictor.as_ref()
    }

    /// A handle to the shared predictor, cloneable into further engines so
    /// many sessions reuse one packed-sign/DejaVu state.
    pub fn predictor_handle(&self) -> Arc<dyn SparsityPredictor> {
        Arc::clone(&self.predictor)
    }

    /// The execution options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Greedy generation with sparse execution — a thin wrapper over the
    /// request layer. The prefill phase runs *densely* (the paper exploits
    /// sparsity only during decode).
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty.
    pub fn generate_greedy(&mut self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        generate_greedy_via_request(self, prompt, max_new, eos)
    }
}

impl Engine for SparseEngine<'_> {
    fn model(&self) -> &Model {
        self.model
    }

    fn score_block_into(
        &mut self,
        tokens: &[u32],
        session: &mut DecodeSession,
        logits: &mut [Vector],
    ) {
        assert_eq!(tokens.len(), logits.len(), "one logit vector per token");
        let model = self.model;
        for (&token, out) in tokens.iter().zip(logits.iter_mut()) {
            let mut h = self.ws.take(model.config().hidden_dim);
            model.embed_into(token, &mut h);
            for (li, (layer, cache)) in model
                .layers()
                .iter()
                .zip(session.caches.iter_mut())
                .enumerate()
            {
                let mid =
                    layer.attention_half_ws(&h, session.position, cache, &self.pool, &mut self.ws);
                account_attention(&mut self.ops, layer.hidden_dim(), cache.len());
                let mut x = self.ws.take(layer.hidden_dim());
                layer.mlp_norm().forward_into(&mid, &mut x);

                self.predictor
                    .predict_into(li, &x, &mut self.scratch, &mut self.mask);
                let cost = self.predictor.prediction_cost(li);
                self.ops.xor_popc += cost.xor_popc;
                self.ops.predictor_macs += cost.macs;
                self.ops.weight_bytes_loaded += cost.bytes_loaded;

                let (predicted, effective) = match &self.quantized {
                    Some(q) => sparse_mlp_q8_forward_into(
                        &q.layers()[li],
                        &x,
                        &self.mask,
                        self.options.mlp,
                        &self.pool,
                        &mut self.ws,
                        &mut self.effective,
                        &mut self.ops,
                        &mut h,
                    ),
                    None => sparse_mlp_forward_into(
                        layer.mlp(),
                        &x,
                        &self.mask,
                        self.options.mlp,
                        &self.pool,
                        &mut self.ws,
                        &mut self.effective,
                        &mut self.ops,
                        &mut h,
                    ),
                };
                self.stats.predicted_sum[li] += predicted;
                self.stats.effective_sum[li] += effective;

                self.ws.give(x);
                h.add_assign(&mid);
                self.ws.give(mid);
            }
            self.stats.tokens += 1;
            session.position += 1;
            model.logits_into(&h, &self.pool, &mut self.ws, out);
            self.ws.give(h);
        }
    }

    fn ops(&self) -> &OpCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.ops = OpCounter::default();
        self.stats = SparsityStats::new(self.model.layers().len());
    }

    fn stats(&self) -> Option<&SparsityStats> {
        Some(&self.stats)
    }

    fn default_sampler(&self) -> Sampler {
        self.sampler.clone()
    }

    fn memory_estimate(&self) -> MemoryEstimate {
        let weight_bytes = self.quantized.as_ref().map_or(0, |q| q.size_bytes());
        MemoryEstimate {
            shared_bytes: self.predictor.memory_bytes() + weight_bytes,
            weight_bytes,
            per_session_bytes: self.ws.pooled_bytes()
                + self.scratch.memory_bytes()
                + mask_bytes(&self.mask)
                + mask_bytes(&self.effective)
                + (self.stats.predicted_sum.len() as u64) * 16,
            swapped_bytes: 0,
        }
    }

    fn shared_state_id(&self) -> Option<usize> {
        // Identity covers *all* shared state: engines share bytes only when
        // they share both the predictor and (if any) the quantized weights.
        let p = Arc::as_ptr(&self.predictor) as *const () as usize;
        Some(match &self.quantized {
            Some(q) => p ^ (Arc::as_ptr(q) as *const () as usize),
            None => p,
        })
    }

    fn weight_format(&self) -> WeightFormat {
        if self.quantized.is_some() {
            WeightFormat::Int8
        } else {
            WeightFormat::F32
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

fn mask_bytes(mask: &SkipMask) -> u64 {
    (mask.len().div_ceil(64) * 8) as u64
}

/// Lossless speculative decoding: a cheap **draft** engine (typically
/// sparse) proposes up to `k` tokens per block step, an exact **verify**
/// engine (typically dense) scores the whole run in one teacher-forced
/// [`score_block_into`](Engine::score_block_into) pass, and the request
/// layer accepts the longest agreeing prefix — so emitted tokens are
/// **bit-identical to dense-only decode** while each verified block
/// amortizes the dense work over `1 + accepted` tokens.
///
/// Both engines execute the *same* model (enforced at construction); the
/// draft keeps its own private, contiguous KV session, resynced to the
/// request's context by truncation (plus a one-position dense copy after a
/// fully accepted block) — draft KV never enters the request's paged
/// session, the scheduler's block budget, or the prefix index.
#[derive(Debug)]
pub struct SpeculativeEngine<'m> {
    draft: Box<dyn Engine + 'm>,
    verify: Box<dyn Engine + 'm>,
    k: usize,
    /// The draft's private KV context (contiguous, reserved once).
    draft_session: DecodeSession,
    draft_logits: Vector,
    tokens_buf: Vec<u32>,
    spec: SpeculativeStats,
    ops: OpCounter,
    label: String,
}

impl<'m> SpeculativeEngine<'m> {
    /// Pairs a draft engine with a verify engine at draft length `k`.
    ///
    /// # Errors
    ///
    /// [`EngineError::SpeculativeConfig`] if the two engines execute
    /// different models or `k == 0`.
    pub fn new(
        draft: Box<dyn Engine + 'm>,
        verify: Box<dyn Engine + 'm>,
        k: usize,
    ) -> Result<Self, EngineError> {
        if k == 0 {
            return Err(EngineError::SpeculativeConfig {
                reason: "draft length k must be at least 1",
            });
        }
        if !std::ptr::eq(draft.model(), verify.model()) {
            return Err(EngineError::SpeculativeConfig {
                reason: "draft and verify engines must execute the same model",
            });
        }
        let label = format!("speculative:{}+{}", draft.name(), verify.name());
        let draft_session = verify.model().start_session();
        Ok(Self {
            draft,
            verify,
            k,
            draft_session,
            draft_logits: Vector::zeros(0),
            tokens_buf: Vec::new(),
            spec: SpeculativeStats::default(),
            ops: OpCounter::default(),
            label,
        })
    }

    /// The configured draft length (maximum proposals per block).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Brings the draft session level with the request's context: rolls
    /// back past-the-context draft positions (rejected proposals) and
    /// copies any missing positions' KV from the request session (the
    /// initial prompt sync, and the one position a fully accepted block
    /// leaves behind). Also reserves the run's worst-case draft capacity
    /// once — `position + limit` never grows over a request's lifetime, so
    /// steady-state drafting performs no allocation.
    fn resync_draft(&mut self, session: &DecodeSession, limit: usize) {
        let pos = session.position;
        let ds = &mut self.draft_session;
        if ds.position > pos {
            ds.truncate(pos);
        }
        if ds.position < pos {
            for (dst, src) in ds.caches.iter_mut().zip(&session.caches) {
                for t in dst.len()..pos {
                    // Dtype-aware: raw words paged-to-paged, lossless f16→f32
                    // widening into the contiguous draft cache.
                    dst.push_from(src, t);
                }
            }
            ds.position = pos;
        }
        for cache in &mut ds.caches {
            cache.reserve_tokens(pos + limit + 1);
        }
    }

    fn refresh_ops(&mut self) {
        let mut ops = *self.draft.ops();
        ops.merge(self.verify.ops());
        self.ops = ops;
    }
}

impl Engine for SpeculativeEngine<'_> {
    fn model(&self) -> &Model {
        self.verify.model()
    }

    fn score_block_into(
        &mut self,
        tokens: &[u32],
        session: &mut DecodeSession,
        logits: &mut [Vector],
    ) {
        // Exactness flows from the verifier: plain scoring (the prefill
        // hand-off, replays, k = 1 stepping) is always dense.
        self.verify.score_block_into(tokens, session, logits);
        self.refresh_ops();
    }

    fn step_block_into(
        &mut self,
        token: u32,
        session: &mut DecodeSession,
        limit: usize,
        out: &mut StepBlock,
    ) {
        debug_assert!(limit >= 1, "a block step must be allowed one token");
        let budget = limit.saturating_sub(1).min(self.k);
        if budget == 0 {
            // No room to speculate: a pure dense step.
            out.reset(1);
            self.verify
                .score_block_into(std::slice::from_ref(&token), session, out.logits_mut());
            self.refresh_ops();
            return;
        }
        self.resync_draft(session, limit);
        out.reset(budget + 1);
        // Draft: greedy argmax chain through the cheap engine.
        let mut t = token;
        for _ in 0..budget {
            self.draft
                .step_into(t, &mut self.draft_session, &mut self.draft_logits);
            let Some(next) = self.draft_logits.argmax() else {
                break;
            };
            let next = next as u32;
            out.push_proposal(next);
            t = next;
        }
        let drafted = out.proposals().len();
        out.truncate_scored(drafted + 1);
        // Verify: one exact teacher-forced pass over the fed token plus
        // every proposal. The caller samples acceptance from these logits
        // and truncates the rejected tail out of `session`.
        self.tokens_buf.clear();
        self.tokens_buf.push(token);
        self.tokens_buf.extend_from_slice(out.proposals());
        self.verify
            .score_block_into(&self.tokens_buf, session, out.logits_mut());
        self.spec.drafted += drafted as u64;
        self.refresh_ops();
    }

    fn ops(&self) -> &OpCounter {
        &self.ops
    }

    fn reset_ops(&mut self) {
        self.draft.reset_ops();
        self.verify.reset_ops();
        self.ops = OpCounter::default();
        self.spec = SpeculativeStats::default();
    }

    fn stats(&self) -> Option<&SparsityStats> {
        self.draft.stats()
    }

    fn default_sampler(&self) -> Sampler {
        self.verify.default_sampler()
    }

    fn note_accepted(&mut self, accepted: usize) {
        self.spec.accepted += accepted as u64;
    }

    fn speculative_stats(&self) -> Option<SpeculativeStats> {
        Some(self.spec)
    }

    fn memory_estimate(&self) -> MemoryEstimate {
        let d = self.draft.memory_estimate();
        let v = self.verify.memory_estimate();
        let draft_kv: u64 = self
            .draft_session
            .caches
            .iter()
            .map(|c| c.content_bytes())
            .sum();
        MemoryEstimate {
            shared_bytes: d.shared_bytes + v.shared_bytes,
            weight_bytes: d.weight_bytes + v.weight_bytes,
            per_session_bytes: d.per_session_bytes + v.per_session_bytes + draft_kv,
            swapped_bytes: d.swapped_bytes + v.swapped_bytes,
        }
    }

    fn shared_state_id(&self) -> Option<usize> {
        self.draft.shared_state_id()
    }

    fn weight_format(&self) -> WeightFormat {
        self.draft.weight_format()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Builds any engine configuration against one model.
///
/// No predictor ⇒ the dense baseline; otherwise a [`SparseEngine`] over the
/// shared predictor. Convenience methods cover every predictor family in
/// the paper. `build` validates the configuration and returns `Err` instead
/// of panicking. [`parallel`](Self::parallel) sets the kernel thread count;
/// [`predictor_shared`](Self::predictor_shared) lets many engines share one
/// predictor's memory and [`pool`](Self::pool) lets them share one set of
/// parked worker threads.
#[derive(Debug)]
pub struct EngineBuilder<'m> {
    model: &'m Model,
    predictor: Option<Arc<dyn SparsityPredictor>>,
    options: EngineOptions,
    sampler: Sampler,
    parallel: ParallelOptions,
    pool: Option<ThreadPool>,
    weight_format: WeightFormat,
    quantized: Option<Arc<QuantizedWeights>>,
}

impl<'m> EngineBuilder<'m> {
    /// Starts a builder for `model` (dense, SparseInfer options, greedy
    /// sampler, single-threaded until told otherwise).
    pub fn new(model: &'m Model) -> Self {
        Self {
            model,
            predictor: None,
            options: EngineOptions::default(),
            sampler: Sampler::greedy(),
            parallel: ParallelOptions::single(),
            pool: None,
            weight_format: WeightFormat::default(),
            quantized: None,
        }
    }

    /// Selects the MLP weight storage format. [`WeightFormat::Int8`]
    /// quantizes the model's MLP weights at `build` time (unless a shared
    /// copy arrives via [`quantized_shared`](Self::quantized_shared)) and
    /// routes every decode GEMV through the fused block-dequant kernels —
    /// 4× less weight traffic, bit-identical across thread counts.
    pub fn weight_format(mut self, format: WeightFormat) -> Self {
        self.weight_format = format;
        self
    }

    /// Uses an already-quantized weight set (and implies
    /// [`WeightFormat::Int8`]) — engines built from clones of the same
    /// `Arc` share one INT8 copy, the weight analogue of
    /// [`predictor_shared`](Self::predictor_shared). Serving layers that
    /// build engines per request should quantize once at startup and pass
    /// clones here.
    pub fn quantized_shared(mut self, weights: Arc<QuantizedWeights>) -> Self {
        self.quantized = Some(weights);
        self.weight_format = WeightFormat::Int8;
        self
    }

    /// Uses an explicit boxed predictor (moved behind an `Arc`).
    pub fn predictor(mut self, predictor: Box<dyn SparsityPredictor>) -> Self {
        self.predictor = Some(Arc::from(predictor));
        self
    }

    /// Uses an already-shared predictor — engines built from clones of the
    /// same `Arc` share one copy of its state (the O(1)-batch-memory knob).
    pub fn predictor_shared(mut self, predictor: Arc<dyn SparsityPredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Uses the training-free sign-bit predictor at `schedule` (packs the
    /// model's gate sign bits now — the one-time load-time step).
    pub fn signbit(self, schedule: AlphaSchedule) -> Self {
        let p = SignBitPredictor::from_model(self.model, schedule);
        self.predictor(Box::new(p))
    }

    /// Uses the exact oracle predictor (upper bound / test reference).
    pub fn oracle(self) -> Self {
        let p = OraclePredictor::from_model(self.model);
        self.predictor(Box::new(p))
    }

    /// Uses the random-skipping baseline at skip probability `p`.
    pub fn random(self, p: f64, seed: u64) -> Self {
        let cfg = self.model.config();
        let r = RandomPredictor::new(p, cfg.mlp_dim, cfg.n_layers, seed);
        self.predictor(Box::new(r))
    }

    /// Uses a trained DejaVu-style predictor (the PowerInfer role).
    pub fn dejavu(self, predictor: DejaVuPredictor) -> Self {
        self.predictor(Box::new(predictor))
    }

    /// Sets the execution options (kernel fusion / actual sparsity).
    pub fn options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the default sampler requests fall back to.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the kernel thread count. Decoded tokens are bit-identical at
    /// every setting; only wall-clock changes. Each engine built this way
    /// spawns its own parked workers — to share one worker set across many
    /// engines (e.g. batch slots), build a [`ThreadPool`] once and pass
    /// clones via [`pool`](Self::pool) instead.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.parallel = parallel;
        self
    }

    /// Uses an existing thread pool — the worker-thread analogue of
    /// [`predictor_shared`](Self::predictor_shared): `ThreadPool` is a
    /// cheap `Arc`-backed clone handle, so N engines built from clones of
    /// one pool share one set of parked workers instead of keeping
    /// `N·(threads−1)` idle threads alive. Takes precedence over
    /// [`parallel`](Self::parallel). Tokens are unaffected either way
    /// (dispatch never changes results, only wall-clock).
    pub fn pool(mut self, pool: ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Builds the engine, validating the configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError::LayerCountMismatch`] if a predictor covers a
    /// different number of layers than the model.
    ///
    /// # Panics
    ///
    /// Panics if [`parallel`](Self::parallel) requested `threads > 1` and
    /// the OS refuses to spawn a worker thread (see [`ThreadPool::new`]);
    /// serving layers that build engines per request should construct one
    /// pool at startup and pass clones via [`pool`](Self::pool), which
    /// spawns nothing here.
    pub fn build(self) -> Result<Box<dyn Engine + 'm>, EngineError> {
        let pool = self.pool.unwrap_or_else(|| ThreadPool::new(self.parallel));
        let quantized = match self.weight_format {
            WeightFormat::F32 => None,
            WeightFormat::Int8 => {
                let q = self
                    .quantized
                    .unwrap_or_else(|| Arc::new(QuantizedWeights::quantize(self.model)));
                if !q.fits(self.model) {
                    return Err(EngineError::QuantizedWeightsMismatch {
                        reason: "layer count or MLP dimensions disagree with the model",
                    });
                }
                Some(q)
            }
        };
        match self.predictor {
            None => {
                let mut e = DenseEngine::new(self.model);
                e.sampler = self.sampler;
                e.pool = pool;
                if let Some(q) = quantized {
                    e.quantized = Some(q);
                    e.label = "dense+int8";
                }
                Ok(Box::new(e))
            }
            Some(p) => {
                let mut e = SparseEngine::new(self.model, p, self.options)?;
                e.sampler = self.sampler;
                e.pool = pool;
                if let Some(q) = quantized {
                    e.quantized = Some(q);
                    e.label.push_str("+int8");
                }
                Ok(Box::new(e))
            }
        }
    }

    /// Wraps a draft/verify engine pair into a lossless
    /// [`SpeculativeEngine`]: the draft proposes up to `k` tokens per
    /// block, the verifier confirms them in one exact scoring pass, and
    /// emitted tokens are bit-identical to running the verifier alone.
    /// Compose it from two `build()` calls over the same model — e.g. a
    /// sign-bit sparse draft and a dense verifier:
    ///
    /// ```
    /// use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
    /// use sparseinfer_predictor::AlphaSchedule;
    /// use sparseinfer_sparse::engine::EngineBuilder;
    ///
    /// let model = WeightGenerator::new(&ModelConfig::tiny(), 42).build();
    /// let draft = EngineBuilder::new(&model)
    ///     .signbit(AlphaSchedule::uniform(1.0))
    ///     .build()
    ///     .unwrap();
    /// let verify = EngineBuilder::new(&model).build().unwrap();
    /// let engine = EngineBuilder::speculative(draft, verify, 4).unwrap();
    /// assert_eq!(engine.name(), "speculative:sparse:sparseinfer+dense");
    /// ```
    ///
    /// # Errors
    ///
    /// [`EngineError::SpeculativeConfig`] if the engines execute different
    /// models or `k == 0`.
    pub fn speculative(
        draft: Box<dyn Engine + 'm>,
        verify: Box<dyn Engine + 'm>,
        k: usize,
    ) -> Result<Box<dyn Engine + 'm>, EngineError> {
        Ok(Box::new(SpeculativeEngine::new(draft, verify, k)?))
    }
}

/// Legacy greedy entry point, shared by the engines' `generate_greedy`
/// wrappers: one request through the request layer.
fn generate_greedy_via_request(
    engine: &mut dyn Engine,
    prompt: &[u32],
    max_new: usize,
    eos: u32,
) -> Vec<u32> {
    let req = crate::request::GenerateRequest::new(prompt)
        .max_new(max_new)
        .stop_at(eos)
        .sampler(Sampler::greedy());
    crate::request::generate(engine, &req)
        .expect("prompt must be non-empty")
        .tokens
}

/// Counts the dense attention work of one layer at context length `ctx`:
/// four `d×d` projections plus score/value accumulation over the context.
fn account_attention(ops: &mut OpCounter, d: usize, ctx: usize) {
    let d = d as u64;
    let ctx = ctx as u64;
    ops.macs += 4 * d * d + 2 * ctx * d;
    ops.weight_bytes_loaded += 4 * d * d * OpCounter::WEIGHT_BYTES;
    // KV cache traffic: read ctx keys + values.
    ops.activation_bytes += 2 * ctx * d * OpCounter::ACTIVATION_BYTES;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 77).build()
    }

    #[test]
    fn dense_engine_matches_model_decode() {
        let m = model();
        let mut engine = DenseEngine::new(&m);
        let expected = m.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        let actual = engine.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        assert_eq!(actual, expected);
        assert!(engine.ops().macs > 0);
    }

    #[test]
    fn builder_dense_equals_dense_engine() {
        let m = model();
        let mut built = EngineBuilder::new(&m).build().unwrap();
        let mut session = m.start_session();
        let logits = built.step(3, &mut session);
        let mut direct = DenseEngine::new(&m);
        let mut session2 = m.start_session();
        let expected = direct.step(3, &mut session2);
        assert_eq!(logits, expected);
        assert_eq!(built.name(), "dense");
        assert!(built.stats().is_none());
    }

    #[test]
    fn oracle_sparse_engine_matches_dense_decode_exactly() {
        let m = model();
        let mut engine = EngineBuilder::new(&m).oracle().build().unwrap();
        let dense = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let sparse = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
        )
        .unwrap()
        .tokens;
        assert_eq!(sparse, dense, "oracle-masked execution must be lossless");
        // And it must skip a large fraction of rows on the calibrated model.
        let eff = engine
            .stats()
            .expect("sparse engine has stats")
            .mean_effective();
        let mean: f64 = eff.iter().sum::<f64>() / eff.len() as f64;
        assert!(mean > 0.5, "mean effective sparsity {mean}");
    }

    #[test]
    fn signbit_engine_decodes_and_skips_rows() {
        let m = model();
        let mut engine = SparseEngine::new(
            &m,
            Box::new(SignBitPredictor::from_model(
                &m,
                AlphaSchedule::uniform(1.0),
            )) as Box<dyn SparsityPredictor>,
            EngineOptions::sparseinfer(),
        )
        .unwrap();
        let out = engine.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        assert_eq!(out.len(), 6);
        assert!(
            engine.ops().xor_popc > 0,
            "predictor cost must be accounted"
        );
        assert!(engine.ops().rows_skipped > 0);
        assert!(Engine::stats(&engine).expect("sparse stats").tokens() > 0);
        assert_eq!(Engine::name(&engine), "sparse:sparseinfer");
    }

    #[test]
    fn sparse_engine_does_less_mlp_work_than_dense() {
        let m = model();
        let mut dense = DenseEngine::new(&m);
        let _ = dense.generate_greedy(&[1, 2, 3], 6, u32::MAX);

        let mut sparse = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        let _ = crate::request::generate(
            sparse.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(6),
        )
        .unwrap();

        assert!(
            sparse.ops().macs < dense.ops().macs,
            "sparse {} vs dense {}",
            sparse.ops().macs,
            dense.ops().macs
        );
    }

    #[test]
    fn random_predictor_engine_diverges_from_dense() {
        let m = model();
        let dense_out = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let mut engine = EngineBuilder::new(&m).random(0.9, 5).build().unwrap();
        let sparse_out = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
        )
        .unwrap()
        .tokens;
        assert_ne!(
            sparse_out, dense_out,
            "random 90% skipping must corrupt decode"
        );
    }

    #[test]
    fn actual_sparsity_raises_effective_over_predicted() {
        let m = model();
        // A conservative schedule under-predicts, leaving room for actual
        // sparsity to help.
        let mut engine = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.5))
            .options(EngineOptions::sparseinfer())
            .build()
            .unwrap();
        let _ = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(4),
        )
        .unwrap();
        let stats = engine.stats().expect("sparse stats");
        let predicted = stats.mean_predicted();
        let effective = stats.mean_effective();
        for (l, (p, e)) in predicted.iter().zip(&effective).enumerate() {
            assert!(e >= p, "layer {l}: effective {e} < predicted {p}");
        }
        let gain: f64 = effective.iter().sum::<f64>() - predicted.iter().sum::<f64>();
        assert!(gain > 0.0, "actual sparsity must add something");
    }

    #[test]
    fn predictor_layer_mismatch_is_an_error_not_a_panic() {
        let m = model();
        let p = RandomPredictor::new(0.5, m.config().mlp_dim, 1, 1);
        let err = EngineBuilder::new(&m)
            .predictor(Box::new(p))
            .build()
            .expect_err("mismatch must be rejected");
        assert_eq!(
            err,
            EngineError::LayerCountMismatch {
                model_layers: m.layers().len(),
                predictor_layers: 1
            }
        );
    }

    #[test]
    fn builder_sampler_becomes_engine_default() {
        let m = model();
        let engine = EngineBuilder::new(&m)
            .sampler(Sampler::temperature(0.5, 3))
            .build()
            .unwrap();
        assert_eq!(engine.default_sampler().name(), "temperature");
    }

    #[test]
    fn parallel_engine_decodes_identically_to_sequential() {
        let m = model();
        let sequential = {
            let mut e = EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            crate::request::generate(
                e.as_mut(),
                &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
            )
            .unwrap()
            .tokens
        };
        for threads in [2, 4] {
            let mut e = EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .parallel(ParallelOptions::threads(threads))
                .build()
                .unwrap();
            let tokens = crate::request::generate(
                e.as_mut(),
                &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
            )
            .unwrap()
            .tokens;
            assert_eq!(tokens, sequential, "{threads} threads");
        }
    }

    #[test]
    fn engines_sharing_one_pool_decode_identically() {
        let m = model();
        let req = crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(6);
        let solo = {
            let mut e = EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            crate::request::generate(e.as_mut(), &req).unwrap().tokens
        };
        // One worker set serves many engines — including concurrently from
        // batch slot threads, where the pool's in-flight-dispatch fallback
        // keeps the second dispatcher inline.
        let kernel_pool = ThreadPool::new(ParallelOptions::threads(2));
        let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
            &m,
            AlphaSchedule::uniform(1.0),
        ));
        let mut batch = crate::batch::Batch::new().parallel(ParallelOptions::threads(2));
        for _ in 0..4 {
            let engine = EngineBuilder::new(&m)
                .predictor_shared(Arc::clone(&shared))
                .pool(kernel_pool.clone())
                .build()
                .unwrap();
            batch.push(engine, &req).unwrap();
        }
        for output in batch.run() {
            assert_eq!(output.tokens, solo, "request {}", output.id);
        }
    }

    #[test]
    fn shared_predictor_reports_one_shared_state_id() {
        let m = model();
        let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
            &m,
            AlphaSchedule::uniform(1.0),
        ));
        let a = EngineBuilder::new(&m)
            .predictor_shared(Arc::clone(&shared))
            .build()
            .unwrap();
        let b = EngineBuilder::new(&m)
            .predictor_shared(Arc::clone(&shared))
            .build()
            .unwrap();
        assert_eq!(a.shared_state_id(), b.shared_state_id());
        assert!(a.shared_state_id().is_some());
        assert_eq!(
            a.memory_estimate().shared_bytes,
            shared.memory_bytes(),
            "shared bytes are the predictor's packed tables"
        );
        // A separately built engine has different shared identity.
        let c = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        assert_ne!(a.shared_state_id(), c.shared_state_id());
        // The dense baseline shares nothing.
        let d = EngineBuilder::new(&m).build().unwrap();
        assert_eq!(d.shared_state_id(), None);
        assert_eq!(d.memory_estimate().shared_bytes, 0);
    }

    #[test]
    fn score_block_matches_sequential_single_steps() {
        let m = model();
        fn dense(m: &Model) -> Box<dyn Engine + '_> {
            EngineBuilder::new(m).build().unwrap()
        }
        fn sparse(m: &Model) -> Box<dyn Engine + '_> {
            EngineBuilder::new(m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap()
        }
        type Build = fn(&Model) -> Box<dyn Engine + '_>;
        let builders: [Build; 2] = [dense, sparse];
        for build in builders {
            let tokens = [3u32, 1, 4, 1, 5];
            let mut blocked = build(&m);
            let mut block_session = m.start_session();
            let mut block_logits: Vec<Vector> =
                (0..tokens.len()).map(|_| Vector::zeros(0)).collect();
            blocked.score_block_into(&tokens, &mut block_session, &mut block_logits);
            assert_eq!(block_session.position, tokens.len());

            let mut stepped = build(&m);
            let mut step_session = m.start_session();
            let mut logits = Vector::zeros(0);
            for (i, &t) in tokens.iter().enumerate() {
                stepped.step_into(t, &mut step_session, &mut logits);
                assert_eq!(
                    block_logits[i],
                    logits,
                    "{}: position {i} must score identically",
                    blocked.name()
                );
            }
        }
    }

    fn speculative_over(m: &Model, k: usize) -> Box<dyn Engine + '_> {
        let draft = EngineBuilder::new(m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        let verify = EngineBuilder::new(m).build().unwrap();
        EngineBuilder::speculative(draft, verify, k).unwrap()
    }

    #[test]
    fn speculative_decode_is_bit_identical_to_dense() {
        let m = model();
        let dense = m.generate_greedy(&[1, 2, 3], 12, u32::MAX);
        for k in [1, 2, 4, 8] {
            let mut engine = speculative_over(&m, k);
            let tokens = crate::request::generate(
                engine.as_mut(),
                &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(12),
            )
            .unwrap()
            .tokens;
            assert_eq!(tokens, dense, "k = {k} must be lossless");
            let spec = engine.speculative_stats().expect("speculative counters");
            assert!(spec.drafted > 0, "k = {k} must draft");
        }
    }

    #[test]
    fn oracle_draft_gets_full_acceptance() {
        let m = model();
        // The oracle predictor's sparse decode is exactly dense decode, so
        // every greedy proposal matches what the verifier samples.
        let draft = EngineBuilder::new(&m).oracle().build().unwrap();
        let verify = EngineBuilder::new(&m).build().unwrap();
        let mut engine = EngineBuilder::speculative(draft, verify, 4).unwrap();
        let tokens = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(12),
        )
        .unwrap()
        .tokens;
        assert_eq!(tokens, m.generate_greedy(&[1, 2, 3], 12, u32::MAX));
        let spec = engine.speculative_stats().expect("speculative counters");
        assert_eq!(
            spec.accepted, spec.drafted,
            "an exact draft must never be rejected"
        );
        assert!(spec.drafted > 0);
        assert!((spec.acceptance_rate() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn speculative_matches_dense_under_seeded_sampling() {
        let m = model();
        // Sampled decode disagrees with the draft's greedy chain often,
        // exercising the mismatch-correction and rollback paths — tokens
        // must still be bit-identical to the dense-only stream.
        let req = crate::request::GenerateRequest::new(&[2, 4])
            .max_new(10)
            .sampler(Sampler::temperature(1.0, 123));
        let dense = {
            let mut e = EngineBuilder::new(&m).build().unwrap();
            crate::request::generate(e.as_mut(), &req).unwrap().tokens
        };
        let mut engine = speculative_over(&m, 4);
        let spec_tokens = crate::request::generate(engine.as_mut(), &req)
            .unwrap()
            .tokens;
        assert_eq!(spec_tokens, dense);
    }

    #[test]
    fn speculative_step_block_respects_the_limit() {
        let m = model();
        let mut engine = speculative_over(&m, 8);
        let mut session = m.start_session();
        let mut logits = Vector::zeros(0);
        engine.step_into(7, &mut session, &mut logits);
        let mut block = StepBlock::new();
        // limit = 1 leaves no room to speculate: a pure dense step.
        engine.step_block_into(3, &mut session, 1, &mut block);
        assert!(block.proposals().is_empty());
        assert_eq!(session.position, 2);
        // limit = 3 caps drafting at 2 proposals even though k = 8.
        engine.step_block_into(5, &mut session, 3, &mut block);
        assert!(block.proposals().len() <= 2, "{}", block.proposals().len());
        assert_eq!(session.position, 3 + block.proposals().len());
    }

    #[test]
    fn speculative_pairing_is_validated() {
        let m = model();
        let draft = EngineBuilder::new(&m).build().unwrap();
        let verify = EngineBuilder::new(&m).build().unwrap();
        let err = EngineBuilder::speculative(draft, verify, 0).unwrap_err();
        assert!(matches!(err, EngineError::SpeculativeConfig { .. }));

        let other = WeightGenerator::new(&ModelConfig::tiny(), 78).build();
        let draft = EngineBuilder::new(&other).build().unwrap();
        let verify = EngineBuilder::new(&m).build().unwrap();
        let err = EngineBuilder::speculative(draft, verify, 4).unwrap_err();
        assert!(matches!(err, EngineError::SpeculativeConfig { .. }));
    }

    #[test]
    fn int8_engines_decode_and_report_shrunken_weights() {
        let m = model();
        let mut engine = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .weight_format(WeightFormat::Int8)
            .build()
            .unwrap();
        assert_eq!(engine.name(), "sparse:sparseinfer+int8");
        assert_eq!(engine.weight_format(), WeightFormat::Int8);
        let out = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(6),
        )
        .unwrap()
        .tokens;
        assert_eq!(out.len(), 6);
        assert!(engine.ops().rows_skipped > 0);

        let est = engine.memory_estimate();
        let cfg = m.config();
        let fp32_mlp =
            (3 * cfg.n_layers * cfg.mlp_dim * cfg.hidden_dim * std::mem::size_of::<f32>()) as u64;
        let ratio = fp32_mlp as f64 / est.weight_bytes as f64;
        assert!(
            (3.4..4.01).contains(&ratio),
            "int8 copy must be ~4x smaller: {ratio}"
        );
        assert!(
            est.shared_bytes >= est.weight_bytes,
            "subcomponent invariant"
        );

        let mut dense8 = EngineBuilder::new(&m)
            .weight_format(WeightFormat::Int8)
            .build()
            .unwrap();
        assert_eq!(dense8.name(), "dense+int8");
        assert_eq!(dense8.weight_format(), WeightFormat::Int8);
        let out = crate::request::generate(
            dense8.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(6),
        )
        .unwrap()
        .tokens;
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn int8_decode_is_bit_identical_across_thread_counts() {
        let m = model();
        // One shared INT8 copy so all three configurations execute the same
        // quantized values; the claim under test is reduction-order
        // invariance across thread counts.
        let q = Arc::new(QuantizedWeights::quantize(&m));
        let run = |threads: usize| {
            let mut e = EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .quantized_shared(Arc::clone(&q))
                .parallel(ParallelOptions::threads(threads))
                .build()
                .unwrap();
            crate::request::generate(
                e.as_mut(),
                &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(8),
            )
            .unwrap()
            .tokens
        };
        let solo = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), solo, "{threads} threads");
        }
    }

    #[test]
    fn quantized_weights_share_one_copy_and_reject_foreign_models() {
        let m = model();
        let q = Arc::new(QuantizedWeights::quantize(&m));
        let shared: Arc<dyn SparsityPredictor> = Arc::new(SignBitPredictor::from_model(
            &m,
            AlphaSchedule::uniform(1.0),
        ));
        let a = EngineBuilder::new(&m)
            .predictor_shared(Arc::clone(&shared))
            .quantized_shared(Arc::clone(&q))
            .build()
            .unwrap();
        let b = EngineBuilder::new(&m)
            .predictor_shared(Arc::clone(&shared))
            .quantized_shared(Arc::clone(&q))
            .build()
            .unwrap();
        assert_eq!(a.shared_state_id(), b.shared_state_id());
        assert_eq!(a.memory_estimate().weight_bytes, q.size_bytes());

        // A different predictor instance changes the shared identity even
        // with the same quantized copy.
        let c = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .quantized_shared(Arc::clone(&q))
            .build()
            .unwrap();
        assert_ne!(a.shared_state_id(), c.shared_state_id());

        // Quantized weights from another model are rejected as a value.
        let mut wide = ModelConfig::tiny();
        wide.mlp_dim = 128;
        let other = WeightGenerator::new(&wide, 5).build();
        let err = EngineBuilder::new(&other)
            .quantized_shared(Arc::clone(&q))
            .build();
        assert!(matches!(
            err,
            Err(EngineError::QuantizedWeightsMismatch { .. })
        ));
    }

    #[test]
    fn speculative_int8_draft_stays_lossless() {
        let m = model();
        // An INT8 sparse draft proposes, the f32 dense verifier confirms:
        // emitted tokens must still be bit-identical to dense-only decode.
        let draft = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .weight_format(WeightFormat::Int8)
            .build()
            .unwrap();
        let verify = EngineBuilder::new(&m).build().unwrap();
        let mut engine = EngineBuilder::speculative(draft, verify, 4).unwrap();
        assert_eq!(engine.weight_format(), WeightFormat::Int8, "draft's format");
        let tokens = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2, 3]).max_new(12),
        )
        .unwrap()
        .tokens;
        assert_eq!(tokens, m.generate_greedy(&[1, 2, 3], 12, u32::MAX));
        assert!(engine.speculative_stats().expect("counters").drafted > 0);
    }

    #[test]
    fn speculative_reset_clears_both_engines_and_counters() {
        let m = model();
        let mut engine = speculative_over(&m, 4);
        let _ = crate::request::generate(
            engine.as_mut(),
            &crate::request::GenerateRequest::new(&[1, 2]).max_new(6),
        )
        .unwrap();
        assert!(engine.ops().macs > 0);
        assert!(engine.speculative_stats().expect("counters").drafted > 0);
        engine.reset_ops();
        assert_eq!(engine.ops().macs, 0);
        assert_eq!(
            engine.speculative_stats().expect("counters"),
            SpeculativeStats::default()
        );
    }
}
