//! Whole-model inference engines.
//!
//! Three frontends share the same model weights and the same attention path,
//! differing only in how they execute the MLP blocks:
//!
//! * [`DenseEngine`] — every row computed; the llama.cpp baseline.
//! * [`SparseEngine`] driven by a
//!   [`SignBitPredictor`](sparseinfer_predictor::SignBitPredictor) — the
//!   SparseInfer engine (with `+KF`/`+AS` switches).
//! * [`SparseEngine`] driven by a
//!   [`DejaVuPredictor`](sparseinfer_predictor::DejaVuPredictor) — the
//!   PowerInfer-style baseline.
//!
//! Engines accumulate [`OpCounter`] statistics and per-layer sparsity so the
//! benchmark harness can hand *measured* masks and traffic to the GPU cost
//! model.

use sparseinfer_model::model::DecodeSession;
use sparseinfer_model::Model;
use sparseinfer_predictor::{SkipMask, SparsityPredictor};
use sparseinfer_tensor::Vector;

use crate::mlp::{dense_mlp_forward, sparse_mlp_forward, MlpOptions};
use crate::ops::OpCounter;

/// Per-engine execution options (the paper's Fig. 4 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// MLP execution switches.
    pub mlp: MlpOptions,
}

impl EngineOptions {
    /// Full SparseInfer configuration: kernel fusion + actual sparsity.
    pub fn sparseinfer() -> Self {
        Self { mlp: MlpOptions { kernel_fusion: true, actual_sparsity: true } }
    }

    /// Base variant: prediction only, no fusion, no actual sparsity.
    pub fn base() -> Self {
        Self { mlp: MlpOptions { kernel_fusion: false, actual_sparsity: false } }
    }

    /// Base + kernel fusion.
    pub fn with_kernel_fusion() -> Self {
        Self { mlp: MlpOptions { kernel_fusion: true, actual_sparsity: false } }
    }

    /// Base + actual sparsity.
    pub fn with_actual_sparsity() -> Self {
        Self { mlp: MlpOptions { kernel_fusion: false, actual_sparsity: true } }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::sparseinfer()
    }
}

/// Accumulated per-layer sparsity statistics of a decode run.
#[derive(Debug, Clone, Default)]
pub struct SparsityStats {
    predicted_sum: Vec<f64>,
    effective_sum: Vec<f64>,
    tokens: u64,
}

impl SparsityStats {
    fn new(n_layers: usize) -> Self {
        Self {
            predicted_sum: vec![0.0; n_layers],
            effective_sum: vec![0.0; n_layers],
            tokens: 0,
        }
    }

    /// Mean predicted sparsity per layer.
    pub fn mean_predicted(&self) -> Vec<f64> {
        self.means(&self.predicted_sum)
    }

    /// Mean effective (predicted ∪ actual) sparsity per layer.
    pub fn mean_effective(&self) -> Vec<f64> {
        self.means(&self.effective_sum)
    }

    /// Number of tokens recorded.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    fn means(&self, sums: &[f64]) -> Vec<f64> {
        if self.tokens == 0 {
            return vec![0.0; sums.len()];
        }
        sums.iter().map(|s| s / self.tokens as f64).collect()
    }
}

/// Dense decoding engine (the llama.cpp baseline) with op accounting.
#[derive(Debug)]
pub struct DenseEngine<'m> {
    model: &'m Model,
    ops: OpCounter,
}

impl<'m> DenseEngine<'m> {
    /// Wraps a model.
    pub fn new(model: &'m Model) -> Self {
        Self { model, ops: OpCounter::default() }
    }

    /// The accumulated operation counts.
    pub fn ops(&self) -> &OpCounter {
        &self.ops
    }

    /// Resets the accumulated counts.
    pub fn reset_ops(&mut self) {
        self.ops = OpCounter::default();
    }

    /// Forward one token (dense MLPs), counting operations.
    pub fn forward_token(&mut self, token: u32, session: &mut DecodeSession) -> Vector {
        let model = self.model;
        let mut h = model.embed(token);
        for (layer, cache) in model.layers().iter().zip(session.caches.iter_mut()) {
            let mid = layer.attention_half(&h, session.position, cache);
            account_attention(&mut self.ops, layer.hidden_dim(), cache.len());
            let x = layer.mlp_norm().forward(&mid);
            let mlp_out = dense_mlp_forward(layer.mlp(), &x, &mut self.ops);
            h = mid;
            h.add_assign(&mlp_out);
        }
        session.position += 1;
        model.logits(&h)
    }

    /// Greedy generation with dense execution.
    pub fn generate_greedy(&mut self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        generate_greedy_with(prompt, max_new, eos, self.model, |engine_token, session| {
            self.forward_token(engine_token, session)
        })
    }
}

/// Sparsity-exploiting decoding engine, generic over the predictor.
#[derive(Debug)]
pub struct SparseEngine<'m, P: SparsityPredictor> {
    model: &'m Model,
    predictor: P,
    options: EngineOptions,
    ops: OpCounter,
    stats: SparsityStats,
}

impl<'m, P: SparsityPredictor> SparseEngine<'m, P> {
    /// Wraps a model and predictor.
    ///
    /// # Panics
    ///
    /// Panics if the predictor covers a different number of layers than the
    /// model.
    pub fn new(model: &'m Model, predictor: P, options: EngineOptions) -> Self {
        assert_eq!(
            predictor.n_layers(),
            model.layers().len(),
            "predictor/model layer count mismatch"
        );
        let n = model.layers().len();
        Self { model, predictor, options, ops: OpCounter::default(), stats: SparsityStats::new(n) }
    }

    /// The accumulated operation counts.
    pub fn ops(&self) -> &OpCounter {
        &self.ops
    }

    /// The accumulated sparsity statistics.
    pub fn stats(&self) -> &SparsityStats {
        &self.stats
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Mutable access to the predictor (e.g. to change the alpha schedule
    /// mid-experiment).
    pub fn predictor_mut(&mut self) -> &mut P {
        &mut self.predictor
    }

    /// Resets counters and statistics.
    pub fn reset_ops(&mut self) {
        self.ops = OpCounter::default();
        self.stats = SparsityStats::new(self.model.layers().len());
    }

    /// Forward one token, predicting and exploiting sparsity in every MLP.
    pub fn forward_token(&mut self, token: u32, session: &mut DecodeSession) -> Vector {
        let model = self.model;
        let mut h = model.embed(token);
        for (li, (layer, cache)) in model
            .layers()
            .iter()
            .zip(session.caches.iter_mut())
            .enumerate()
        {
            let mid = layer.attention_half(&h, session.position, cache);
            account_attention(&mut self.ops, layer.hidden_dim(), cache.len());
            let x = layer.mlp_norm().forward(&mid);

            let mask: SkipMask = self.predictor.predict(li, &x);
            let cost = self.predictor.prediction_cost(li);
            self.ops.xor_popc += cost.xor_popc;
            self.ops.predictor_macs += cost.macs;
            self.ops.weight_bytes_loaded += cost.bytes_loaded;

            let out = sparse_mlp_forward(layer.mlp(), &x, &mask, self.options.mlp, &mut self.ops);
            self.stats.predicted_sum[li] += out.predicted_sparsity;
            self.stats.effective_sum[li] += out.effective_sparsity;

            h = mid;
            h.add_assign(&out.output);
        }
        self.stats.tokens += 1;
        session.position += 1;
        model.logits(&h)
    }

    /// Greedy generation with sparse execution. The prefill phase runs
    /// *densely* (the paper exploits sparsity only during decode).
    pub fn generate_greedy(&mut self, prompt: &[u32], max_new: usize, eos: u32) -> Vec<u32> {
        generate_greedy_with(prompt, max_new, eos, self.model, |token, session| {
            self.forward_token(token, session)
        })
    }
}

/// Shared greedy decode loop: dense prefill, engine-specific decode.
fn generate_greedy_with(
    prompt: &[u32],
    max_new: usize,
    eos: u32,
    model: &Model,
    mut step: impl FnMut(u32, &mut DecodeSession) -> Vector,
) -> Vec<u32> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let mut session = model.start_session();
    // Dense prefill (all but the last prompt token go through the dense
    // model; the last token goes through the engine so decode statistics
    // start with the first generated token).
    let mut logits = Vector::zeros(model.config().vocab_size);
    for t in &prompt[..prompt.len() - 1] {
        logits = model.forward_token(*t, &mut session);
    }
    let _ = logits;
    let mut logits = step(prompt[prompt.len() - 1], &mut session);
    let mut out = Vec::new();
    for _ in 0..max_new {
        let next = logits.argmax().expect("nonzero vocab") as u32;
        if next == eos {
            break;
        }
        out.push(next);
        logits = step(next, &mut session);
    }
    out
}

/// Counts the dense attention work of one layer at context length `ctx`:
/// four `d×d` projections plus score/value accumulation over the context.
fn account_attention(ops: &mut OpCounter, d: usize, ctx: usize) {
    let d = d as u64;
    let ctx = ctx as u64;
    ops.macs += 4 * d * d + 2 * ctx * d;
    ops.weight_bytes_loaded += 4 * d * d * OpCounter::WEIGHT_BYTES;
    // KV cache traffic: read ctx keys + values.
    ops.activation_bytes += 2 * ctx * d * OpCounter::ACTIVATION_BYTES;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_predictor::{
        AlphaSchedule, OraclePredictor, RandomPredictor, SignBitPredictor,
    };

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 77).build()
    }

    #[test]
    fn dense_engine_matches_model_decode() {
        let m = model();
        let mut engine = DenseEngine::new(&m);
        let expected = m.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        let actual = engine.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        assert_eq!(actual, expected);
        assert!(engine.ops().macs > 0);
    }

    #[test]
    fn oracle_sparse_engine_matches_dense_decode_exactly() {
        let m = model();
        let oracle = OraclePredictor::from_model(&m);
        let mut engine = SparseEngine::new(&m, oracle, EngineOptions::sparseinfer());
        let dense = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let sparse = engine.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        assert_eq!(sparse, dense, "oracle-masked execution must be lossless");
        // And it must skip a large fraction of rows on the calibrated model.
        let eff = engine.stats().mean_effective();
        let mean: f64 = eff.iter().sum::<f64>() / eff.len() as f64;
        assert!(mean > 0.5, "mean effective sparsity {mean}");
    }

    #[test]
    fn signbit_engine_decodes_and_skips_rows() {
        let m = model();
        let p = SignBitPredictor::from_model(&m, AlphaSchedule::uniform(1.0));
        let mut engine = SparseEngine::new(&m, p, EngineOptions::sparseinfer());
        let out = engine.generate_greedy(&[1, 2, 3], 6, u32::MAX);
        assert_eq!(out.len(), 6);
        assert!(engine.ops().xor_popc > 0, "predictor cost must be accounted");
        assert!(engine.ops().rows_skipped > 0);
        assert!(engine.stats().tokens() > 0);
    }

    #[test]
    fn sparse_engine_does_less_mlp_work_than_dense() {
        let m = model();
        let mut dense = DenseEngine::new(&m);
        let _ = dense.generate_greedy(&[1, 2, 3], 6, u32::MAX);

        let p = SignBitPredictor::from_model(&m, AlphaSchedule::uniform(1.0));
        let mut sparse = SparseEngine::new(&m, p, EngineOptions::sparseinfer());
        let _ = sparse.generate_greedy(&[1, 2, 3], 6, u32::MAX);

        assert!(
            sparse.ops().macs < dense.ops().macs,
            "sparse {} vs dense {}",
            sparse.ops().macs,
            dense.ops().macs
        );
    }

    #[test]
    fn random_predictor_engine_diverges_from_dense() {
        let m = model();
        let dense_out = m.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        let p = RandomPredictor::new(0.9, m.config().mlp_dim, m.config().n_layers, 5);
        let mut engine = SparseEngine::new(&m, p, EngineOptions::sparseinfer());
        let sparse_out = engine.generate_greedy(&[1, 2, 3], 8, u32::MAX);
        assert_ne!(sparse_out, dense_out, "random 90% skipping must corrupt decode");
    }

    #[test]
    fn actual_sparsity_raises_effective_over_predicted() {
        let m = model();
        // A conservative schedule under-predicts, leaving room for actual
        // sparsity to help.
        let p = SignBitPredictor::from_model(&m, AlphaSchedule::uniform(1.5));
        let mut engine = SparseEngine::new(&m, p, EngineOptions::sparseinfer());
        let _ = engine.generate_greedy(&[1, 2, 3], 4, u32::MAX);
        let predicted = engine.stats().mean_predicted();
        let effective = engine.stats().mean_effective();
        for (l, (p, e)) in predicted.iter().zip(&effective).enumerate() {
            assert!(e >= p, "layer {l}: effective {e} < predicted {p}");
        }
        let gain: f64 =
            effective.iter().sum::<f64>() - predicted.iter().sum::<f64>();
        assert!(gain > 0.0, "actual sparsity must add something");
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn predictor_layer_mismatch_panics() {
        let m = model();
        let p = RandomPredictor::new(0.5, m.config().mlp_dim, 1, 1);
        let _ = SparseEngine::new(&m, p, EngineOptions::base());
    }
}
