//! The request layer: prompts in, sampled token streams out.
//!
//! A [`GenerateRequest`] bundles everything one generation needs — prompt,
//! budget, stop tokens and an optional [`Sampler`] — and [`generate`] /
//! [`generate_streaming`] run it against any [`Engine`]. The same
//! [`RequestRun`] state machine drives the single-request path here and the
//! multi-session [`Batch`](crate::batch::Batch) scheduler, so a request
//! decodes bit-identically alone or interleaved with others.
//!
//! Prefill is always dense (the paper exploits sparsity only during
//! decode): all but the last prompt token go through the bare model, the
//! last token goes through the engine so decode statistics start with the
//! first generated token.

use sparseinfer_model::kv::{KvBlockPool, PrefixHit, SwappedKvCache, DEFAULT_BLOCK_TOKENS};
use sparseinfer_model::model::DecodeSession;
use sparseinfer_model::sampling::Sampler;
use sparseinfer_tensor::Vector;

use crate::engine::{Engine, StepBlock};
use crate::error::EngineError;

/// Why a generation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The `max_new` budget was exhausted.
    MaxTokens,
    /// A stop token was sampled (the token is not part of the output).
    Stop(u32),
    /// The request was cancelled (queued or mid-stream) through a
    /// [`RequestHandle`](crate::scheduler::RequestHandle); the tokens
    /// generated before the cancellation are preserved.
    Cancelled,
    /// The request's deadline passed before it finished (queued or
    /// mid-stream), signalled through
    /// [`RequestHandle::expire`](crate::scheduler::RequestHandle::expire)
    /// by a serving loop enforcing per-request deadlines. Like
    /// cancellation, the tokens generated before expiry are preserved.
    DeadlineExceeded,
    /// Decoding failed mid-run; the tokens generated before the failure
    /// are preserved. Produced by the
    /// [`Scheduler`](crate::scheduler::Scheduler), which must keep serving
    /// its other slots — the single-request [`generate`] path surfaces the
    /// error as `Err` instead.
    Failed(EngineError),
}

/// Scheduling priority class of a request.
///
/// Priority orders **admission**, never math: the scheduler admits FIFO
/// within a class and higher classes first, and may preempt lower-class
/// slots to make room — but a request's tokens depend only on its own
/// engine, sampler and prompt, so priority (like preemption) can change
/// *when* tokens arrive, never *which* tokens arrive. Ordered so that
/// `Batch < Normal < High`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput traffic: admitted last, first in line for preemption.
    Batch,
    /// The default class for interactive traffic.
    #[default]
    Normal,
    /// Latency-critical traffic: admitted first, may preempt lower
    /// classes under slot or KV pressure.
    High,
}

impl Priority {
    /// The wire/CLI name of the class (`"high"`, `"normal"`, `"batch"`).
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One generation request.
///
/// # Example
///
/// ```
/// use sparseinfer_model::Sampler;
/// use sparseinfer_sparse::request::{GenerateRequest, Priority};
///
/// let req = GenerateRequest::new(&[1, 2, 3])
///     .max_new(32)
///     .stop_at(0)
///     .priority(Priority::High)
///     .sampler(Sampler::top_k(8, 0.7, 42));
/// assert_eq!(req.max_new, 32);
/// ```
#[derive(Debug, Clone)]
pub struct GenerateRequest {
    /// Prompt token ids (must be non-empty at run time).
    pub prompt: Vec<u32>,
    /// Maximum number of new tokens to generate.
    pub max_new: usize,
    /// Tokens that end the generation when sampled (e.g. EOS).
    pub stop: Vec<u32>,
    /// Sampling policy; `None` falls back to the engine's default sampler.
    pub sampler: Option<Sampler>,
    /// Scheduling priority class (admission order and preemption
    /// eligibility inside the scheduler; ignored by the single-request
    /// [`generate`] path).
    pub priority: Priority,
}

impl GenerateRequest {
    /// A request with a 16-token budget, no stop tokens, `Normal` priority
    /// and the engine's default sampler.
    pub fn new(prompt: &[u32]) -> Self {
        Self {
            prompt: prompt.to_vec(),
            max_new: 16,
            stop: Vec::new(),
            sampler: None,
            priority: Priority::Normal,
        }
    }

    /// Sets the new-token budget.
    pub fn max_new(mut self, max_new: usize) -> Self {
        self.max_new = max_new;
        self
    }

    /// Adds a stop token.
    pub fn stop_at(mut self, token: u32) -> Self {
        self.stop.push(token);
        self
    }

    /// Sets the sampling policy.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Sets the scheduling priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A finished generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    /// The generated tokens (stop token excluded).
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
}

/// One streamed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// Zero-based position in the generated continuation.
    pub index: usize,
    /// The token id.
    pub token: u32,
}

/// The per-request decode state machine.
///
/// Each [`advance`](RequestRun::advance) call performs exactly one model
/// step (a prefill token or a decode *block*), which is the granularity the
/// batch scheduler interleaves at. A prefill step emits no tokens; a decode
/// step emits between one and `k + 1` [`TokenEvent`]s (plain engines emit
/// exactly one, speculative engines emit one per accepted draft plus the
/// correction/bonus token), collected via [`events`](Self::events). Used
/// directly only by the scheduler; normal callers go through [`generate`] /
/// [`generate_streaming`].
#[derive(Debug)]
pub struct RequestRun {
    prompt: Vec<u32>,
    fed: usize,
    /// Leading prompt positions whose KV arrived pre-computed from a
    /// prefix-cache hit. [`advance`](Self::advance) still *consumes* one
    /// call per cached position — the scheduling cadence is identical to
    /// an uncached run, which is what keeps warm and cold event streams
    /// bit-identical — but performs no model work for them.
    prefill_cached: usize,
    max_new: usize,
    stop: Vec<u32>,
    sampler: Sampler,
    session: DecodeSession,
    /// Recycled logits buffer for the prefill→decode handoff: the last
    /// prompt token's engine step writes here, and the first decode tick
    /// samples from it.
    logits: Vector,
    has_logits: bool,
    /// The sampled-but-not-yet-fed token decode feeds on its next tick:
    /// the acceptance loop always ends on a token whose KV the engine has
    /// not seen (the correction after a mismatch, or the bonus token after
    /// a fully accepted block).
    pending: Option<u32>,
    /// Recycled block-step buffer (draft proposals + verified logits).
    block: StepBlock,
    /// Tokens emitted by the most recent [`advance`](Self::advance) call,
    /// cleared at the start of the next — recycled, so steady-state decode
    /// allocates nothing at the request layer.
    events: Vec<TokenEvent>,
    tokens: Vec<u32>,
    /// Tokens this run must regenerate silently after a drop-and-recompute
    /// preemption: sampling re-derives them bit-identically (same seed,
    /// same prompt), and [`advance`](Self::advance) suppresses their
    /// [`TokenEvent`]s — the stream already delivered them before the
    /// preemption. Empty on a normal run.
    replay: Vec<u32>,
    finish: Option<FinishReason>,
}

impl RequestRun {
    /// Prepares a run of `req` on `engine` (fresh session, resolved
    /// sampler) over a **private** KV block pool: cache blocks are
    /// allocated lazily as tokens are produced — a request that stops at
    /// token three never paid for `prompt + max_new` positions of KV.
    /// Serving layers that multiplex many runs over one budgeted pool use
    /// [`with_kv_pool`](Self::with_kv_pool) instead.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty.
    pub fn new(req: &GenerateRequest, engine: &dyn Engine) -> Result<Self, EngineError> {
        Self::with_kv_pool(req, engine, &KvBlockPool::new(DEFAULT_BLOCK_TOKENS))
    }

    /// Prepares a run whose session pages its KV storage out of `pool` —
    /// the entry point the continuous-batching
    /// [`Scheduler`](crate::scheduler::Scheduler) uses so every slot
    /// draws on one budgeted pool and returns its blocks at retirement.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty.
    pub fn with_kv_pool(
        req: &GenerateRequest,
        engine: &dyn Engine,
        pool: &KvBlockPool,
    ) -> Result<Self, EngineError> {
        Self::with_prefix(req, engine, pool, None)
    }

    /// Prepares a pool-backed run whose session starts with the shared KV
    /// blocks of a prefix-cache hit, when one is given: the hit's
    /// positions are attached (aliased, not recomputed), and
    /// [`advance`](Self::advance) walks through them as **no-op prefill
    /// steps** — one call per position, zero model work. Preserving the
    /// one-position-per-step cadence is what makes a warm run's scheduler
    /// event stream bit-identical to the cold run's; the saved prefill
    /// *compute* is the win, reported via
    /// [`prefill_skipped_tokens`](Self::prefill_skipped_tokens).
    ///
    /// The hit must come from an index keyed by this engine's model and
    /// this run's prompt tokens (the scheduler guarantees both), and must
    /// cover at most `prompt.len() - 1` positions — the densely prefilled
    /// region, which is all that is engine-independent.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty.
    ///
    /// # Panics
    ///
    /// Panics if the hit covers the whole prompt or more (the final
    /// prompt token must go through the engine).
    pub fn with_prefix(
        req: &GenerateRequest,
        engine: &dyn Engine,
        pool: &KvBlockPool,
        prefix: Option<&PrefixHit>,
    ) -> Result<Self, EngineError> {
        Self::with_replay(req, engine, pool, prefix, Vec::new())
    }

    /// Prepares a pool-backed run that **recomputes** a preempted request:
    /// decoding restarts from the prompt (optionally warm through
    /// `prefix`), and the first `replay.len()` sampled tokens — which
    /// deterministic seeded sampling reproduces bit-identically — are
    /// regenerated *silently*: [`advance`](Self::advance) rebuilds their
    /// KV state but emits no [`TokenEvent`] for them, because the stream
    /// already delivered them before the preemption. Token events resume
    /// at index `replay.len()`, so a consumer sees one gapless stream.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty.
    ///
    /// # Panics
    ///
    /// Panics if `replay` is not shorter than `max_new` (a run that
    /// exhausted its budget is finished and cannot be recomputed), or if
    /// the prefix hit covers the whole prompt.
    pub fn with_replay(
        req: &GenerateRequest,
        engine: &dyn Engine,
        pool: &KvBlockPool,
        prefix: Option<&PrefixHit>,
        replay: Vec<u32>,
    ) -> Result<Self, EngineError> {
        assert!(
            replay.is_empty() || replay.len() < req.max_new,
            "replay of {} tokens must stay under the {}-token budget",
            replay.len(),
            req.max_new
        );
        if req.prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let prefill_cached = prefix.map_or(0, |hit| hit.tokens);
        assert!(
            prefill_cached < req.prompt.len(),
            "prefix hit ({prefill_cached} tokens) must stay within the densely \
             prefilled region of a {}-token prompt",
            req.prompt.len()
        );
        let sampler = req
            .sampler
            .clone()
            .unwrap_or_else(|| engine.default_sampler());
        Ok(Self {
            prompt: req.prompt.clone(),
            fed: 0,
            prefill_cached,
            max_new: req.max_new,
            stop: req.stop.clone(),
            sampler,
            // Lazy paged growth: blocks are allocated as tokens are
            // produced, never reserved for the whole budget up front. A
            // prefix hit attaches its shared blocks and starts the
            // session's position past them.
            session: match prefix {
                Some(hit) => engine.model().start_paged_session_with_prefix(pool, hit),
                None => engine.model().start_paged_session(pool),
            },
            logits: Vector::zeros(0),
            has_logits: false,
            pending: None,
            block: StepBlock::new(),
            events: Vec::new(),
            tokens: Vec::new(),
            replay,
            // A zero budget can produce nothing: finish immediately rather
            // than paying a full engine step whose logits are never
            // sampled.
            finish: if req.max_new == 0 {
                Some(FinishReason::MaxTokens)
            } else {
                None
            },
        })
    }

    /// Whether the run has finished.
    pub fn finished(&self) -> bool {
        self.finish.is_some()
    }

    /// Marks a still-running request as cancelled: the next
    /// [`advance`](Self::advance) is a no-op and retirement records
    /// [`FinishReason::Cancelled`] with the tokens produced so far. A run
    /// that already finished keeps its original reason.
    pub fn cancel(&mut self) {
        if self.finish.is_none() {
            self.finish = Some(FinishReason::Cancelled);
        }
    }

    /// Marks a still-running request as past its deadline: the next
    /// [`advance`](Self::advance) is a no-op and retirement records
    /// [`FinishReason::DeadlineExceeded`] with the tokens produced so far.
    /// A run that already finished keeps its original reason.
    pub fn expire(&mut self) {
        if self.finish.is_none() {
            self.finish = Some(FinishReason::DeadlineExceeded);
        }
    }

    /// Context tokens absorbed so far (prompt fed plus tokens decoded) —
    /// the quantity KV memory is proportional to under paged growth.
    pub fn context_len(&self) -> usize {
        self.session.context_len()
    }

    /// The tokens generated so far.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The prompt this run decodes from.
    pub fn prompt(&self) -> &[u32] {
        &self.prompt
    }

    /// Prompt positions attached from a prefix-cache hit instead of being
    /// prefilled — the per-request hit accounting
    /// ([`BatchOutput::prefill_skipped_tokens`](crate::scheduler::BatchOutput::prefill_skipped_tokens)).
    pub fn prefill_skipped_tokens(&self) -> usize {
        self.prefill_cached
    }

    /// Whether the densely prefilled prompt region (every prompt token but
    /// the last) has been fully absorbed — the point its full KV blocks
    /// become publishable to a
    /// [`PrefixIndex`](sparseinfer_model::kv::PrefixIndex): everything up
    /// to here depends only on the model weights and the token ids, never
    /// on the engine kind or sampler.
    pub fn dense_prefill_complete(&self) -> bool {
        self.fed + 1 >= self.prompt.len()
    }

    /// The session's per-layer KV caches — read access for prefix
    /// publication.
    pub fn kv_caches(&self) -> &[sparseinfer_model::attention::KvCache] {
        &self.session.caches
    }

    /// Performs one step: feeds the next prefill token, or decodes the
    /// next token block. Tokens emitted by this step (none during prefill,
    /// one to `k + 1` during decode) are collected via
    /// [`events`](Self::events), which is cleared and refilled by every
    /// call.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyVocab`] if the engine produced no logits to
    /// sample from, [`EngineError::MissingLogits`] if decode reached the
    /// sampling state without a prior engine step. Either way the run is
    /// marked finished with [`FinishReason::Failed`] — a degenerate input
    /// fails one request, it does not abort a serving process. Tokens
    /// emitted earlier in the same failing block are kept.
    pub fn advance(&mut self, engine: &mut dyn Engine) -> Result<(), EngineError> {
        self.events.clear();
        if self.finish.is_some() {
            return Ok(());
        }
        let last = self.prompt.len() - 1;
        if self.fed < self.prefill_cached {
            // This position's KV was attached from a prefix-cache hit:
            // consume the step (identical scheduling cadence to a cold
            // run) without touching the model — the skipped prefill work.
            self.fed += 1;
            Ok(())
        } else if self.fed < last {
            // Dense prefill through the bare model.
            let _ = engine
                .model()
                .forward_token(self.prompt[self.fed], &mut self.session);
            self.fed += 1;
            Ok(())
        } else if self.fed == last {
            // The last prompt token goes through the engine: decode
            // statistics start at the first generated position. Always a
            // single-token step — drafting starts once decode owns a
            // sampled token to feed.
            engine.step_into(self.prompt[last], &mut self.session, &mut self.logits);
            self.has_logits = true;
            self.fed += 1;
            Ok(())
        } else if let Some(pending) = self.pending.take() {
            self.decode_block(engine, pending)
        } else {
            // First decode tick: sample from the prefill-handoff logits.
            if !self.has_logits {
                return Err(self.fail(EngineError::MissingLogits));
            }
            let Some(next) = self.sampler.sample(&self.logits) else {
                return Err(self.fail(EngineError::EmptyVocab));
            };
            let next = next as u32;
            if self.stop.contains(&next) {
                self.finish = Some(FinishReason::Stop(next));
                return Ok(());
            }
            self.emit(next);
            if self.tokens.len() >= self.max_new {
                self.finish = Some(FinishReason::MaxTokens);
            } else {
                self.pending = Some(next);
            }
            Ok(())
        }
    }

    /// One decode block: feeds `pending` (plus up to `limit - 1` draft
    /// proposals from a speculative engine), then samples the verified
    /// logits position by position, accepting the longest run of proposals
    /// that match what the sampler actually draws. Every emitted token is
    /// sampled from **verified** logits over exactly the context a
    /// non-speculative run would have fed — one sampler draw per emitted
    /// token, in the same order — so the token stream is bit-identical to
    /// plain decode. Rejected draft positions are rolled back out of the
    /// session via [`DecodeSession::truncate`].
    fn decode_block(&mut self, engine: &mut dyn Engine, pending: u32) -> Result<(), EngineError> {
        // Remaining budget bounds the block: `tokens.len() < max_new`
        // whenever a pending token exists, so `limit >= 1`, and the
        // engine feeds at most `limit` positions — KV stays within the
        // `prompt + max_new` worst case the scheduler admitted under.
        let limit = self.max_new - self.tokens.len();
        let base = self.session.context_len();
        engine.step_block_into(pending, &mut self.session, limit, &mut self.block);
        let proposals = self.block.proposals().len();
        let mut accepted = 0;
        for i in 0..=proposals {
            // `logits(0)` follows `pending`; `logits(i)` follows proposal
            // `i - 1` — sampling it decides whether proposal `i` (the
            // token the draft fed next) was what the sampler wanted.
            let Some(next) = self.sampler.sample(self.block.logits(i)) else {
                self.session.truncate(base + 1 + accepted);
                return Err(self.fail(EngineError::EmptyVocab));
            };
            let next = next as u32;
            if self.stop.contains(&next) {
                // The stop token is never emitted — exactly the plain
                // decode exit, regardless of what the draft proposed.
                self.finish = Some(FinishReason::Stop(next));
                break;
            }
            self.emit(next);
            let matched = i < proposals && next == self.block.proposals()[i];
            if matched {
                // The engine already fed this token as a draft position:
                // its KV (and verified logits) are in place.
                accepted += 1;
            }
            if self.tokens.len() >= self.max_new {
                self.finish = Some(FinishReason::MaxTokens);
                break;
            }
            if !matched {
                // Mismatch correction (i < proposals) or the bonus token
                // after a fully accepted block (i == proposals): either
                // way the engine has not seen this token — feed it next
                // tick.
                self.pending = Some(next);
                break;
            }
        }
        engine.note_accepted(accepted);
        // Drop the rejected draft positions so the context is exactly the
        // accepted tokens — a later preemption, prefix publication or swap
        // never observes speculative KV.
        self.session.truncate(base + 1 + accepted);
        Ok(())
    }

    /// Records a sampled token: appends it to the output and emits its
    /// [`TokenEvent`] unless the token replays a preemption-recomputed
    /// position (already delivered before the preemption).
    fn emit(&mut self, token: u32) {
        let index = self.tokens.len();
        self.tokens.push(token);
        if index < self.replay.len() {
            debug_assert_eq!(
                token, self.replay[index],
                "deterministic recompute diverged at replay index {index}"
            );
            return;
        }
        self.events.push(TokenEvent { index, token });
    }

    /// The tokens emitted by the most recent [`advance`](Self::advance)
    /// call, in sample order: empty for prefill steps, one to `k + 1`
    /// events for decode steps.
    pub fn events(&self) -> &[TokenEvent] {
        &self.events
    }

    /// Swaps the session's paged KV caches out to cold buffers, one per
    /// layer: block contents are copied, every block handle is released
    /// (private storage returns to the pool immediately), and the run is
    /// frozen until [`restore_kv`](Self::restore_kv) — sampler state,
    /// pending logits and produced tokens all stay in place, so a restored
    /// run continues exactly where it stopped.
    ///
    /// # Panics
    ///
    /// Panics if the session's caches are not paged (scheduler sessions
    /// always are).
    pub fn swap_out_kv(&mut self) -> Vec<SwappedKvCache> {
        self.session
            .caches
            .iter_mut()
            .map(|cache| {
                cache
                    .as_paged_mut()
                    .expect("scheduler sessions are paged")
                    .swap_out()
            })
            .collect()
    }

    /// Restores previously swapped-out KV caches into freshly allocated
    /// private blocks — the inverse of [`swap_out_kv`](Self::swap_out_kv),
    /// bit-identical contents included.
    ///
    /// # Panics
    ///
    /// Panics if `swapped` does not hold one buffer per layer, or if the
    /// caches are not empty (double restore).
    pub fn restore_kv(&mut self, swapped: &[SwappedKvCache]) {
        assert_eq!(
            swapped.len(),
            self.session.caches.len(),
            "one cold buffer per layer"
        );
        for (cache, cold) in self.session.caches.iter_mut().zip(swapped) {
            cache
                .as_paged_mut()
                .expect("scheduler sessions are paged")
                .restore(cold);
        }
    }

    /// Bytes of KV content currently held across the session's caches —
    /// the cold-buffer size a swap-out of this run would produce.
    pub fn kv_content_bytes(&self) -> u64 {
        self.session
            .caches
            .iter()
            .filter_map(|c| c.as_paged())
            .map(|p| p.content_bytes())
            .sum()
    }

    /// Block handles currently held across the session's caches (shared
    /// prefix attachments included).
    pub fn kv_blocks_held(&self) -> usize {
        self.session
            .caches
            .iter()
            .filter_map(|c| c.as_paged())
            .map(|p| p.blocks_held())
            .sum()
    }

    /// Marks the run finished with a failure and hands the error back for
    /// propagation.
    fn fail(&mut self, error: EngineError) -> EngineError {
        self.finish = Some(FinishReason::Failed(error));
        error
    }

    /// Consumes the run into its result.
    ///
    /// # Panics
    ///
    /// Panics if the run has not finished.
    pub fn into_generation(self) -> Generation {
        Generation {
            tokens: self.tokens,
            finish: self.finish.expect("run must be finished"),
        }
    }
}

/// Runs `req` to completion on `engine`.
///
/// # Errors
///
/// [`EngineError::EmptyPrompt`] if the prompt is empty;
/// [`EngineError::EmptyVocab`] / [`EngineError::MissingLogits`] if decoding
/// fails on a degenerate engine (no logits to sample from).
pub fn generate(engine: &mut dyn Engine, req: &GenerateRequest) -> Result<Generation, EngineError> {
    generate_streaming(engine, req, |_| {})
}

/// Runs `req` to completion, invoking `on_token` for every generated token
/// as soon as it is sampled — the serving-style streaming interface.
///
/// # Errors
///
/// [`EngineError::EmptyPrompt`] if the prompt is empty;
/// [`EngineError::EmptyVocab`] / [`EngineError::MissingLogits`] if decoding
/// fails on a degenerate engine (no logits to sample from).
pub fn generate_streaming(
    engine: &mut dyn Engine,
    req: &GenerateRequest,
    mut on_token: impl FnMut(TokenEvent),
) -> Result<Generation, EngineError> {
    let mut run = RequestRun::new(req, engine)?;
    while !run.finished() {
        run.advance(engine)?;
        for event in run.events() {
            on_token(*event);
        }
    }
    Ok(run.into_generation())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Model, ModelConfig};
    use sparseinfer_predictor::AlphaSchedule;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 7).build()
    }

    #[test]
    fn empty_prompt_is_an_error() {
        let m = model();
        let mut e = EngineBuilder::new(&m).build().unwrap();
        let err = generate(e.as_mut(), &GenerateRequest::new(&[])).unwrap_err();
        assert_eq!(err, EngineError::EmptyPrompt);
    }

    #[test]
    fn greedy_request_matches_model_generate_greedy() {
        let m = model();
        let mut e = EngineBuilder::new(&m).build().unwrap();
        let req = GenerateRequest::new(&[1, 2, 3])
            .max_new(6)
            .stop_at(u32::MAX);
        let got = generate(e.as_mut(), &req).unwrap();
        assert_eq!(got.tokens, m.generate_greedy(&[1, 2, 3], 6, u32::MAX));
        assert_eq!(got.finish, FinishReason::MaxTokens);
    }

    #[test]
    fn streaming_sees_every_token_in_order() {
        let m = model();
        let mut e = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        let req = GenerateRequest::new(&[2, 4]).max_new(5);
        let mut streamed = Vec::new();
        let gen = generate_streaming(e.as_mut(), &req, |ev| {
            assert_eq!(ev.index, streamed.len());
            streamed.push(ev.token);
        })
        .unwrap();
        assert_eq!(streamed, gen.tokens);
        assert_eq!(streamed.len(), 5);
    }

    #[test]
    fn stop_token_finishes_and_is_excluded() {
        let m = model();
        let mut e = EngineBuilder::new(&m).build().unwrap();
        // Find what greedy decoding emits first, then declare it a stop.
        let first = generate(e.as_mut(), &GenerateRequest::new(&[1]).max_new(1))
            .unwrap()
            .tokens[0];
        let gen = generate(
            e.as_mut(),
            &GenerateRequest::new(&[1]).max_new(8).stop_at(first),
        )
        .unwrap();
        assert!(gen.tokens.is_empty());
        assert_eq!(gen.finish, FinishReason::Stop(first));
    }

    #[test]
    fn zero_budget_generates_nothing() {
        let m = model();
        let mut e = EngineBuilder::new(&m).build().unwrap();
        let gen = generate(e.as_mut(), &GenerateRequest::new(&[5, 6]).max_new(0)).unwrap();
        assert!(gen.tokens.is_empty());
        assert_eq!(gen.finish, FinishReason::MaxTokens);
    }

    /// An engine that advances the session but never produces logits — the
    /// degenerate case that used to abort via `expect("nonzero vocab")`.
    #[derive(Debug)]
    struct EmptyLogitsEngine<'m> {
        model: &'m Model,
        ops: crate::ops::OpCounter,
    }

    impl Engine for EmptyLogitsEngine<'_> {
        fn model(&self) -> &Model {
            self.model
        }

        fn score_block_into(
            &mut self,
            tokens: &[u32],
            session: &mut sparseinfer_model::model::DecodeSession,
            logits: &mut [Vector],
        ) {
            assert_eq!(tokens.len(), logits.len(), "one logit vector per token");
            session.position += tokens.len();
            for out in logits {
                *out = Vector::zeros(0);
            }
        }

        fn ops(&self) -> &crate::ops::OpCounter {
            &self.ops
        }

        fn reset_ops(&mut self) {}

        fn name(&self) -> &str {
            "empty-logits"
        }
    }

    #[test]
    fn empty_logits_surface_as_engine_error_not_panic() {
        let m = model();
        let mut e = EmptyLogitsEngine {
            model: &m,
            ops: crate::ops::OpCounter::default(),
        };
        let err = generate(&mut e, &GenerateRequest::new(&[1, 2]).max_new(4)).unwrap_err();
        assert_eq!(err, EngineError::EmptyVocab);
        // Streaming takes the same exit.
        let err =
            generate_streaming(&mut e, &GenerateRequest::new(&[9]).max_new(2), |_| {}).unwrap_err();
        assert_eq!(err, EngineError::EmptyVocab);
    }

    #[test]
    fn failed_run_records_the_finish_reason() {
        let m = model();
        let mut e = EmptyLogitsEngine {
            model: &m,
            ops: crate::ops::OpCounter::default(),
        };
        let mut run = RequestRun::new(&GenerateRequest::new(&[1]).max_new(4), &e).unwrap();
        while !run.finished() {
            if run.advance(&mut e).is_err() {
                break;
            }
        }
        assert!(run.finished(), "a failed run is finished");
        assert_eq!(
            run.into_generation().finish,
            FinishReason::Failed(EngineError::EmptyVocab)
        );
    }

    #[test]
    fn seeded_sampling_requests_are_reproducible() {
        let m = model();
        let mut e = EngineBuilder::new(&m).build().unwrap();
        let req = GenerateRequest::new(&[3, 1])
            .max_new(8)
            .sampler(Sampler::temperature(1.0, 99));
        let a = generate(e.as_mut(), &req).unwrap();
        let b = generate(e.as_mut(), &req).unwrap();
        assert_eq!(a, b, "same request, same seed, same tokens");
    }
}
