//! Admission control: priority-ordered candidate selection, fresh-request
//! admission with prefix-cache lookup, prefix publication and the warm-cache
//! retention cap. Split out of the scheduler core; every method here is an
//! `impl Scheduler` continuation operating on the same private state.

use super::preemption::{preempted_output, PreemptedState};
use super::*;

impl<'m> Scheduler<'m> {
    /// Worst-case KV blocks `req` can ever need on `engine`'s model: one
    /// cache per layer, each holding up to `prompt + max_new` tokens.
    pub(super) fn worst_case_blocks(&self, engine: &dyn Engine, req: &GenerateRequest) -> usize {
        let worst_tokens = req.prompt.len() + req.max_new;
        engine.model().layers().len() * self.kv.blocks_for_tokens(worst_tokens)
    }

    /// Prompt positions of a `prompt_len`-token prompt that are prefix-
    /// sharable: whole blocks inside the densely prefilled region (every
    /// prompt token but the last — the last goes through the engine, so
    /// its KV is engine-dependent and never shared). The single source of
    /// this bound: admission's lookup and prefix publication must agree
    /// on it exactly, or hits and retained entries silently diverge.
    pub(super) fn sharable_tokens(prompt_len: usize, block_tokens: usize) -> usize {
        ((prompt_len - 1) / block_tokens) * block_tokens
    }

    /// Prefix-index identity of `model`.
    ///
    /// Pointer identity is sound here: every submitted engine borrows its
    /// model for `'m`, and a `Scheduler<'m>` value is only usable while
    /// `'m` is alive — so every model ever submitted outlives every later
    /// use of this scheduler, and an address can never be recycled by a
    /// different model within its lifetime.
    pub(super) fn model_key(model: &Model) -> usize {
        model as *const Model as usize
    }

    /// Admits work in priority order: the oldest request of the highest
    /// priority class present — across both the resume queue and the
    /// fresh queue, resume winning ties — admits first, FIFO within a
    /// class. Head-of-line blocking *within that order* is deliberate:
    /// when the best candidate cannot fit even after warm-cache eviction
    /// and (if enabled) preemption, nothing else is admitted — skipping
    /// ahead would make the schedule depend on sizes, not order, breaking
    /// both fairness and the determinism contract.
    pub(super) fn admit(&mut self) {
        // Cancelled- or expired-while-waiting requests retire immediately,
        // wherever they sit: the point of either signal is to release the
        // engine's memory (and any cold swap buffer) now, and it must not
        // wait behind a blocked head. (Dropping entries never reorders the
        // survivors, so FIFO-within-class determinism is untouched.)
        let mut i = 0;
        while i < self.queue.len() {
            let finish = match self.queue[i].signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => Some(FinishReason::Cancelled),
                SIGNAL_EXPIRED => Some(FinishReason::DeadlineExceeded),
                _ => None,
            };
            if let Some(finish) = finish {
                let q = self.queue.remove(i).expect("index in bounds");
                let output = unstarted_output(q, finish, self.ticks);
                self.record_finished(output);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.preempted.len() {
            let finish = match self.preempted[i].signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => Some(FinishReason::Cancelled),
                SIGNAL_EXPIRED => Some(FinishReason::DeadlineExceeded),
                _ => None,
            };
            if let Some(finish) = finish {
                let p = self.preempted.remove(i).expect("index in bounds");
                if let PreemptedState::Swapped { cold_bytes, .. } = p.state {
                    self.cold_bytes -= cold_bytes;
                }
                let output = preempted_output(p, finish, self.ticks);
                self.record_finished(output);
            } else {
                i += 1;
            }
        }
        loop {
            let Some((resume, at)) = self.next_candidate() else {
                return;
            };
            let admitted = if resume {
                self.try_resume(at)
            } else {
                self.try_admit_fresh(at)
            };
            if !admitted {
                return;
            }
        }
    }

    /// The next admission candidate: the oldest entry of the highest
    /// priority class present across the resume queue and the fresh
    /// queue. The resume queue wins priority ties — a preempted request
    /// already earned its admission once. Returns `(is_resume, index)`
    /// into the winning queue.
    fn next_candidate(&self) -> Option<(bool, usize)> {
        fn best(priorities: impl Iterator<Item = Priority>) -> Option<(usize, Priority)> {
            let mut best: Option<(usize, Priority)> = None;
            for (i, p) in priorities.enumerate() {
                if best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((i, p));
                }
            }
            best
        }
        let resume = best(self.preempted.iter().map(|p| p.req.priority));
        let fresh = best(self.queue.iter().map(|q| q.req.priority));
        match (resume, fresh) {
            (Some((ri, rp)), Some((_, fp))) if rp >= fp => Some((true, ri)),
            (_, Some((fi, _))) => Some((false, fi)),
            (Some((ri, _)), None) => Some((true, ri)),
            (None, None) => None,
        }
    }

    /// Tries to admit fresh queued request `at` into a slot. Returns
    /// whether it left the queue (admitted, or defensively failed).
    fn try_admit_fresh(&mut self, at: usize) -> bool {
        // Look up the candidate's prompt prefix *before* the budget
        // check: shared blocks are already paid for by the index's
        // retention (or a publisher's reservation), so the candidate only
        // needs to reserve its net worst case. Attaching refreshes the
        // LRU and pins the blocks for the slot's lifetime.
        let hit = if self.config.prefix_cache {
            let q = &self.queue[at];
            let max_tokens = Self::sharable_tokens(q.req.prompt.len(), self.config.block_tokens);
            self.index.lookup(
                q.model_key,
                &q.req.prompt,
                self.config.block_tokens,
                max_tokens,
            )
        } else {
            None
        };
        let hit_blocks = hit.as_ref().map_or(0, PrefixHit::total_blocks);
        let net_worst = self.queue[at].worst_blocks - hit_blocks;
        // Budget invariant: every physical block is covered by exactly
        // one of (a) a live slot's reservation or (b) the index's
        // retention — so admission fits `net_worst` into what is left of
        // the budget after both (swapped-out requests hold no blocks).
        if !self.make_room(self.queue[at].req.priority, net_worst) {
            if self.reserved_blocks == 0 && self.slots.is_empty() {
                // Unreachable today: submit rejects gross-over-budget
                // requests, and with no live slots the eviction pass in
                // `make_room` reclaims every retained block except the
                // candidate's own hit — which nets out exactly — so the
                // candidate always fits here. Kept as data so a future
                // accounting gap fails one request instead of
                // deadlocking the queue.
                drop(hit);
                let q = self.queue.remove(at).expect("index in bounds");
                let err = EngineError::KvBudgetExceeded {
                    required_blocks: net_worst,
                    budget_blocks: self.config.kv_block_budget,
                };
                let output = unstarted_output(q, FinishReason::Failed(err), self.ticks);
                self.record_finished(output);
                return true;
            }
            return false;
        }
        // Removing mid-queue never reorders the survivors, so FIFO
        // within each priority class is preserved.
        let q = self.queue.remove(at).expect("index in bounds");
        match RequestRun::with_prefix(&q.req, q.engine.as_ref(), &self.kv, hit.as_ref()) {
            Ok(run) => {
                if let Some(hit) = &hit {
                    self.attached_requests += 1;
                    self.skipped_tokens += hit.tokens as u64;
                }
                self.reserved_blocks += net_worst;
                self.slots.push(LiveSlot {
                    id: q.id,
                    engine: q.engine,
                    run,
                    req: q.req,
                    signal: q.signal,
                    worst_blocks: net_worst,
                    gross_blocks: q.worst_blocks,
                    model_key: q.model_key,
                    published: false,
                    preempt_count: 0,
                    swapped_blocks: 0,
                    submitted_tick: q.submitted_tick,
                    admitted_tick: self.ticks,
                });
            }
            // Unreachable today (submit validates the prompt), kept as
            // data so a future validation gap degrades to a failed
            // request instead of a poisoned serving loop.
            Err(err) => {
                let output = unstarted_output(q, FinishReason::Failed(err), self.ticks);
                self.record_finished(output);
            }
        }
        true
    }

    /// Offers every slot's densely prefilled prompt blocks to the prefix
    /// index, once per request, the tick its dense prefill completes
    /// (retiring slots included — a finished request's prefix stays warm
    /// for the next one). Blocks the index newly retains shift out of the
    /// publishing slot's reservation: the budget invariant (every block
    /// covered exactly once) is preserved, and the index then answers for
    /// them until eviction.
    pub(super) fn publish_prefixes(&mut self) {
        if !self.config.prefix_cache {
            return;
        }
        let bt = self.config.block_tokens;
        for slot in &mut self.slots {
            if slot.published || !slot.run.dense_prefill_complete() {
                continue;
            }
            slot.published = true;
            let prompt = slot.run.prompt();
            let sharable = Self::sharable_tokens(prompt.len(), bt);
            if sharable == 0 {
                continue;
            }
            let runs = sharable / bt;
            let per_layer: Vec<Vec<_>> = slot
                .run
                .kv_caches()
                .iter()
                .map(|cache| {
                    cache
                        .as_paged()
                        .expect("scheduler sessions are paged")
                        .block_refs()[..runs]
                        .to_vec()
                })
                .collect();
            let newly = self
                .index
                .publish(slot.model_key, &prompt[..sharable], bt, &per_layer);
            self.published_blocks += newly;
            // The newly retained blocks were allocated under this slot's
            // reservation; hand their coverage to the index.
            let shift = newly.min(slot.worst_blocks);
            slot.worst_blocks -= shift;
            self.reserved_blocks -= shift;
        }
    }

    /// Enforces the retention cap on unreferenced prefix blocks — run at
    /// the end of every tick, *after* retirement, so blocks a retiring
    /// request just unpinned are re-checked immediately.
    pub(super) fn enforce_prefix_cap(&mut self) {
        if !self.config.prefix_cache {
            return;
        }
        let evicted = self
            .index
            .evict_unreferenced_to(self.config.prefix_retain_blocks);
        self.evicted_blocks += evicted;
    }
}
