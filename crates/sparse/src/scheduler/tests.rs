//! Scheduler integration tests (moved verbatim from the old single-file
//! module; `super::*` still resolves to the scheduler module).

use super::*;
use crate::engine::{EngineBuilder, WeightFormat};
use crate::request::{generate, GenerateRequest, Priority};
use sparseinfer_model::generator::WeightGenerator;
use sparseinfer_model::{Model, ModelConfig};
use sparseinfer_predictor::AlphaSchedule;
use sparseinfer_tensor::ParallelOptions;

fn model() -> Model {
    WeightGenerator::new(&ModelConfig::tiny(), 23).build()
}

fn dense<'m>(m: &'m Model) -> Box<dyn Engine + 'm> {
    EngineBuilder::new(m).build().unwrap()
}

fn solo_tokens(m: &Model, req: &GenerateRequest) -> Vec<u32> {
    let mut e = dense(m);
    generate(e.as_mut(), req).unwrap().tokens
}

#[test]
fn empty_scheduler_runs_to_nothing() {
    let s = Scheduler::new(SchedulerConfig::default());
    assert_eq!(s.unfinished_requests(), 0);
    assert!(s.run().is_empty());
}

#[test]
fn submit_rejects_empty_prompts() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig::default());
    let err = s.submit(dense(&m), &GenerateRequest::new(&[])).unwrap_err();
    assert_eq!(err, EngineError::EmptyPrompt);
    assert_eq!(s.submitted(), 0);
}

#[test]
fn submit_rejects_requests_that_can_never_fit() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 4,
        block_tokens: 4,
        kv_block_budget: 3,
        ..SchedulerConfig::default()
    });
    // tiny() has 2 layers: 2 · ceil((2 + 30)/4) = 16 blocks > 3.
    let err = s
        .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(30))
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::KvBudgetExceeded {
            required_blocks: 16,
            budget_blocks: 3
        }
    );
}

#[test]
fn max_slots_caps_concurrency_and_everything_still_finishes() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2]).max_new(4);
    let expected = solo_tokens(&m, &req);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        ..SchedulerConfig::default()
    });
    for _ in 0..5 {
        s.submit(dense(&m), &req).unwrap();
    }
    let mut peak = 0;
    while s.tick(|_| {}) > 0 {
        peak = peak.max(s.active_slots());
    }
    assert_eq!(peak, 2, "admission must fill, but never exceed, the slots");
    let outputs = s.take_finished();
    assert_eq!(outputs.len(), 5);
    for o in &outputs {
        assert_eq!(o.tokens, expected);
        assert_eq!(o.finish, FinishReason::MaxTokens);
    }
}

#[test]
fn kv_budget_serializes_admission_without_starving_anyone() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2]).max_new(4);
    // Worst case per request: 2 layers · ceil(6/4) = 4 blocks; a
    // budget of 5 fits exactly one at a time.
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 4,
        block_tokens: 4,
        kv_block_budget: 5,
        ..SchedulerConfig::default()
    });
    for _ in 0..3 {
        s.submit(dense(&m), &req).unwrap();
    }
    let mut peak = 0;
    while s.tick(|_| {}) > 0 {
        peak = peak.max(s.active_slots());
        assert!(s.reserved_blocks() <= 5, "reservation within budget");
        assert!(s.kv_pool().blocks_in_use() <= 5, "usage within budget");
    }
    assert_eq!(peak, 1, "budget admits one request at a time");
    let outputs = s.take_finished();
    assert_eq!(outputs.len(), 3, "head-of-line blocking is not starvation");
    let expected = solo_tokens(&m, &req);
    assert!(outputs.iter().all(|o| o.tokens == expected));
}

#[test]
fn requests_join_mid_run_and_decode_identically() {
    let m = model();
    let req_a = GenerateRequest::new(&[1, 2, 3]).max_new(6);
    let req_b = GenerateRequest::new(&[7, 8]).max_new(4);
    let solo_a = solo_tokens(&m, &req_a);
    let solo_b = solo_tokens(&m, &req_b);

    let mut s = Scheduler::new(SchedulerConfig::default());
    let a = s.submit(dense(&m), &req_a).unwrap();
    for _ in 0..3 {
        s.tick(|_| {});
    }
    // Joins while `a` is mid-decode.
    let b = s.submit(dense(&m), &req_b).unwrap();
    let outputs = s.run();
    assert_eq!(outputs[a.id()].tokens, solo_a);
    assert_eq!(outputs[b.id()].tokens, solo_b);
}

#[test]
fn cancelling_a_queued_request_retires_it_without_decoding() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 1,
        ..SchedulerConfig::default()
    });
    let keep = s
        .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
        .unwrap();
    let doomed = s
        .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
        .unwrap();
    doomed.cancel();
    assert!(doomed.is_cancelled());
    let outputs = s.run();
    assert_eq!(outputs.len(), 2);
    assert_eq!(outputs[keep.id()].finish, FinishReason::MaxTokens);
    assert_eq!(outputs[doomed.id()].finish, FinishReason::Cancelled);
    assert!(outputs[doomed.id()].tokens.is_empty());
}

#[test]
fn cancelling_mid_stream_keeps_the_tokens_so_far_and_frees_blocks() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2]).max_new(32);
    let solo = solo_tokens(&m, &req);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });
    let handle = s.submit(dense(&m), &req).unwrap();
    let kv = s.kv_pool().clone();
    let mut streamed = Vec::new();
    for _ in 0..6 {
        s.tick(|ev| streamed.push(ev.token));
    }
    handle.cancel();
    let outputs = s.run();
    assert_eq!(outputs[0].finish, FinishReason::Cancelled);
    assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
    assert!(
        outputs[0].tokens.len() < 32,
        "cancelled well short of budget"
    );
    assert_eq!(outputs[0].tokens, streamed);
    assert_eq!(
        outputs[0].tokens[..],
        solo[..outputs[0].tokens.len()],
        "the prefix matches solo decode exactly"
    );
    assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed");
}

#[test]
fn retirement_frees_capacity_that_admits_the_next_request() {
    let m = model();
    let short = GenerateRequest::new(&[1, 2]).max_new(2);
    let long = GenerateRequest::new(&[3, 4]).max_new(8);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 1,
        ..SchedulerConfig::default()
    });
    s.submit(dense(&m), &short).unwrap();
    s.submit(dense(&m), &long).unwrap();
    // Tick until the short request retires; the long one must then be
    // admitted into the freed slot.
    let mut ticks = 0;
    while s.pending_requests() > 0 {
        s.tick(|_| {});
        ticks += 1;
        assert!(ticks < 64, "the queued request must eventually be admitted");
    }
    let outputs = s.run();
    assert_eq!(outputs.len(), 2);
    assert_eq!(outputs[1].tokens, solo_tokens(&m, &long));
}

#[test]
fn mixed_engine_kinds_share_one_scheduler() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2]).max_new(4);
    let mut s = Scheduler::new(SchedulerConfig::default());
    s.submit(dense(&m), &req).unwrap();
    s.submit(
        EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap(),
        &req,
    )
    .unwrap();
    let out = s.run();
    assert_eq!(out[0].engine, "dense");
    assert_eq!(out[1].engine, "sparse:sparseinfer");
    assert!(out[0].stats.is_none());
    assert!(out[1].stats.is_some());
}

#[test]
fn mixed_kv_dimensions_are_rejected_at_submit_not_mid_decode() {
    let m_small = model(); // tiny(): one hidden_dim…
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim *= 2; // …and a model with another
    cfg.n_heads = 2;
    let m_big = WeightGenerator::new(&cfg, 5).build();
    let m_twin = WeightGenerator::new(&ModelConfig::tiny(), 77).build();

    let mut s = Scheduler::new(SchedulerConfig::default());
    s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
        .unwrap();
    let err = s
        .submit(dense(&m_big), &GenerateRequest::new(&[2]).max_new(2))
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::KvDimensionMismatch {
            scheduler_dim: m_small.config().hidden_dim,
            model_dim: m_big.config().hidden_dim,
        },
        "a mismatched model must be rejected as data, not a pool panic"
    );
    // The scheduler keeps serving, and distinct models of the *same*
    // KV dimension still mix freely (the pre-scheduler Batch contract).
    s.submit(dense(&m_twin), &GenerateRequest::new(&[3]).max_new(2))
        .unwrap();
    let outputs = s.run();
    assert_eq!(outputs.len(), 2);
    assert!(outputs.iter().all(|o| o.tokens.len() == 2));
}

#[test]
fn rejected_submit_does_not_latch_the_kv_dimension() {
    let m_small = model();
    let mut cfg = ModelConfig::tiny();
    cfg.hidden_dim *= 2;
    cfg.n_heads = 2;
    let m_big = WeightGenerator::new(&cfg, 9).build();

    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        kv_block_budget: 3,
        ..SchedulerConfig::default()
    });
    // Budget-rejected: must not pin the scheduler to m_big's width.
    let err = s
        .submit(dense(&m_big), &GenerateRequest::new(&[1, 2]).max_new(30))
        .unwrap_err();
    assert!(matches!(err, EngineError::KvBudgetExceeded { .. }));
    // A fitting request over a *different* dimension is still welcome.
    s.submit(dense(&m_small), &GenerateRequest::new(&[1]).max_new(2))
        .unwrap();
    assert_eq!(s.run().len(), 1);
}

#[test]
fn cancelled_requests_behind_a_blocked_head_retire_immediately() {
    let m = model();
    // Budget fits exactly one small request; the big head can never be
    // joined by anything while it waits… but cancellation must not
    // wait with it.
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 3,
        block_tokens: 4,
        kv_block_budget: 4,
        ..SchedulerConfig::default()
    });
    let head = s
        .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(4))
        .unwrap();
    let mut doomed = Vec::new();
    for t in 0..3 {
        doomed.push(
            s.submit(dense(&m), &GenerateRequest::new(&[3 + t]).max_new(4))
                .unwrap(),
        );
    }
    s.tick(|_| {}); // head admitted, the rest queue behind it
    assert_eq!(s.active_slots(), 1);
    assert_eq!(s.pending_requests(), 3);
    for h in &doomed {
        h.cancel();
    }
    s.tick(|_| {});
    assert_eq!(
        s.pending_requests(),
        0,
        "cancelled entries must leave the queue (and drop their \
         engines) even though the head is still decoding"
    );
    let _ = head;
    let outputs = s.run();
    assert_eq!(outputs.len(), 4);
    assert!(outputs[1..]
        .iter()
        .all(|o| o.finish == FinishReason::Cancelled));
    assert_eq!(outputs[0].tokens.len(), 4);
}

#[test]
fn warm_prefix_resubmission_skips_prefill_and_reuses_blocks() {
    let m = model();
    let n_layers = m.config().n_layers;
    // Prompt of 10 tokens at 4 per block: the densely prefilled region
    // is 9 tokens, so 2 full blocks (8 tokens) are sharable.
    let prompt: Vec<u32> = (1..=10).collect();
    let req = GenerateRequest::new(&prompt).max_new(4);
    let solo = solo_tokens(&m, &req);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });
    s.submit(dense(&m), &req).unwrap();
    while s.tick(|_| {}) > 0 {}
    let cold = s.take_finished();
    assert_eq!(cold[0].tokens, solo);
    assert_eq!(cold[0].prefill_skipped_tokens, 0, "first run is cold");
    let created_after_cold = s.kv_pool().blocks_created();
    let stats = s.prefix_stats();
    assert_eq!(stats.published_blocks, 2 * n_layers);
    assert_eq!(stats.retained_blocks, 2 * n_layers);
    assert_eq!(
        stats.unreferenced_blocks, stats.retained_blocks,
        "publisher retired, the index is the sole referrer"
    );
    assert_eq!(stats.attached_requests, 0);

    s.submit(dense(&m), &req).unwrap();
    while s.tick(|_| {}) > 0 {}
    let warm = s.take_finished();
    assert_eq!(warm[0].tokens, solo, "warm decode is bit-identical");
    assert_eq!(
        warm[0].prefill_skipped_tokens, 8,
        "shared full blocks × block_tokens"
    );
    let stats = s.prefix_stats();
    assert_eq!(stats.attached_requests, 1);
    assert_eq!(stats.skipped_tokens, 8);
    assert_eq!(
        s.kv_pool().blocks_created(),
        created_after_cold,
        "the warm run allocated nothing beyond recycled free blocks"
    );
}

#[test]
fn prefix_cache_disabled_never_attaches_or_retains() {
    let m = model();
    let prompt: Vec<u32> = (1..=10).collect();
    let req = GenerateRequest::new(&prompt).max_new(3);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        kv_block_budget: usize::MAX,
        prefix_cache: false,
        prefix_retain_blocks: 0,
        ..SchedulerConfig::default()
    });
    for _ in 0..2 {
        s.submit(dense(&m), &req).unwrap();
        while s.tick(|_| {}) > 0 {}
    }
    let outputs = s.take_finished();
    assert!(outputs.iter().all(|o| o.prefill_skipped_tokens == 0));
    assert_eq!(s.prefix_stats(), PrefixCacheStats::default());
    assert_eq!(s.kv_pool().blocks_in_use(), 0, "nothing retained");
}

#[test]
fn prefix_retention_cap_evicts_unreferenced_lru_entries() {
    let m = model();
    let n_layers = m.config().n_layers;
    // Each distinct 6-token prompt publishes one full block per layer.
    let cap = n_layers; // room for exactly one retained prefix
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 1,
        block_tokens: 4,
        kv_block_budget: usize::MAX,
        prefix_cache: true,
        prefix_retain_blocks: cap,
        ..SchedulerConfig::default()
    });
    for start in [10u32, 25, 40] {
        let prompt: Vec<u32> = (start..start + 6).collect();
        s.submit(dense(&m), &GenerateRequest::new(&prompt).max_new(2))
            .unwrap();
        while s.tick(|_| {}) > 0 {}
    }
    let stats = s.prefix_stats();
    assert!(
        stats.unreferenced_blocks <= cap,
        "cap {} exceeded: {} unreferenced blocks retained",
        cap,
        stats.unreferenced_blocks
    );
    assert!(stats.evicted_blocks >= n_layers, "older prefixes evicted");
    // The most recent prefix is the survivor: resubmitting it hits.
    let prompt: Vec<u32> = (40u32..46).collect();
    s.submit(dense(&m), &GenerateRequest::new(&prompt).max_new(2))
        .unwrap();
    while s.tick(|_| {}) > 0 {}
    let out = s.take_finished();
    assert_eq!(out.last().unwrap().prefill_skipped_tokens, 4);
}

#[test]
fn budget_pressure_evicts_warm_cache_to_admit_new_requests() {
    let m = model();
    let n_layers = m.config().n_layers; // tiny(): 2
                                        // Each request: 5-token prompt + max_new 3 = 8 tokens = 2 blocks
                                        // per layer gross; 1 full block per layer is sharable.
    let gross = n_layers * 2;
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        kv_block_budget: gross, // exactly one cold request fits
        prefix_cache: true,
        prefix_retain_blocks: usize::MAX, // only budget pressure evicts
        ..SchedulerConfig::default()
    });
    s.submit(
        dense(&m),
        &GenerateRequest::new(&[1, 2, 3, 4, 5]).max_new(3),
    )
    .unwrap();
    while s.tick(|_| {}) > 0 {}
    assert_eq!(s.prefix_stats().retained_blocks, n_layers);
    // A *different* prompt needs the whole budget: the warm cache must
    // be evicted to admit it rather than blocking the queue forever.
    s.submit(
        dense(&m),
        &GenerateRequest::new(&[9, 8, 7, 6, 5]).max_new(3),
    )
    .unwrap();
    let mut ticks = 0;
    while s.tick(|_| {}) > 0 {
        ticks += 1;
        assert!(ticks < 64, "warm retention must not starve admission");
    }
    let outputs = s.take_finished();
    assert_eq!(outputs.len(), 2);
    assert_eq!(outputs[1].tokens.len(), 3);
    assert!(s.prefix_stats().evicted_blocks >= n_layers);
}

#[test]
fn request_handles_cancel_across_threads() {
    // The serving contract: connection threads hold clones of the
    // handle and cancel without touching the scheduler thread.
    fn assert_send_sync<T: Send + Sync + Clone>() {}
    assert_send_sync::<RequestHandle>();

    let m = model();
    let mut s = Scheduler::new(SchedulerConfig::default());
    let handle = s
        .submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(64))
        .unwrap();
    for _ in 0..4 {
        s.tick(|_| {});
    }
    let remote = handle.clone();
    std::thread::spawn(move || remote.cancel())
        .join()
        .expect("cancelling thread");
    assert!(handle.is_cancelled());
    let outputs = s.run();
    assert_eq!(outputs[0].finish, FinishReason::Cancelled);
    assert!(outputs[0].tokens.len() < 64, "stopped well short of budget");
}

#[test]
fn expired_mid_stream_requests_keep_partial_tokens_and_free_blocks() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2]).max_new(64);
    let solo = solo_tokens(&m, &req);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        ..SchedulerConfig::default()
    });
    let handle = s.submit(dense(&m), &req).unwrap();
    let kv = s.kv_pool().clone();
    for _ in 0..6 {
        s.tick(|_| {});
    }
    handle.expire();
    assert!(handle.is_expired());
    let outputs = s.run();
    assert_eq!(outputs[0].finish, FinishReason::DeadlineExceeded);
    assert!(!outputs[0].tokens.is_empty(), "partial output preserved");
    assert_eq!(outputs[0].tokens[..], solo[..outputs[0].tokens.len()]);
    assert_eq!(kv.blocks_in_use(), 0, "blocks reclaimed on expiry");
}

#[test]
fn expired_queued_requests_retire_without_decoding() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 1,
        ..SchedulerConfig::default()
    });
    s.submit(dense(&m), &GenerateRequest::new(&[1, 2]).max_new(3))
        .unwrap();
    let queued = s
        .submit(dense(&m), &GenerateRequest::new(&[4]).max_new(3))
        .unwrap();
    queued.expire();
    let outputs = s.run();
    assert_eq!(outputs[queued.id()].finish, FinishReason::DeadlineExceeded);
    assert!(outputs[queued.id()].tokens.is_empty());
}

#[test]
fn first_raised_signal_wins() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig::default());
    let h = s
        .submit(dense(&m), &GenerateRequest::new(&[1]).max_new(8))
        .unwrap();
    h.cancel();
    h.expire(); // late expiry must not overwrite the cancellation
    assert!(h.is_cancelled() && !h.is_expired());
    assert_eq!(s.run()[0].finish, FinishReason::Cancelled);

    let mut s = Scheduler::new(SchedulerConfig::default());
    let h = s
        .submit(dense(&m), &GenerateRequest::new(&[1]).max_new(8))
        .unwrap();
    h.expire();
    h.cancel(); // and vice versa
    assert!(h.is_expired() && !h.is_cancelled());
    assert_eq!(s.run()[0].finish, FinishReason::DeadlineExceeded);
}

/// One-request-at-a-time budget (2 layers × 2 blocks for a 2-token
/// prompt + 4 new tokens at 4 tokens/block), prefix cache off so the
/// block accounting in the assertions stays exact.
fn preemption_config() -> SchedulerConfig {
    SchedulerConfig {
        max_slots: 4,
        block_tokens: 4,
        kv_block_budget: 4,
        prefix_cache: false,
        prefix_retain_blocks: 0,
        preemption: true,
        max_preemptions_per_request: 8,
        swap_budget_bytes: u64::MAX,
        kv_dtype: KvDtype::F32,
    }
}

/// Drives the canonical preemption scenario: a Batch request fills
/// the whole budget, a High request arrives mid-decode and must
/// preempt it. Returns (batch output, high output, stats).
fn preempt_scenario(
    config: SchedulerConfig,
    threads: usize,
) -> (BatchOutput, BatchOutput, PreemptionStats) {
    let m = model();
    let batch_req = GenerateRequest::new(&[1, 2])
        .max_new(4)
        .priority(Priority::Batch);
    let high_req = GenerateRequest::new(&[7, 8])
        .max_new(4)
        .priority(Priority::High);
    let mut s = Scheduler::new(config).parallel(ParallelOptions::threads(threads));
    let a = s.submit(dense(&m), &batch_req).unwrap();
    for _ in 0..3 {
        s.tick(|_| {}); // Batch admitted, two tokens emitted…
    }
    let b = s.submit(dense(&m), &high_req).unwrap();
    s.tick(|_| {}); // …and it is evicted for the High arrival here.
    assert_eq!(s.preempted_requests(), 1, "batch request preempted");
    assert_eq!(s.active_slots(), 1, "high request took the slot");
    let kv = s.kv_pool().clone();
    let stats_mid = s.preemption_stats();
    let mut outputs = s.run();
    assert_eq!(kv.blocks_in_use(), 0, "pool drained");
    let high = outputs.remove(b.id());
    let batch = outputs.remove(a.id());
    (batch, high, stats_mid)
}

#[test]
fn high_priority_preempts_batch_by_swap_and_tokens_stay_bit_identical() {
    let m = model();
    let solo_batch = solo_tokens(&m, &GenerateRequest::new(&[1, 2]).max_new(4));
    let solo_high = solo_tokens(&m, &GenerateRequest::new(&[7, 8]).max_new(4));
    for threads in [1, 2, 4] {
        let (batch, high, stats) = preempt_scenario(preemption_config(), threads);
        assert_eq!(stats.preemptions, 1);
        assert_eq!(stats.swapped_out, 1, "swap preferred under no byte cap");
        assert_eq!(stats.recomputed, 0);
        assert!(stats.swapped_bytes > 0, "cold buffer accounted mid-flight");
        assert_eq!(batch.tokens, solo_batch, "swapped run is bit-identical");
        assert_eq!(high.tokens, solo_high);
        assert_eq!(batch.preemptions, 1);
        assert!(batch.swapped_blocks > 0);
        assert_eq!(high.preemptions, 0);
        assert_eq!(high.swapped_blocks, 0);
    }
}

#[test]
fn swap_budget_zero_falls_back_to_deterministic_recompute() {
    let m = model();
    let solo_batch = solo_tokens(&m, &GenerateRequest::new(&[1, 2]).max_new(4));
    let solo_high = solo_tokens(&m, &GenerateRequest::new(&[7, 8]).max_new(4));
    for threads in [1, 2, 4] {
        let config = SchedulerConfig {
            swap_budget_bytes: 0,
            ..preemption_config()
        };
        let (batch, high, stats) = preempt_scenario(config, threads);
        assert_eq!(stats.preemptions, 1);
        assert_eq!(stats.swapped_out, 0);
        assert_eq!(stats.recomputed, 1, "no swap budget: drop and recompute");
        assert_eq!(stats.swapped_bytes, 0);
        assert_eq!(batch.tokens, solo_batch, "recomputed run is bit-identical");
        assert_eq!(high.tokens, solo_high);
        assert_eq!(batch.preemptions, 1);
        assert_eq!(batch.swapped_blocks, 0, "recompute swaps nothing");
    }
}

#[test]
fn cancelling_a_swapped_out_request_frees_cold_bytes_and_pool_drains() {
    let m = model();
    let mut s = Scheduler::new(preemption_config());
    let batch = s
        .submit(
            dense(&m),
            &GenerateRequest::new(&[1, 2])
                .max_new(4)
                .priority(Priority::Batch),
        )
        .unwrap();
    for _ in 0..3 {
        s.tick(|_| {}); // two tokens emitted before eviction
    }
    s.submit(
        dense(&m),
        &GenerateRequest::new(&[7, 8])
            .max_new(4)
            .priority(Priority::High),
    )
    .unwrap();
    s.tick(|_| {});
    assert_eq!(s.preempted_requests(), 1);
    assert!(s.preemption_stats().swapped_bytes > 0);
    assert!(
        s.memory_estimate().swapped_bytes > 0,
        "cold buffers must show up in the memory estimate"
    );
    batch.cancel();
    s.tick(|_| {});
    assert_eq!(
        s.preempted_requests(),
        0,
        "cancellation must not wait for a resume slot"
    );
    assert_eq!(s.preemption_stats().swapped_bytes, 0, "cold buffer freed");
    assert_eq!(s.memory_estimate().swapped_bytes, 0);
    let kv = s.kv_pool().clone();
    let outputs = s.run();
    assert_eq!(kv.blocks_in_use(), 0, "pool drains to zero");
    let cancelled = &outputs[batch.id()];
    assert_eq!(cancelled.finish, FinishReason::Cancelled);
    assert!(!cancelled.tokens.is_empty(), "pre-preemption tokens kept");
    assert_eq!(cancelled.preemptions, 1);
}

#[test]
fn preemption_cap_makes_slots_non_preemptable() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig {
        max_preemptions_per_request: 0,
        ..preemption_config()
    });
    let batch = s
        .submit(
            dense(&m),
            &GenerateRequest::new(&[1, 2])
                .max_new(4)
                .priority(Priority::Batch),
        )
        .unwrap();
    s.tick(|_| {});
    let high = s
        .submit(
            dense(&m),
            &GenerateRequest::new(&[7, 8])
                .max_new(4)
                .priority(Priority::High),
        )
        .unwrap();
    let mut first_finished = None;
    while s.tick(|_| {}) > 0 {
        if first_finished.is_none() && !s.take_finished().is_empty() {
            first_finished = Some(batch.id());
            assert_eq!(
                s.preemption_stats().preemptions,
                0,
                "cap of 0 disables eviction"
            );
        }
    }
    assert_eq!(
        first_finished,
        Some(batch.id()),
        "at the cap the high request waits for the batch one"
    );
    let _ = high;
}

#[test]
fn preemption_disabled_blocks_like_plain_fifo() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig {
        preemption: false,
        ..preemption_config()
    });
    s.submit(
        dense(&m),
        &GenerateRequest::new(&[1, 2])
            .max_new(4)
            .priority(Priority::Batch),
    )
    .unwrap();
    s.tick(|_| {});
    s.submit(
        dense(&m),
        &GenerateRequest::new(&[7, 8])
            .max_new(4)
            .priority(Priority::High),
    )
    .unwrap();
    while s.tick(|_| {}) > 0 {}
    assert_eq!(s.preemption_stats(), PreemptionStats::default());
}

#[test]
fn priority_classes_admit_before_older_lower_classes() {
    let m = model();
    // One slot, no preemption: admission order alone decides.
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 1,
        preemption: false,
        ..SchedulerConfig::default()
    });
    let req = |p: &[u32], prio: Priority| GenerateRequest::new(p).max_new(2).priority(prio);
    let occupant = s.submit(dense(&m), &req(&[9], Priority::Normal)).unwrap();
    s.tick(|_| {}); // occupant holds the only slot
    let batch = s.submit(dense(&m), &req(&[1], Priority::Batch)).unwrap();
    let normal = s.submit(dense(&m), &req(&[2], Priority::Normal)).unwrap();
    let high = s.submit(dense(&m), &req(&[3], Priority::High)).unwrap();
    let mut first_tokens = Vec::new();
    while s.tick(|ev| {
        if ev.index == 0 {
            first_tokens.push(ev.request);
        }
    }) > 0
    {}
    assert_eq!(
        first_tokens,
        vec![occupant.id(), high.id(), normal.id(), batch.id()],
        "admission is priority-first, FIFO within a class"
    );
}

#[test]
fn resumed_requests_admit_ahead_of_equal_priority_fresh_ones() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 4,
        block_tokens: 4,
        kv_block_budget: 4,
        prefix_cache: false,
        prefix_retain_blocks: 0,
        preemption: true,
        max_preemptions_per_request: 8,
        swap_budget_bytes: u64::MAX,
        kv_dtype: KvDtype::F32,
    });
    let batch = s
        .submit(
            dense(&m),
            &GenerateRequest::new(&[1, 2])
                .max_new(4)
                .priority(Priority::Batch),
        )
        .unwrap();
    for _ in 0..3 {
        s.tick(|_| {}); // two tokens emitted before eviction
    }
    s.submit(
        dense(&m),
        &GenerateRequest::new(&[7, 8])
            .max_new(4)
            .priority(Priority::High),
    )
    .unwrap();
    s.tick(|_| {});
    assert_eq!(s.preempted_requests(), 1);
    // A fresh Batch request arrives while the first waits to resume:
    // the preempted one must come back first.
    let fresh = s
        .submit(
            dense(&m),
            &GenerateRequest::new(&[4, 5])
                .max_new(4)
                .priority(Priority::Batch),
        )
        .unwrap();
    let mut events = Vec::new();
    while s.tick(|ev| events.push((ev.request, ev.index))) > 0 {}
    let resumed_at = events
        .iter()
        .position(|&(r, i)| r == batch.id() && i == 2)
        .expect("the resumed request continues at index 2, gapless");
    let fresh_at = events
        .iter()
        .position(|&(r, i)| r == fresh.id() && i == 0)
        .expect("the fresh request eventually starts");
    assert!(
        resumed_at < fresh_at,
        "the resume queue admits ahead of equal-priority fresh work"
    );
    let outputs = s.take_finished();
    let resumed = outputs.iter().find(|o| o.id == batch.id()).unwrap();
    let fresh_out = outputs.iter().find(|o| o.id == fresh.id()).unwrap();
    assert_eq!(resumed.preemptions, 1);
    assert_eq!(fresh_out.preemptions, 0);
    assert_eq!(s.preemption_stats().resumed, 1);
}

#[test]
fn take_finished_drains_incrementally() {
    let m = model();
    let mut s = Scheduler::new(SchedulerConfig::default());
    s.submit(dense(&m), &GenerateRequest::new(&[1]).max_new(1))
        .unwrap();
    s.submit(dense(&m), &GenerateRequest::new(&[2, 3]).max_new(6))
        .unwrap();
    while s.take_finished().is_empty() {
        s.tick(|_| {});
    }
    assert!(s.unfinished_requests() > 0, "long request still going");
    while s.tick(|_| {}) > 0 {}
    assert_eq!(s.take_finished().len(), 1);
    assert!(s.take_finished().is_empty(), "drained");
}

/// Signbit draft over a dense verifier — the paper's sparse-predictor
/// configuration of lossless speculative decoding.
fn speculative<'m>(m: &'m Model, k: usize) -> Box<dyn Engine + 'm> {
    let draft = EngineBuilder::new(m)
        .signbit(AlphaSchedule::uniform(1.0))
        .build()
        .unwrap();
    let verify = EngineBuilder::new(m).build().unwrap();
    EngineBuilder::speculative(draft, verify, k).unwrap()
}

/// Oracle draft over a dense verifier: the draft's argmax chain equals
/// dense decode exactly, so every proposal must be accepted.
fn oracle_speculative<'m>(m: &'m Model, k: usize) -> Box<dyn Engine + 'm> {
    let draft = EngineBuilder::new(m).oracle().build().unwrap();
    let verify = EngineBuilder::new(m).build().unwrap();
    EngineBuilder::speculative(draft, verify, k).unwrap()
}

#[test]
fn speculative_scheduling_is_bit_identical_to_dense_only() {
    let m = model();
    let reqs = [
        GenerateRequest::new(&[1, 2, 3]).max_new(10),
        GenerateRequest::new(&[4, 5]).max_new(8),
        GenerateRequest::new(&[9]).max_new(12),
    ];
    let solos: Vec<Vec<u32>> = reqs.iter().map(|r| solo_tokens(&m, r)).collect();
    for k in [1, 4, 8] {
        for threads in [1, 2, 4] {
            let mut s = Scheduler::new(SchedulerConfig::default())
                .parallel(ParallelOptions::threads(threads));
            for req in &reqs {
                s.submit(speculative(&m, k), req).unwrap();
            }
            let mut streamed: Vec<Vec<u32>> = vec![Vec::new(); reqs.len()];
            while s.tick(|e| {
                assert_eq!(e.index, streamed[e.request].len(), "events in order");
                streamed[e.request].push(e.token);
            }) > 0
            {}
            let mut outputs = s.take_finished();
            outputs.sort_by_key(|o| o.id);
            let mut drafted_sum = 0;
            let mut accepted_sum = 0;
            for (i, out) in outputs.iter().enumerate() {
                assert_eq!(
                    out.tokens, solos[i],
                    "k={k} threads={threads}: speculative tokens must be \
                     bit-identical to dense-only"
                );
                assert_eq!(
                    out.tokens, streamed[i],
                    "streamed events rebuild the output"
                );
                let spec = out.speculative.expect("speculative engines report stats");
                assert!(spec.drafted > 0, "k={k}: blocks were drafted");
                assert!(spec.accepted <= spec.drafted);
                drafted_sum += spec.drafted;
                accepted_sum += spec.accepted;
            }
            let agg = s.speculative_stats();
            assert_eq!(agg.drafted, drafted_sum, "aggregate folds retired requests");
            assert_eq!(agg.accepted, accepted_sum);
        }
    }
}

#[test]
fn speculative_oracle_draft_accepts_everything_through_the_scheduler() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2, 3]).max_new(9);
    let solo = solo_tokens(&m, &req);
    let mut s = Scheduler::new(SchedulerConfig::default());
    s.submit(oracle_speculative(&m, 4), &req).unwrap();
    while s.tick(|_| {}) > 0 {}
    let out = &s.take_finished()[0];
    assert_eq!(out.tokens, solo);
    let spec = out.speculative.expect("stats surfaced on the output");
    assert!(spec.drafted > 0);
    assert_eq!(spec.accepted, spec.drafted, "oracle draft never misses");
    assert!((s.speculative_stats().acceptance_rate() - 1.0).abs() < 1e-9);
}

#[test]
fn speculative_survives_a_preemption_storm_bit_identically() {
    let m = model();
    for k in [1, 4, 8] {
        for threads in [1, 2, 4] {
            let mut s =
                Scheduler::new(preemption_config()).parallel(ParallelOptions::threads(threads));
            // Five waves over a 220-tick storm: each wave's Batch request
            // fills the whole budget, then a High request lands mid-decode
            // three ticks later and must evict it (swap path; pending
            // speculative state and partial tokens ride along).
            let mut expected: Vec<Vec<u32>> = Vec::new();
            for tick in 0..220 {
                if tick % 40 == 0 && tick / 40 < 5 {
                    let w = (tick / 40) as u32;
                    let req = GenerateRequest::new(&[1, 2 + w])
                        .max_new(6)
                        .priority(Priority::Batch);
                    s.submit(speculative(&m, k), &req).unwrap();
                    expected.push(solo_tokens(&m, &req));
                }
                if tick % 40 == 3 && tick / 40 < 5 {
                    let w = (tick / 40) as u32;
                    let req = GenerateRequest::new(&[7, 8 + w])
                        .max_new(6)
                        .priority(Priority::High);
                    s.submit(speculative(&m, k), &req).unwrap();
                    expected.push(solo_tokens(&m, &req));
                }
                s.tick(|_| {});
            }
            while s.tick(|_| {}) > 0 {}
            let stats = s.preemption_stats();
            assert_eq!(stats.preemptions, 5, "k={k} threads={threads}");
            assert_eq!(stats.resumed, 5);
            let mut outputs = s.take_finished();
            outputs.sort_by_key(|o| o.id);
            assert_eq!(outputs.len(), expected.len());
            for (out, solo) in outputs.iter().zip(&expected) {
                assert_eq!(
                    out.tokens, *solo,
                    "k={k} threads={threads}: preempted speculative run \
                     diverged from dense-only"
                );
                assert!(out.speculative.is_some());
            }
            assert!(s.speculative_stats().drafted > 0);
        }
    }
}

/// A sign-bit sparse engine at the given weight format — the engine axis
/// of the dtype matrix (`WeightFormat::F32` vs `Int8`).
fn engine_for<'m>(m: &'m Model, wf: WeightFormat) -> Box<dyn Engine + 'm> {
    EngineBuilder::new(m)
        .signbit(AlphaSchedule::uniform(1.0))
        .weight_format(wf)
        .build()
        .unwrap()
}

/// Solo reference for one dtype configuration: the same request decoded
/// alone in a scheduler with the *same* weight format and KV dtype. The
/// identity claim for quantized configs is batched == its own solo, not
/// batched == fp32 (different storage rounding is a different function).
fn sched_solo_tokens(
    m: &Model,
    config: &SchedulerConfig,
    wf: WeightFormat,
    req: &GenerateRequest,
) -> Vec<u32> {
    let mut s = Scheduler::new(*config);
    s.submit(engine_for(m, wf), req).unwrap();
    s.run().remove(0).tokens
}

#[test]
fn every_dtype_config_is_bit_identical_to_its_own_solo_decode() {
    let m = model();
    let reqs = [
        GenerateRequest::new(&[1, 2, 3]).max_new(8),
        GenerateRequest::new(&[4, 5]).max_new(6),
        GenerateRequest::new(&[9]).max_new(10),
    ];
    for wf in [WeightFormat::F32, WeightFormat::Int8] {
        for kv in [KvDtype::F32, KvDtype::F16] {
            let config = SchedulerConfig {
                kv_dtype: kv,
                ..SchedulerConfig::default()
            };
            let solos: Vec<Vec<u32>> = reqs
                .iter()
                .map(|r| sched_solo_tokens(&m, &config, wf, r))
                .collect();
            for threads in [1, 2, 4] {
                let mut s = Scheduler::new(config).parallel(ParallelOptions::threads(threads));
                for req in &reqs {
                    s.submit(engine_for(&m, wf), req).unwrap();
                }
                let pool = s.kv_pool().clone();
                let outputs = s.run();
                for (out, solo) in outputs.iter().zip(&solos) {
                    assert_eq!(
                        out.tokens,
                        *solo,
                        "weights={} kv={} threads={threads}: batched decode \
                         diverged from its own solo decode",
                        wf.label(),
                        kv.label(),
                    );
                    assert_eq!(out.finish, FinishReason::MaxTokens);
                }
                assert_eq!(pool.blocks_in_use(), 0, "pool drains");
            }
        }
    }
}

#[test]
fn f16_kv_pool_reports_half_the_bytes_of_f32() {
    let m = model();
    let req = GenerateRequest::new(&[1, 2, 3, 4, 5]).max_new(8);
    let peak = |kv: KvDtype| {
        let config = SchedulerConfig {
            kv_dtype: kv,
            prefix_cache: false,
            ..SchedulerConfig::default()
        };
        let mut s = Scheduler::new(config);
        s.submit(dense(&m), &req).unwrap();
        let mut peak = 0u64;
        while s.tick(|_| {}) > 0 {
            peak = peak.max(s.kv_pool().in_use_bytes());
        }
        assert_eq!(s.kv_pool().blocks_in_use(), 0, "pool drains");
        peak
    };
    let full = peak(KvDtype::F32);
    let half = peak(KvDtype::F16);
    assert!(full > 0, "decode must touch the pool");
    assert_eq!(half * 2, full, "f16 must halve in-use KV bytes");
}

#[test]
fn every_dtype_config_survives_the_preemption_storm_and_drains_to_zero() {
    let m = model();
    for wf in [WeightFormat::F32, WeightFormat::Int8] {
        for kv in [KvDtype::F32, KvDtype::F16] {
            let config = SchedulerConfig {
                kv_dtype: kv,
                ..preemption_config()
            };
            // The same five Batch + five High waves as the speculative
            // storm, each decoded solo at this exact configuration first.
            let mut waves = Vec::new();
            for w in 0..5u32 {
                waves.push(
                    GenerateRequest::new(&[1, 2 + w])
                        .max_new(6)
                        .priority(Priority::Batch),
                );
                waves.push(
                    GenerateRequest::new(&[7, 8 + w])
                        .max_new(6)
                        .priority(Priority::High),
                );
            }
            let solos: Vec<Vec<u32>> = waves
                .iter()
                .map(|r| sched_solo_tokens(&m, &config, wf, r))
                .collect();
            for threads in [1, 2, 4] {
                let mut s = Scheduler::new(config).parallel(ParallelOptions::threads(threads));
                for tick in 0..220 {
                    if tick % 40 == 0 && tick / 40 < 5 {
                        s.submit(engine_for(&m, wf), &waves[2 * (tick / 40)])
                            .unwrap();
                    }
                    if tick % 40 == 3 && tick / 40 < 5 {
                        s.submit(engine_for(&m, wf), &waves[2 * (tick / 40) + 1])
                            .unwrap();
                    }
                    s.tick(|_| {});
                }
                while s.tick(|_| {}) > 0 {}
                let stats = s.preemption_stats();
                let tag = format!("weights={} kv={} threads={threads}", wf.label(), kv.label());
                assert_eq!(stats.preemptions, 5, "{tag}");
                assert_eq!(stats.resumed, 5, "{tag}");
                assert_eq!(stats.swapped_bytes, 0, "{tag}: cold buffers returned");
                assert_eq!(s.kv_pool().blocks_in_use(), 0, "{tag}: pool drains to zero");
                assert_eq!(s.kv_pool().in_use_bytes(), 0, "{tag}");
                let mut outputs = s.take_finished();
                outputs.sort_by_key(|o| o.id);
                assert_eq!(outputs.len(), solos.len());
                // Submission order interleaves Batch/High per wave, so ids
                // line up with `waves` order.
                for (out, solo) in outputs.iter().zip(&solos) {
                    assert_eq!(
                        out.tokens, *solo,
                        "{tag}: preempted run diverged from its own solo decode"
                    );
                }
            }
        }
    }
}

#[test]
fn speculative_warm_prefix_resubmission_stays_bit_identical() {
    let m = model();
    let prompt: Vec<u32> = (1..=10).collect();
    let req = GenerateRequest::new(&prompt).max_new(4);
    let solo = solo_tokens(&m, &req);
    let mut s = Scheduler::new(SchedulerConfig {
        max_slots: 2,
        block_tokens: 4,
        kv_block_budget: usize::MAX,
        ..SchedulerConfig::default()
    });
    s.submit(speculative(&m, 4), &req).unwrap();
    while s.tick(|_| {}) > 0 {}
    let cold = s.take_finished();
    assert_eq!(
        cold[0].tokens, solo,
        "cold speculative run is bit-identical"
    );
    assert_eq!(cold[0].prefill_skipped_tokens, 0);

    s.submit(speculative(&m, 4), &req).unwrap();
    while s.tick(|_| {}) > 0 {}
    let warm = s.take_finished();
    assert_eq!(
        warm[0].tokens, solo,
        "warm speculative run is bit-identical"
    );
    assert_eq!(
        warm[0].prefill_skipped_tokens, 8,
        "two full blocks attached"
    );
    let spec = warm[0].speculative.expect("stats on the warm output");
    assert!(
        spec.drafted > 0,
        "drafting resumes over the attached prefix"
    );
}
