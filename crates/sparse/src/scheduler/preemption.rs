//! Preemption and resume: victim selection, KV swap-out to cold buffers (or
//! drop-and-recompute), and the resume paths that restore or deterministically
//! replay an evicted request. Split out of the scheduler core; the methods are
//! `impl Scheduler` continuations operating on the same private state.

use super::*;

/// Where a preempted request's decode state lives while it waits to
/// resume.
pub(super) enum PreemptedState {
    /// KV content copied to cold buffers; the run itself is kept (its
    /// sampler state, emitted tokens and step cursor are all intact) but
    /// holds **zero** pool blocks until restore.
    Swapped {
        run: Box<RequestRun>,
        cold: Vec<SwappedKvCache>,
        cold_bytes: u64,
    },
    /// KV dropped entirely; only the emitted tokens survive. Resume
    /// rebuilds the run from scratch and deterministically replays them.
    Recompute { tokens: Vec<u32> },
}

/// A request evicted from its slot by a higher-priority admission,
/// waiting in the resume queue. Holds no pool blocks in either state —
/// preempted requests can never deadlock the pool.
pub(super) struct PreemptedRequest<'m> {
    pub(super) id: usize,
    pub(super) engine: Box<dyn Engine + 'm>,
    pub(super) req: GenerateRequest,
    pub(super) signal: Arc<AtomicU8>,
    pub(super) model_key: usize,
    /// Gross worst-case blocks — the swap-resume reservation.
    pub(super) gross_blocks: usize,
    /// Times preempted so far (including the eviction that created this
    /// entry).
    pub(super) preemptions: usize,
    /// KV blocks swapped out over this request's lifetime.
    pub(super) swapped_blocks: usize,
    /// Prefix-cache positions skipped by the *original* admission —
    /// carried so the final output still reports them after a recompute
    /// resume rebuilt the run (possibly with a different hit).
    pub(super) prefill_skipped: usize,
    /// Whether the prompt prefix was already offered to the index.
    pub(super) published: bool,
    /// Tick stamps carried through eviction (see
    /// [`BatchOutput::submitted_tick`] / [`BatchOutput::admitted_tick`]);
    /// `admitted_tick` stays the *first* admission.
    pub(super) submitted_tick: u64,
    pub(super) admitted_tick: u64,
    pub(super) state: PreemptedState,
}

/// The output of a request cancelled or expired while preempted: the
/// tokens it had produced before eviction, with its preemption counters.
/// Dropping `state` frees the cold buffers (swap path) here; the caller
/// already settled the scheduler's `cold_bytes` accounting.
pub(super) fn preempted_output(
    p: PreemptedRequest<'_>,
    finish: FinishReason,
    finished_tick: u64,
) -> BatchOutput {
    let tokens = match p.state {
        PreemptedState::Swapped { run, .. } => run.tokens().to_vec(),
        PreemptedState::Recompute { tokens } => tokens,
    };
    BatchOutput {
        id: p.id,
        tokens,
        finish,
        ops: *p.engine.ops(),
        stats: p.engine.stats().cloned(),
        engine: p.engine.name().to_string(),
        prefill_skipped_tokens: p.prefill_skipped,
        preemptions: p.preemptions,
        swapped_blocks: p.swapped_blocks,
        speculative: p.engine.speculative_stats(),
        submitted_tick: p.submitted_tick,
        admitted_tick: Some(p.admitted_tick),
        finished_tick,
    }
}

impl<'m> Scheduler<'m> {
    /// Makes room for a `priority`-class candidate needing a slot and
    /// `need_blocks` unoccupied budget blocks: evicts unreferenced
    /// warm-cache blocks first (they are only *kept warm*), then — with
    /// [`preemption`](SchedulerConfig::preemption) on — preempts strictly
    /// lower-priority victim slots one at a time. Returns whether the
    /// candidate now fits. Blocks pinned by live sessions (including the
    /// candidate's own prefix hit) are never evicted.
    pub(super) fn make_room(&mut self, priority: Priority, need_blocks: usize) -> bool {
        loop {
            let occupied = self.reserved_blocks + self.index.retained_blocks();
            if occupied.saturating_add(need_blocks) > self.config.kv_block_budget {
                let needed = occupied.saturating_add(need_blocks) - self.config.kv_block_budget;
                let evicted = self
                    .index
                    .evict_unreferenced_to(self.index.unreferenced_blocks().saturating_sub(needed));
                self.evicted_blocks += evicted;
            }
            let occupied = self.reserved_blocks + self.index.retained_blocks();
            let budget_ok = occupied.saturating_add(need_blocks) <= self.config.kv_block_budget;
            let slot_ok = self.slots.len() < self.config.max_slots;
            if budget_ok && slot_ok {
                return true;
            }
            if !self.config.preemption {
                return false;
            }
            let Some(victim) = self.select_victim(priority) else {
                return false;
            };
            self.preempt(victim);
        }
    }

    /// Selects the preemption victim for a `priority`-class candidate:
    /// among slots of *strictly lower* priority still under the
    /// per-request preemption cap, the lowest class loses first and the
    /// youngest (latest-admitted) within that class loses first — oldest
    /// work, which has absorbed the most compute, is disturbed last.
    fn select_victim(&self, priority: Priority) -> Option<usize> {
        let mut victim: Option<(usize, Priority)> = None;
        // Slots are in admission order; `<=` on ties keeps the youngest.
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.req.priority >= priority
                || slot.preempt_count >= self.config.max_preemptions_per_request
            {
                continue;
            }
            if victim.is_none_or(|(_, vp)| slot.req.priority <= vp) {
                victim = Some((i, slot.req.priority));
            }
        }
        victim.map(|(i, _)| i)
    }

    /// Evicts slot `victim` to the resume queue: its reservation returns
    /// to the budget, and its KV content is either swapped to a cold
    /// buffer (within [`swap_budget_bytes`](SchedulerConfig::swap_budget_bytes))
    /// or dropped for deterministic recompute. Either way the request
    /// holds zero pool blocks afterwards.
    fn preempt(&mut self, victim: usize) {
        let slot = self.slots.remove(victim);
        self.reserved_blocks -= slot.worst_blocks;
        self.preemptions += 1;
        let mut run = slot.run;
        let prefill_skipped = run.prefill_skipped_tokens();
        let bytes = run.kv_content_bytes();
        let mut swapped_blocks = slot.swapped_blocks;
        let state = if self.cold_bytes.saturating_add(bytes) <= self.config.swap_budget_bytes {
            swapped_blocks += run.kv_blocks_held();
            let cold = run.swap_out_kv();
            self.cold_bytes += bytes;
            self.swapped_out += 1;
            PreemptedState::Swapped {
                run: Box::new(run),
                cold,
                cold_bytes: bytes,
            }
        } else {
            self.recomputed += 1;
            let tokens = run.tokens().to_vec();
            // Dropping the run frees every block the victim held.
            drop(run);
            PreemptedState::Recompute { tokens }
        };
        self.preempted.push_back(PreemptedRequest {
            id: slot.id,
            engine: slot.engine,
            req: slot.req,
            signal: slot.signal,
            model_key: slot.model_key,
            gross_blocks: slot.gross_blocks,
            preemptions: slot.preempt_count + 1,
            swapped_blocks,
            prefill_skipped,
            published: slot.published,
            submitted_tick: slot.submitted_tick,
            admitted_tick: slot.admitted_tick,
            state,
        });
    }

    /// Tries to resume preempted request `at`. A swapped request restores
    /// its cold buffers into freshly allocated (all-private) blocks under
    /// its gross reservation; a recompute request re-admits like a fresh
    /// request (prefix lookup included) and deterministically replays its
    /// already-emitted tokens. Returns whether it was admitted.
    pub(super) fn try_resume(&mut self, at: usize) -> bool {
        let priority = self.preempted[at].req.priority;
        match &self.preempted[at].state {
            PreemptedState::Swapped { .. } => {
                let need = self.preempted[at].gross_blocks;
                if !self.make_room(priority, need) {
                    return false;
                }
                let p = self.preempted.remove(at).expect("index in bounds");
                let PreemptedState::Swapped {
                    run,
                    cold,
                    cold_bytes,
                } = p.state
                else {
                    unreachable!("state matched Swapped above");
                };
                let mut run = *run;
                run.restore_kv(&cold);
                drop(cold);
                self.cold_bytes -= cold_bytes;
                self.resumed += 1;
                self.reserved_blocks += p.gross_blocks;
                self.slots.push(LiveSlot {
                    id: p.id,
                    engine: p.engine,
                    run,
                    req: p.req,
                    signal: p.signal,
                    worst_blocks: p.gross_blocks,
                    gross_blocks: p.gross_blocks,
                    model_key: p.model_key,
                    published: p.published,
                    preempt_count: p.preemptions,
                    swapped_blocks: p.swapped_blocks,
                    submitted_tick: p.submitted_tick,
                    admitted_tick: p.admitted_tick,
                });
                true
            }
            PreemptedState::Recompute { .. } => {
                let hit = if self.config.prefix_cache {
                    let p = &self.preempted[at];
                    let max_tokens =
                        Self::sharable_tokens(p.req.prompt.len(), self.config.block_tokens);
                    self.index.lookup(
                        p.model_key,
                        &p.req.prompt,
                        self.config.block_tokens,
                        max_tokens,
                    )
                } else {
                    None
                };
                let hit_blocks = hit.as_ref().map_or(0, PrefixHit::total_blocks);
                let net_worst = self.preempted[at].gross_blocks - hit_blocks;
                if !self.make_room(priority, net_worst) {
                    return false;
                }
                let p = self.preempted.remove(at).expect("index in bounds");
                let PreemptedState::Recompute { tokens } = p.state else {
                    unreachable!("state matched Recompute above");
                };
                match RequestRun::with_replay(
                    &p.req,
                    p.engine.as_ref(),
                    &self.kv,
                    hit.as_ref(),
                    tokens,
                ) {
                    Ok(run) => {
                        if let Some(hit) = &hit {
                            self.attached_requests += 1;
                            self.skipped_tokens += hit.tokens as u64;
                        }
                        self.resumed += 1;
                        self.reserved_blocks += net_worst;
                        self.slots.push(LiveSlot {
                            id: p.id,
                            engine: p.engine,
                            run,
                            req: p.req,
                            signal: p.signal,
                            worst_blocks: net_worst,
                            gross_blocks: p.gross_blocks,
                            model_key: p.model_key,
                            // Re-offering already-published blocks is a
                            // no-op in the index, so republishing after a
                            // recompute is harmless either way.
                            published: false,
                            preempt_count: p.preemptions,
                            swapped_blocks: p.swapped_blocks,
                            submitted_tick: p.submitted_tick,
                            admitted_tick: p.admitted_tick,
                        });
                    }
                    // Unreachable today (the request was admitted once
                    // already), kept as data like the fresh path.
                    Err(err) => {
                        let prefill_skipped = p.prefill_skipped;
                        self.record_finished(BatchOutput {
                            id: p.id,
                            tokens: Vec::new(),
                            finish: FinishReason::Failed(err),
                            ops: *p.engine.ops(),
                            stats: p.engine.stats().cloned(),
                            engine: p.engine.name().to_string(),
                            prefill_skipped_tokens: prefill_skipped,
                            preemptions: p.preemptions,
                            speculative: p.engine.speculative_stats(),
                            swapped_blocks: p.swapped_blocks,
                            submitted_tick: p.submitted_tick,
                            admitted_tick: Some(p.admitted_tick),
                            finished_tick: self.ticks,
                        });
                    }
                }
                true
            }
        }
    }
}
