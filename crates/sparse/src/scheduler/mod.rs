//! Continuous-batching scheduler: requests join, decode, cancel and retire
//! **while the engine is running**.
//!
//! The closed [`Batch`](crate::batch::Batch) model — push everything, then
//! run — is fine for offline evaluation but is the wrong shape for serving:
//! real traffic churns. This module is the serving loop proper:
//!
//! * [`Scheduler::submit`] accepts a request **at any time**, including
//!   mid-run, and returns a [`RequestHandle`] that can cancel it (queued or
//!   mid-stream).
//! * Each [`tick`](Scheduler::tick) first **admits** queued requests — in
//!   [`Priority`] order (higher classes first, FIFO within a class), up
//!   to [`max_slots`](SchedulerConfig::max_slots) concurrent decodes and
//!   within the KV block budget — then advances every live slot by one
//!   model step.
//! * Admission is **capacity-based**: a request is admitted only when its
//!   worst-case KV footprint (`prompt + max_new` tokens across every
//!   layer) fits in the unreserved remainder of the pool budget, so the
//!   pool can never be exhausted mid-decode. Actual allocation stays
//!   **lazy** — a request that stops after three tokens only ever
//!   allocated blocks for three tokens — so the reservation is an upper
//!   bound the blocks of finished requests immediately flow back out of.
//! * When a higher-priority request cannot fit, the scheduler (with
//!   [`preemption`](SchedulerConfig::preemption) on) **preempts** a
//!   strictly lower-priority victim slot: the victim's KV is swapped to
//!   a cold buffer (restored verbatim on resume) or, past the
//!   [`swap_budget_bytes`](SchedulerConfig::swap_budget_bytes) cap,
//!   dropped and deterministically recomputed. Preempted requests resume
//!   ahead of equal-priority fresh admissions and finish with exactly
//!   the tokens of an uninterrupted run.
//! * The moment a request finishes (budget, stop token, cancellation or
//!   failure) its slot **retires**: engine scratch, workspace and the
//!   session's KV blocks are released and the freed capacity admits the
//!   next queued request on the very next tick.
//!
//! # Determinism contract
//!
//! Admission order is a pure function of the submission sequence:
//! priority classes first, FIFO within a class (head-of-line blocking
//! included: when the best candidate does not fit, nothing lesser jumps
//! it), slots advance in admission order, and events are delivered in
//! slot order — so a fixed submission sequence yields a fixed admission
//! *and preemption* schedule, a fixed event stream, and **bit-identical
//! tokens per request to running that request alone** — whether the
//! request was never preempted, swapped out and restored, or dropped and
//! recomputed — at any slot-thread count
//! ([`parallel`](Scheduler::parallel)) and any kernel-thread count.
//! Interleaving is pure scheduling; it never touches the math.
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::GenerateRequest;
//! use sparseinfer_sparse::scheduler::{Scheduler, SchedulerConfig};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 3).build();
//! let mut scheduler = Scheduler::new(SchedulerConfig {
//!     max_slots: 2,                  // at most two concurrent decodes
//!     block_tokens: 8,               // KV page granularity
//!     kv_block_budget: usize::MAX,   // no memory cap in this example
//!     ..SchedulerConfig::default()   // prefix cache on, default cap
//! });
//! let first = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[1, 2]).max_new(4),
//!     )
//!     .unwrap();
//! scheduler.tick(|_| {}); // decoding has started…
//! let late = scheduler
//!     .submit(
//!         EngineBuilder::new(&model).build().unwrap(),
//!         &GenerateRequest::new(&[3]).max_new(3),
//!     )
//!     .unwrap(); // …and this request joins mid-run on the next tick.
//! let outputs = scheduler.run();
//! assert_eq!(outputs.len(), 2);
//! assert_eq!(outputs[0].id, first.id());
//! assert_eq!(outputs[1].id, late.id());
//! assert_eq!(outputs[1].tokens.len(), 3);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use sparseinfer_model::kv::{
    KvBlockPool, KvDtype, PrefixHit, PrefixIndex, SwappedKvCache, DEFAULT_BLOCK_TOKENS,
};
use sparseinfer_model::Model;
use sparseinfer_tensor::{ParallelOptions, ThreadPool};

use crate::engine::{Engine, MemoryEstimate, SparsityStats, SpeculativeStats};
use crate::error::EngineError;
use crate::ops::OpCounter;
use crate::request::{FinishReason, GenerateRequest, Priority, RequestRun, TokenEvent};

mod admission;
mod preemption;
mod stats;
#[cfg(test)]
mod tests;

pub use stats::{PreemptionStats, PrefixCacheStats, SchedulerStats};

use preemption::PreemptedRequest;

/// A token emitted by one request inside a scheduler or batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub request: usize,
    /// Zero-based position in that request's continuation.
    pub index: usize,
    /// The token id.
    pub token: u32,
}

/// The finished result of one scheduled request, with per-request
/// accounting.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The request id returned by [`Scheduler::submit`] /
    /// [`Batch::push`](crate::batch::Batch::push).
    pub id: usize,
    /// The generated tokens.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Operations this request executed (prefill through the bare model is
    /// not counted, matching the single-request path).
    pub ops: OpCounter,
    /// Sparsity statistics, for sparse engines.
    pub stats: Option<SparsityStats>,
    /// The engine configuration name that served the request.
    pub engine: String,
    /// Prompt positions whose KV was attached from the scheduler's prefix
    /// cache instead of being prefilled — the per-request hit accounting.
    /// At least `shared full blocks × block_tokens` for a warm-prefix
    /// request; zero on a cold miss or with the cache disabled.
    pub prefill_skipped_tokens: usize,
    /// Times this request was preempted (swapped out or dropped for
    /// recompute) to make room for a higher-priority admission.
    pub preemptions: usize,
    /// KV blocks this request's preemptions swapped out to cold buffers
    /// (summed over every swap-out; zero for the recompute path).
    pub swapped_blocks: usize,
    /// Draft/accept counters, for requests served by a
    /// [`SpeculativeEngine`](crate::engine::SpeculativeEngine); `None` for
    /// engines that never draft. Acceptance only measures how much dense
    /// work each verified block amortized — the tokens themselves are
    /// bit-identical to dense-only decode.
    pub speculative: Option<SpeculativeStats>,
    /// Scheduler tick count when the request was submitted (the index of
    /// the earliest tick that could have admitted it). Tick stamps are a
    /// pure function of the submission sequence — identical at any slot-
    /// or kernel-thread count — which is what lets a load harness report
    /// deterministic queue-wait numbers next to wall-clock percentiles.
    pub submitted_tick: u64,
    /// Tick of the request's *first* admission into a decode slot (later
    /// preemption/resume cycles do not move it); `None` when it never
    /// occupied a slot (cancelled or failed while queued). Queue wait in
    /// ticks is `admitted_tick - submitted_tick`.
    pub admitted_tick: Option<u64>,
    /// Tick the request retired on (finish, cancellation, expiry or
    /// failure — whichever tick actually removed it).
    pub finished_tick: u64,
}

/// Default cap on retained-but-unreferenced prefix blocks (see
/// [`SchedulerConfig::prefix_retain_blocks`]).
pub const DEFAULT_PREFIX_RETAIN_BLOCKS: usize = 512;

/// Admission-control knobs of a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum concurrently decoding requests. Queued requests past this
    /// wait for a slot to retire.
    pub max_slots: usize,
    /// Tokens per KV block — the paging granularity. Smaller blocks waste
    /// less on short answers; larger blocks take the pool lock less often
    /// and share more aggressively (only *full* blocks of a prompt's
    /// densely prefilled region are prefix-sharable).
    pub block_tokens: usize,
    /// Total KV blocks the scheduler's pool may ever hold (across all
    /// layers of all live requests, plus prefix-cache retention).
    /// Admission reserves each request's worst case against this, so
    /// decode can never run out mid-flight. `usize::MAX` disables the
    /// memory gate.
    pub kv_block_budget: usize,
    /// Enables prompt-prefix sharing: full KV blocks of each request's
    /// densely prefilled prompt region are published to a
    /// [`PrefixIndex`] and re-attached (copy-on-write, refcounted) to
    /// later requests with the same prompt prefix, skipping their prefill
    /// work and deduplicating their KV memory. Sharing never changes
    /// tokens or event order — a warm run is bit-identical to a cold one.
    pub prefix_cache: bool,
    /// Cap on prefix blocks retained while **no live session references
    /// them** (the warm cache kept for future requests). Exceeding it
    /// evicts least-recently-used unreferenced entries; blocks attached
    /// to live sessions are pinned and never count against the cap.
    pub prefix_retain_blocks: usize,
    /// Enables preemption: when the admission head outranks a live slot
    /// and cannot fit, the scheduler evicts a victim slot (swap-out or
    /// drop-and-recompute) instead of waiting for it to finish. Safe to
    /// leave on for single-priority workloads — preemption only ever
    /// fires across *strictly different* priority classes.
    pub preemption: bool,
    /// Cap on how many times one request may be preempted. Past it, a
    /// slot becomes non-preemptable and higher-priority arrivals wait
    /// for it like any other capacity — bounding worst-case thrash (each
    /// preemption re-pays restore or recompute work).
    pub max_preemptions_per_request: usize,
    /// Byte budget for swapped-out cold KV buffers. A preemption whose
    /// victim does not fit under it falls back to drop-and-recompute
    /// (memory-free, but the resume re-runs prefill and replays the
    /// generated tokens). `u64::MAX` means swap always; `0` means
    /// recompute always.
    pub swap_budget_bytes: u64,
    /// Element type of the KV block pool every session pages out of.
    /// [`KvDtype::F16`] halves KV memory (`memory_bytes`/`in_use_bytes`
    /// report true halved bytes); attention dequantizes in-loop, so the
    /// storage rounding is the only numeric difference — scheduling,
    /// sharing, swap and event order are unaffected, and each
    /// configuration remains bit-identical to its own solo decode.
    pub kv_dtype: KvDtype,
}

impl Default for SchedulerConfig {
    /// Eight slots, default block size, no KV budget, prefix cache on
    /// with the default retention cap, preemption on (swap preferred,
    /// at most three preemptions per request).
    fn default() -> Self {
        Self {
            max_slots: 8,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
            prefix_cache: true,
            prefix_retain_blocks: DEFAULT_PREFIX_RETAIN_BLOCKS,
            preemption: true,
            max_preemptions_per_request: 3,
            swap_budget_bytes: u64::MAX,
            kv_dtype: KvDtype::F32,
        }
    }
}

impl SchedulerConfig {
    /// No admission limits at all: every submitted request is admitted on
    /// the next tick — the configuration the closed
    /// [`Batch`](crate::batch::Batch) wrapper runs on. The prefix cache
    /// is off, preserving the closed batch's exact memory profile (a
    /// fully finished batch holds zero decode memory).
    pub fn unbounded() -> Self {
        Self {
            max_slots: usize::MAX,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            kv_block_budget: usize::MAX,
            prefix_cache: false,
            prefix_retain_blocks: 0,
            preemption: false,
            max_preemptions_per_request: 0,
            swap_budget_bytes: 0,
            kv_dtype: KvDtype::F32,
        }
    }

    /// A validating builder over the same knobs. The struct-literal path
    /// stays available (and [`Scheduler::new`] still asserts the hard
    /// invariants), but the builder turns contradictory configurations —
    /// a zero paging granularity, a swap budget with preemption disabled —
    /// into an [`EngineError::SchedulerConfig`] a frontend can report
    /// instead of a panic deep in construction.
    ///
    /// ```
    /// use sparseinfer_sparse::scheduler::SchedulerConfig;
    ///
    /// let config = SchedulerConfig::builder()
    ///     .max_slots(4)
    ///     .block_tokens(8)
    ///     .kv_block_budget(4096)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.max_slots, 4);
    /// assert!(SchedulerConfig::builder().block_tokens(0).build().is_err());
    /// ```
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder::default()
    }
}

/// Builder for [`SchedulerConfig`] (see [`SchedulerConfig::builder`]).
/// Unset knobs take the [`Default`] values; validation runs once in
/// [`build`](Self::build) and only flags knobs that were *explicitly*
/// set against a disabled feature, so defaults can never contradict
/// themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerConfigBuilder {
    max_slots: Option<usize>,
    block_tokens: Option<usize>,
    kv_block_budget: Option<usize>,
    prefix_cache: Option<bool>,
    prefix_retain_blocks: Option<usize>,
    preemption: Option<bool>,
    max_preemptions_per_request: Option<usize>,
    swap_budget_bytes: Option<u64>,
    kv_dtype: Option<KvDtype>,
}

impl SchedulerConfigBuilder {
    /// Maximum concurrently decoding requests
    /// (see [`SchedulerConfig::max_slots`]).
    pub fn max_slots(mut self, max_slots: usize) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Tokens per KV block (see [`SchedulerConfig::block_tokens`]).
    pub fn block_tokens(mut self, block_tokens: usize) -> Self {
        self.block_tokens = Some(block_tokens);
        self
    }

    /// Total KV block budget (see [`SchedulerConfig::kv_block_budget`]).
    pub fn kv_block_budget(mut self, kv_block_budget: usize) -> Self {
        self.kv_block_budget = Some(kv_block_budget);
        self
    }

    /// Enables or disables prompt-prefix sharing
    /// (see [`SchedulerConfig::prefix_cache`]).
    pub fn prefix_cache(mut self, prefix_cache: bool) -> Self {
        self.prefix_cache = Some(prefix_cache);
        self
    }

    /// Warm-cache retention cap
    /// (see [`SchedulerConfig::prefix_retain_blocks`]).
    pub fn prefix_retain_blocks(mut self, prefix_retain_blocks: usize) -> Self {
        self.prefix_retain_blocks = Some(prefix_retain_blocks);
        self
    }

    /// Enables or disables preemption
    /// (see [`SchedulerConfig::preemption`]).
    pub fn preemption(mut self, preemption: bool) -> Self {
        self.preemption = Some(preemption);
        self
    }

    /// Per-request preemption cap
    /// (see [`SchedulerConfig::max_preemptions_per_request`]).
    pub fn max_preemptions_per_request(mut self, cap: usize) -> Self {
        self.max_preemptions_per_request = Some(cap);
        self
    }

    /// Cold swap-buffer byte budget
    /// (see [`SchedulerConfig::swap_budget_bytes`]).
    pub fn swap_budget_bytes(mut self, swap_budget_bytes: u64) -> Self {
        self.swap_budget_bytes = Some(swap_budget_bytes);
        self
    }

    /// KV block element type (see [`SchedulerConfig::kv_dtype`]).
    pub fn kv_dtype(mut self, kv_dtype: KvDtype) -> Self {
        self.kv_dtype = Some(kv_dtype);
        self
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError::SchedulerConfig`] when `max_slots`, `block_tokens`
    /// or `kv_block_budget` is zero, or when a feature knob was
    /// explicitly set while its feature is off: a nonzero
    /// `swap_budget_bytes` or `max_preemptions_per_request` with
    /// `preemption(false)`, or a nonzero `prefix_retain_blocks` with
    /// `prefix_cache(false)`.
    pub fn build(self) -> Result<SchedulerConfig, EngineError> {
        let defaults = SchedulerConfig::default();
        let err = |reason| Err(EngineError::SchedulerConfig { reason });
        let config = SchedulerConfig {
            max_slots: self.max_slots.unwrap_or(defaults.max_slots),
            block_tokens: self.block_tokens.unwrap_or(defaults.block_tokens),
            kv_block_budget: self.kv_block_budget.unwrap_or(defaults.kv_block_budget),
            prefix_cache: self.prefix_cache.unwrap_or(defaults.prefix_cache),
            prefix_retain_blocks: self
                .prefix_retain_blocks
                .unwrap_or(defaults.prefix_retain_blocks),
            preemption: self.preemption.unwrap_or(defaults.preemption),
            max_preemptions_per_request: self
                .max_preemptions_per_request
                .unwrap_or(defaults.max_preemptions_per_request),
            swap_budget_bytes: self.swap_budget_bytes.unwrap_or(defaults.swap_budget_bytes),
            kv_dtype: self.kv_dtype.unwrap_or(defaults.kv_dtype),
        };
        if config.max_slots == 0 {
            return err("max_slots must be positive");
        }
        if config.block_tokens == 0 {
            return err("block_tokens must be positive");
        }
        if config.kv_block_budget == 0 {
            return err("kv_block_budget must be positive");
        }
        // Only *explicitly set* knobs can contradict a disabled feature:
        // the defaults are internally consistent by construction.
        if !config.preemption {
            if self.swap_budget_bytes.is_some_and(|b| b > 0) {
                return err("swap_budget_bytes set but preemption is disabled");
            }
            if self.max_preemptions_per_request.is_some_and(|c| c > 0) {
                return err("max_preemptions_per_request set but preemption is disabled");
            }
        }
        if !config.prefix_cache && self.prefix_retain_blocks.is_some_and(|b| b > 0) {
            return err("prefix_retain_blocks set but prefix_cache is disabled");
        }
        Ok(config)
    }
}

/// Out-of-band stop signals a [`RequestHandle`] can raise, in the shared
/// atomic the scheduler polls each tick. The first raised signal wins:
/// whichever of cancel/expire lands first determines the finish reason.
const SIGNAL_LIVE: u8 = 0;
const SIGNAL_CANCELLED: u8 = 1;
const SIGNAL_EXPIRED: u8 = 2;

/// A cancellation/deadline handle for one submitted request.
///
/// Cheaply cloneable (one `Arc` bump) and fully thread-safe (`Send +
/// Sync`), so a serving frontend can hand clones to connection threads
/// that cancel or expire requests without ever touching the scheduler
/// thread. [`cancel`](Self::cancel) and [`expire`](Self::expire) take
/// effect at the start of the next tick, whether the request is still
/// queued or already decoding. The request still appears in the outputs,
/// finished with [`FinishReason::Cancelled`] /
/// [`FinishReason::DeadlineExceeded`] and whatever tokens it had produced.
#[derive(Debug, Clone)]
pub struct RequestHandle {
    id: usize,
    signal: Arc<AtomicU8>,
}

impl RequestHandle {
    /// The request id (also [`BatchOutput::id`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Raises `signal` unless one was already raised — the first signal
    /// decides the finish reason, so a cancel racing an expiry is
    /// deterministic per request: whichever atomically lands first wins.
    fn raise(&self, signal: u8) {
        let _ =
            self.signal
                .compare_exchange(SIGNAL_LIVE, signal, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Requests cancellation. Idempotent; a no-op after
    /// [`expire`](Self::expire) already fired.
    pub fn cancel(&self) {
        self.raise(SIGNAL_CANCELLED);
    }

    /// Marks the request's deadline as exceeded, finishing it with
    /// [`FinishReason::DeadlineExceeded`] on the next tick. Idempotent; a
    /// no-op after [`cancel`](Self::cancel) already fired.
    pub fn expire(&self) {
        self.raise(SIGNAL_EXPIRED);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.signal.load(Ordering::Relaxed) == SIGNAL_CANCELLED
    }

    /// Whether deadline expiry has been signalled.
    pub fn is_expired(&self) -> bool {
        self.signal.load(Ordering::Relaxed) == SIGNAL_EXPIRED
    }
}

/// A request waiting for admission.
struct QueuedRequest<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    req: GenerateRequest,
    signal: Arc<AtomicU8>,
    /// Gross worst-case KV blocks (`prompt + max_new` tokens × layers);
    /// admission nets out prefix hits before reserving.
    worst_blocks: usize,
    /// Prefix-index identity of the engine's model (see
    /// [`Scheduler::model_key`]).
    model_key: usize,
    /// Tick count at submission (see [`BatchOutput::submitted_tick`]).
    submitted_tick: u64,
}

/// A request occupying a decode slot.
struct LiveSlot<'m> {
    id: usize,
    engine: Box<dyn Engine + 'm>,
    run: RequestRun,
    /// The original request — kept so preemption can rebuild the run
    /// (recompute path) and admission can read the priority class.
    req: GenerateRequest,
    signal: Arc<AtomicU8>,
    /// KV blocks this slot's reservation still covers. Starts at the
    /// admission-time net worst case; shrinks when the slot publishes
    /// blocks to the prefix index (ownership shifts to the index's
    /// retention accounting).
    worst_blocks: usize,
    /// Gross worst-case blocks (no prefix netting) — what a swap-out
    /// resume must re-reserve, since a restored cache is all-private.
    gross_blocks: usize,
    model_key: usize,
    /// Whether this slot's densely prefilled prompt blocks have been
    /// offered to the prefix index (done at most once per request).
    published: bool,
    /// Times this request has been preempted so far (capped by
    /// [`SchedulerConfig::max_preemptions_per_request`]).
    preempt_count: usize,
    /// KV blocks this request's preemptions have swapped out so far.
    swapped_blocks: usize,
    /// Tick count at submission (see [`BatchOutput::submitted_tick`]).
    submitted_tick: u64,
    /// Tick of the first admission (see [`BatchOutput::admitted_tick`]);
    /// carried unchanged through preemption/resume cycles.
    admitted_tick: u64,
}

impl<'m> LiveSlot<'m> {
    /// Consumes a finished slot into its output, dropping the engine's
    /// per-session scratch and returning the session's KV blocks to the
    /// pool.
    fn into_output(self, finished_tick: u64) -> BatchOutput {
        let prefill_skipped_tokens = self.run.prefill_skipped_tokens();
        let generation = self.run.into_generation();
        BatchOutput {
            id: self.id,
            tokens: generation.tokens,
            finish: generation.finish,
            ops: *self.engine.ops(),
            stats: self.engine.stats().cloned(),
            engine: self.engine.name().to_string(),
            prefill_skipped_tokens,
            preemptions: self.preempt_count,
            swapped_blocks: self.swapped_blocks,
            speculative: self.engine.speculative_stats(),
            submitted_tick: self.submitted_tick,
            admitted_tick: Some(self.admitted_tick),
            finished_tick,
        }
    }
}

/// The output of a request that never occupied a decode slot (cancelled in
/// the queue, or — defensively — failed at admission): no tokens, counters
/// as the engine left them.
fn unstarted_output(q: QueuedRequest<'_>, finish: FinishReason, finished_tick: u64) -> BatchOutput {
    BatchOutput {
        id: q.id,
        tokens: Vec::new(),
        finish,
        ops: *q.engine.ops(),
        stats: q.engine.stats().cloned(),
        engine: q.engine.name().to_string(),
        prefill_skipped_tokens: 0,
        preemptions: 0,
        swapped_blocks: 0,
        speculative: q.engine.speculative_stats(),
        submitted_tick: q.submitted_tick,
        admitted_tick: None,
        finished_tick,
    }
}

/// A continuous-batching scheduler over a paged KV cache.
///
/// See the [module docs](self) for the serving model and the determinism
/// contract. Constructed via [`new`](Scheduler::new) (plus
/// [`parallel`](Scheduler::parallel) for slot-level thread parallelism);
/// driven either tick by tick ([`tick`](Scheduler::tick) +
/// [`take_finished`](Scheduler::take_finished), the open-ended serving
/// loop) or to completion ([`run`](Scheduler::run) /
/// [`run_streaming`](Scheduler::run_streaming)).
pub struct Scheduler<'m> {
    config: SchedulerConfig,
    pool: ThreadPool,
    kv: KvBlockPool,
    /// Published prompt-prefix blocks, re-attached to later requests.
    /// Every physical block is covered by exactly one of: a live slot's
    /// reservation, or the index's retention — the invariant the budget
    /// math in [`admit`](Self::admit) rests on.
    index: PrefixIndex,
    queue: VecDeque<QueuedRequest<'m>>,
    slots: Vec<LiveSlot<'m>>,
    /// Preempted requests waiting to resume, in eviction order. At equal
    /// priority the resume queue is served *ahead* of fresh admissions —
    /// a preempted request already earned its admission once.
    preempted: VecDeque<PreemptedRequest<'m>>,
    finished: Vec<BatchOutput>,
    next_id: usize,
    /// Completed [`tick`](Self::tick) calls — the deterministic clock the
    /// per-request tick stamps ([`BatchOutput::submitted_tick`] etc.) are
    /// read from.
    ticks: u64,
    /// Requests retired over the scheduler's lifetime (the lifetime
    /// counterpart of the drain-able [`finished`](Self::take_finished)
    /// buffer).
    retired: usize,
    /// Worst-case blocks reserved by the live slots (net of prefix hits
    /// and already-published blocks).
    reserved_blocks: usize,
    /// KV dimension established by the first submission: every session
    /// pages out of one fixed-block-size pool, so later submissions must
    /// match (validated in [`submit`](Self::submit)).
    kv_dim: Option<usize>,
    /// Lifetime prefix-cache counters behind
    /// [`prefix_stats`](Self::prefix_stats).
    attached_requests: usize,
    skipped_tokens: u64,
    published_blocks: usize,
    evicted_blocks: usize,
    /// Lifetime preemption counters behind
    /// [`preemption_stats`](Self::preemption_stats).
    preemptions: usize,
    swapped_out: usize,
    recomputed: usize,
    resumed: usize,
    /// Bytes currently held by cold swap buffers across all preempted
    /// requests — gated by [`SchedulerConfig::swap_budget_bytes`].
    cold_bytes: u64,
    /// Draft/accept counters of requests already retired, behind
    /// [`speculative_stats`](Self::speculative_stats) (live slots are
    /// added at query time).
    spec_retired: SpeculativeStats,
}

impl std::fmt::Debug for Scheduler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("queued", &self.queue.len())
            .field("active", &self.slots.len())
            .field("preempted", &self.preempted.len())
            .field("finished", &self.finished.len())
            .field("reserved_blocks", &self.reserved_blocks)
            .finish()
    }
}

impl<'m> Scheduler<'m> {
    /// An empty scheduler with the given admission-control configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.max_slots`, `config.block_tokens` or
    /// `config.kv_block_budget` is zero.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.max_slots > 0, "max_slots must be positive");
        Self {
            kv: KvBlockPool::with_budget_dtype(
                config.block_tokens,
                config.kv_block_budget,
                config.kv_dtype,
            ),
            config,
            pool: ThreadPool::single(),
            index: PrefixIndex::new(),
            queue: VecDeque::new(),
            slots: Vec::new(),
            preempted: VecDeque::new(),
            finished: Vec::new(),
            next_id: 0,
            ticks: 0,
            retired: 0,
            reserved_blocks: 0,
            kv_dim: None,
            attached_requests: 0,
            skipped_tokens: 0,
            published_blocks: 0,
            evicted_blocks: 0,
            preemptions: 0,
            swapped_out: 0,
            recomputed: 0,
            resumed: 0,
            cold_bytes: 0,
            spec_retired: SpeculativeStats::default(),
        }
    }

    /// Sets slot-level parallelism: each tick advances up to
    /// `parallel.threads` live slots concurrently. Token streams and event
    /// order are bit-identical to the sequential schedule.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.pool = ThreadPool::new(parallel);
        self
    }

    /// Uses an existing worker pool for slot-level parallelism (the
    /// scheduler analogue of
    /// [`EngineBuilder::pool`](crate::engine::EngineBuilder::pool)).
    pub fn slot_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// The admission-control configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The scheduler's KV block pool — exposed for capacity monitoring
    /// (`blocks_in_use`, `memory_bytes`) and tests.
    pub fn kv_pool(&self) -> &KvBlockPool {
        &self.kv
    }

    /// Submits a request, at any time — before the first tick or while
    /// other requests are mid-decode. The request waits in the admission
    /// queue — served in [`Priority`] order, FIFO within its class —
    /// until a slot and enough unreserved KV budget are available. The
    /// engine's counters are reset so the eventual [`BatchOutput::ops`]
    /// is exactly this request's work.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the prompt is empty;
    /// [`EngineError::KvBudgetExceeded`] if the request's worst-case KV
    /// footprint exceeds the *total* budget (it could never be admitted:
    /// prefix sharing dedupes blocks *across* requests, but this
    /// request's shared-plus-private blocks still all exist physically);
    /// [`EngineError::KvDimensionMismatch`] if the engine's model uses a
    /// different KV dimension than this scheduler's earlier submissions —
    /// every session pages out of one shared pool of fixed-size blocks,
    /// so one scheduler serves models of one KV width (mixed *engine
    /// kinds* over one model remain fully supported).
    pub fn submit(
        &mut self,
        mut engine: Box<dyn Engine + 'm>,
        req: &GenerateRequest,
    ) -> Result<RequestHandle, EngineError> {
        if req.prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let model_dim = engine.model().config().hidden_dim;
        if let Some(dim) = self.kv_dim {
            if dim != model_dim {
                return Err(EngineError::KvDimensionMismatch {
                    scheduler_dim: dim,
                    model_dim,
                });
            }
        }
        let worst_blocks = self.worst_case_blocks(engine.as_ref(), req);
        if worst_blocks > self.config.kv_block_budget {
            return Err(EngineError::KvBudgetExceeded {
                required_blocks: worst_blocks,
                budget_blocks: self.config.kv_block_budget,
            });
        }
        let model_key = Self::model_key(engine.model());
        // Latch the pool's dimension only once the request is accepted — a
        // rejected submit must not pin the scheduler to its model.
        self.kv_dim = Some(model_dim);
        engine.reset_ops();
        let id = self.next_id;
        self.next_id += 1;
        let signal = Arc::new(AtomicU8::new(SIGNAL_LIVE));
        self.queue.push_back(QueuedRequest {
            id,
            engine,
            req: req.clone(),
            signal: Arc::clone(&signal),
            worst_blocks,
            model_key,
            submitted_tick: self.ticks,
        });
        Ok(RequestHandle { id, signal })
    }

    /// One scheduling round: admit what fits, apply pending cancellations,
    /// advance every live slot by one model step — concurrently when built
    /// with [`parallel`](Self::parallel) — deliver this round's tokens to
    /// `on_token` in slot order, and retire finished slots (releasing
    /// their KV blocks and engine scratch immediately). Returns the number
    /// of unfinished requests (queued + live) remaining.
    ///
    /// A slot whose engine fails mid-decode finishes with
    /// [`FinishReason::Failed`] and retires like any other; the scheduler
    /// keeps serving its remaining requests.
    pub fn tick(&mut self, mut on_token: impl FnMut(BatchEvent)) -> usize {
        self.admit();
        for slot in &mut self.slots {
            match slot.signal.load(Ordering::Relaxed) {
                SIGNAL_CANCELLED => slot.run.cancel(),
                SIGNAL_EXPIRED => slot.run.expire(),
                _ => {}
            }
        }
        self.pool.run_tasks(&mut self.slots, |_, slot| {
            // A finished run's advance is a no-op that clears its event
            // buffer (so a cancellation arriving after a token tick never
            // re-delivers stale events); an Err has already marked the run
            // finished with a Failed reason, and retirement below records
            // it — tokens emitted earlier in the failing block included.
            let _ = slot.run.advance(slot.engine.as_mut());
        });
        // Publish freshly completed prompt prefixes before retirement, so
        // a request finishing this very tick still leaves its prefix warm.
        self.publish_prefixes();
        // Deliver this tick's tokens in slot order — a block step emits up
        // to `k + 1` events at once, streamed as individual tokens — so
        // streaming callbacks see a deterministic sequence even when slots
        // advance on worker threads.
        for slot in &self.slots {
            for &TokenEvent { index, token } in slot.run.events() {
                on_token(BatchEvent {
                    request: slot.id,
                    index,
                    token,
                });
            }
        }
        // Retire in slot order; `Vec::remove` keeps admission order for
        // the survivors (max_slots is small, the O(n) shift is noise).
        let mut i = 0;
        while i < self.slots.len() {
            if self.slots[i].run.finished() {
                let slot = self.slots.remove(i);
                self.reserved_blocks -= slot.worst_blocks;
                let output = slot.into_output(self.ticks);
                self.record_finished(output);
            } else {
                i += 1;
            }
        }
        self.enforce_prefix_cap();
        self.ticks += 1;
        self.unfinished_requests()
    }

    /// Drains the outputs of every request finished so far, in finish
    /// order — the incremental collection point for open-ended serving
    /// loops that never drain the scheduler completely.
    pub fn take_finished(&mut self) -> Vec<BatchOutput> {
        std::mem::take(&mut self.finished)
    }

    /// Runs every remaining request to completion and returns the
    /// outputs, in submission order, of every request not already drained
    /// through [`take_finished`](Self::take_finished) — on a scheduler
    /// that never called it, that is every request ever submitted (and
    /// `outputs[handle.id()]` indexing is valid).
    pub fn run(self) -> Vec<BatchOutput> {
        self.run_streaming(|_| {})
    }

    /// Runs every remaining request to completion, streaming each token
    /// through `on_token` as it is produced, interleaved across requests.
    /// Returns the outputs of every request not already drained through
    /// [`take_finished`](Self::take_finished), in submission order.
    pub fn run_streaming(mut self, mut on_token: impl FnMut(BatchEvent)) -> Vec<BatchOutput> {
        while self.tick(&mut on_token) > 0 {}
        let mut outputs = self.finished;
        outputs.sort_by_key(|o| o.id);
        outputs
    }
}
