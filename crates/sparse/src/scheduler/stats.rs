//! Observability: the public stats structs and every aggregate accessor —
//! prefix-cache, preemption and speculative-decoding counters, the memory
//! estimate, and the finished-output sink that folds retired requests into
//! the lifetime aggregates. Split out of the scheduler core.

use super::*;

/// Aggregate prefix-cache accounting of one [`Scheduler`] (see
/// [`Scheduler::prefix_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Requests admitted with at least one attached prefix block.
    pub attached_requests: usize,
    /// Total prompt positions skipped across all requests (the sum of
    /// every output's `prefill_skipped_tokens`).
    pub skipped_tokens: u64,
    /// Block handles newly published to the index over the scheduler's
    /// lifetime.
    pub published_blocks: usize,
    /// Block handles evicted from the index (LRU cap or budget pressure).
    pub evicted_blocks: usize,
    /// Blocks the index currently retains (pinned + unreferenced).
    pub retained_blocks: usize,
    /// Retained blocks no live session references (the evictable set the
    /// [`prefix_retain_blocks`](SchedulerConfig::prefix_retain_blocks)
    /// cap applies to).
    pub unreferenced_blocks: usize,
}

/// Aggregate preemption accounting of one [`Scheduler`] (see
/// [`Scheduler::preemption_stats`]). All zeros when
/// [`preemption`](SchedulerConfig::preemption) is off or traffic is
/// single-priority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreemptionStats {
    /// Preemption events over the scheduler's lifetime (each counts one
    /// victim eviction, whether by swap-out or drop-and-recompute).
    pub preemptions: usize,
    /// Preemptions that swapped the victim's KV to a cold buffer.
    pub swapped_out: usize,
    /// Preemptions that dropped the victim's KV for recompute.
    pub recomputed: usize,
    /// Preempted requests resumed into a slot so far.
    pub resumed: usize,
    /// Requests currently preempted and waiting to resume.
    pub preempted_now: usize,
    /// Bytes currently held in cold swap buffers (also surfaced as
    /// [`MemoryEstimate::swapped_bytes`]).
    pub swapped_bytes: u64,
}

/// One point-in-time snapshot of **every** observable the scheduler
/// exposes — the single stats surface behind [`Scheduler::stats`].
///
/// The individual accessors ([`prefix_stats`](Scheduler::prefix_stats),
/// [`preemption_stats`](Scheduler::preemption_stats),
/// [`speculative_stats`](Scheduler::speculative_stats),
/// [`memory_estimate`](Scheduler::memory_estimate)) remain available, but
/// consumers that report state — the HTTP `/stats` endpoint, the
/// trace-replay harness's `SloReport` — take this one struct and encode
/// it through one serializer (`sparseinfer::stats`), so the two surfaces
/// can never drift apart field by field.
#[derive(Debug, Clone, Default)]
pub struct SchedulerStats {
    /// Completed [`tick`](Scheduler::tick) calls — the deterministic
    /// clock behind the per-request tick stamps.
    pub ticks: u64,
    /// Requests submitted over the scheduler's lifetime.
    pub submitted: usize,
    /// Requests retired over the scheduler's lifetime (every finish
    /// reason counts — cancellations and failures included).
    pub retired: usize,
    /// Requests waiting for admission (fresh submissions only).
    pub queued: usize,
    /// Requests currently occupying decode slots.
    pub active_slots: usize,
    /// Worst-case KV blocks currently reserved by the live slots.
    pub reserved_blocks: usize,
    /// KV blocks currently allocated out of the pool.
    pub kv_blocks_in_use: usize,
    /// Bytes of those in-use KV blocks.
    pub kv_in_use_bytes: u64,
    /// The pool's block budget ([`SchedulerConfig::kv_block_budget`]);
    /// `usize::MAX` when the memory gate is disabled.
    pub kv_block_budget: usize,
    /// Label of the KV element type (`"f32"` / `"f16"`).
    pub kv_dtype: &'static str,
    /// Bytes of one stored KV scalar (4 for f32, 2 for f16).
    pub kv_bytes_per_elem: usize,
    /// Engine + KV memory estimate (see [`Scheduler::memory_estimate`]).
    pub memory: MemoryEstimate,
    /// Prefix-cache accounting (see [`Scheduler::prefix_stats`]).
    pub prefix: PrefixCacheStats,
    /// Preemption accounting (see [`Scheduler::preemption_stats`]).
    pub preemption: PreemptionStats,
    /// Speculative-decoding accounting (see
    /// [`Scheduler::speculative_stats`]).
    pub speculative: SpeculativeStats,
}

impl Scheduler<'_> {
    /// Requests submitted over the scheduler's lifetime.
    pub fn submitted(&self) -> usize {
        self.next_id
    }

    /// Requests retired over the scheduler's lifetime.
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Completed [`tick`](Self::tick) calls so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// One snapshot of every observable: counters, queue depths, KV pool
    /// state, the memory estimate, and the prefix/preemption/speculative
    /// aggregates — the single surface `/stats` and the load harness
    /// serialize from.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            ticks: self.ticks,
            submitted: self.submitted(),
            retired: self.retired,
            queued: self.pending_requests(),
            active_slots: self.active_slots(),
            reserved_blocks: self.reserved_blocks,
            kv_blocks_in_use: self.kv.blocks_in_use(),
            kv_in_use_bytes: self.kv.in_use_bytes(),
            kv_block_budget: self.config.kv_block_budget,
            kv_dtype: self.kv.dtype().label(),
            kv_bytes_per_elem: self.kv.dtype().bytes_per_elem(),
            memory: self.memory_estimate(),
            prefix: self.prefix_stats(),
            preemption: self.preemption_stats(),
            speculative: self.speculative_stats(),
        }
    }

    /// Requests not yet finished (queued, live, or preempted).
    pub fn unfinished_requests(&self) -> usize {
        self.queue.len() + self.slots.len() + self.preempted.len()
    }

    /// Requests waiting for admission (fresh submissions only; preempted
    /// requests awaiting resume are counted by
    /// [`preempted_requests`](Self::preempted_requests)).
    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently occupying decode slots.
    pub fn active_slots(&self) -> usize {
        self.slots.len()
    }

    /// Requests currently preempted and waiting to resume.
    pub fn preempted_requests(&self) -> usize {
        self.preempted.len()
    }

    /// Worst-case KV blocks currently reserved by the live slots (net of
    /// prefix hits and blocks already handed to the index's retention).
    pub fn reserved_blocks(&self) -> usize {
        self.reserved_blocks
    }

    /// Aggregate prefix-cache accounting: hit/publication/eviction
    /// counters over the scheduler's lifetime plus the index's current
    /// retention. All zeros when
    /// [`prefix_cache`](SchedulerConfig::prefix_cache) is off.
    pub fn prefix_stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            attached_requests: self.attached_requests,
            skipped_tokens: self.skipped_tokens,
            published_blocks: self.published_blocks,
            evicted_blocks: self.evicted_blocks,
            retained_blocks: self.index.retained_blocks(),
            unreferenced_blocks: self.index.unreferenced_blocks(),
        }
    }

    /// Aggregate preemption accounting: eviction/swap/recompute/resume
    /// counters over the scheduler's lifetime plus the current preempted
    /// population and cold-buffer bytes.
    pub fn preemption_stats(&self) -> PreemptionStats {
        PreemptionStats {
            preemptions: self.preemptions,
            swapped_out: self.swapped_out,
            recomputed: self.recomputed,
            resumed: self.resumed,
            preempted_now: self.preempted.len(),
            swapped_bytes: self.cold_bytes,
        }
    }

    /// Aggregate speculative-decoding accounting: draft/accept counters
    /// summed over every retired request plus the engines currently live,
    /// preempted or queued. All zeros when no submitted engine drafts.
    pub fn speculative_stats(&self) -> SpeculativeStats {
        let mut total = self.spec_retired;
        let engines = self
            .slots
            .iter()
            .map(|s| s.engine.as_ref())
            .chain(self.queue.iter().map(|q| q.engine.as_ref()))
            .chain(self.preempted.iter().map(|p| p.engine.as_ref()));
        for engine in engines {
            if let Some(spec) = engine.speculative_stats() {
                total.merge(&spec);
            }
        }
        total
    }

    /// Records one finished request: folds its draft/accept counters into
    /// the scheduler-lifetime aggregate and queues the output for
    /// [`take_finished`](Self::take_finished).
    pub(super) fn record_finished(&mut self, output: BatchOutput) {
        if let Some(spec) = &output.speculative {
            self.spec_retired.merge(spec);
        }
        self.retired += 1;
        self.finished.push(output);
    }

    /// Memory of the scheduler's execution state: engine memory over every
    /// queued, live and preempted request (shared predictor bytes counted
    /// **once per distinct predictor**, deduplicated by `Arc` identity)
    /// plus the KV blocks live sessions and the prefix cache currently
    /// hold, plus — reported separately as
    /// [`swapped_bytes`](MemoryEstimate::swapped_bytes) — the cold
    /// buffers of swapped-out preempted requests. The pool
    /// reports **physical** blocks — a prefix block attached to ten
    /// sessions costs its bytes once — and is added exactly once here,
    /// never per session, so shared blocks are never double-counted.
    /// Retired requests contribute nothing — their scratch is dropped and
    /// their private blocks are back in the pool — which is the
    /// measurable form of the O(live tokens) memory property.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut seen = Vec::new();
        let mut total = MemoryEstimate::default();
        let engines = self
            .slots
            .iter()
            .map(|s| s.engine.as_ref())
            .chain(self.queue.iter().map(|q| q.engine.as_ref()))
            .chain(self.preempted.iter().map(|p| p.engine.as_ref()));
        for engine in engines {
            let est = engine.memory_estimate();
            total.per_session_bytes += est.per_session_bytes;
            match engine.shared_state_id() {
                Some(id) if seen.contains(&id) => {}
                Some(id) => {
                    seen.push(id);
                    total.shared_bytes += est.shared_bytes;
                    total.weight_bytes += est.weight_bytes;
                }
                None => {
                    total.shared_bytes += est.shared_bytes;
                    total.weight_bytes += est.weight_bytes;
                }
            }
        }
        total.per_session_bytes += self.kv.in_use_bytes();
        // Cold swap buffers live outside the pool — counted separately so
        // swap-out can never silently hide memory from the estimate.
        total.swapped_bytes = self.cold_bytes;
        total
    }
}
