//! INT8 sparse MLP execution (the quantization-portability story, end to
//! end).
//!
//! §IV-A argues the sign-bit predictor is "robust to various standard
//! quantization methods ... as long as the sign bit can be extracted". This
//! module closes the loop: a gated MLP whose three weight matrices are
//! stored in per-row symmetric INT8, executed sparsely under masks produced
//! from the *quantized* representation's sign bits. A trained predictor
//! would have to be retrained for this format (the paper's criticism of
//! DejaVu); here the packed-sign table is simply re-derived from the INT8
//! payloads at load time.

use sparseinfer_model::{Activation, GatedMlp};
use sparseinfer_predictor::SkipMask;
use sparseinfer_tensor::{BlockQuantizedMatrix, QuantizedMatrix, Vector, Workspace};

use crate::ops::OpCounter;

/// A gated MLP block with *block-quantized* INT8 weights (one scale per
/// [`QUANT_BLOCK`](sparseinfer_tensor::gemv::QUANT_BLOCK) columns), executed
/// through the fused block-dequant kernels
/// ([`sparse_gemv_q8_into`](crate::gemv::sparse_gemv_q8_into) /
/// [`sparse_down_proj_q8_into`](crate::gemv::sparse_down_proj_q8_into)).
///
/// This is the serving hot path's INT8 weight format — finer-grained than
/// [`QuantizedGatedMlp`]'s per-row scales, and wired into the engine behind
/// the `WeightFormat::Int8` knob. Rows are dequantized *inside* the
/// reduction, never materialized as `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedQuantizedMlp {
    gate: BlockQuantizedMatrix,
    up: BlockQuantizedMatrix,
    down_t: BlockQuantizedMatrix,
    activation: Activation,
}

impl FusedQuantizedMlp {
    /// Quantizes an existing full-precision block (one-time, at load).
    pub fn quantize(mlp: &GatedMlp) -> Self {
        Self {
            gate: BlockQuantizedMatrix::quantize(mlp.w_gate()),
            up: BlockQuantizedMatrix::quantize(mlp.w_up()),
            down_t: BlockQuantizedMatrix::quantize(mlp.w_down_t()),
            activation: mlp.activation(),
        }
    }

    /// Model dimension `d`.
    pub fn hidden_dim(&self) -> usize {
        self.gate.cols()
    }

    /// Intermediate dimension `k`.
    pub fn mlp_dim(&self) -> usize {
        self.gate.rows()
    }

    /// The quantized gate matrix.
    pub fn w_gate(&self) -> &BlockQuantizedMatrix {
        &self.gate
    }

    /// The quantized up matrix.
    pub fn w_up(&self) -> &BlockQuantizedMatrix {
        &self.up
    }

    /// The quantized (transposed) down matrix.
    pub fn w_down_t(&self) -> &BlockQuantizedMatrix {
        &self.down_t
    }

    /// The block's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Total INT8 weight bytes (values + block scales) — ~4× smaller than
    /// FP32.
    pub fn size_bytes(&self) -> usize {
        self.gate.size_bytes() + self.up.size_bytes() + self.down_t.size_bytes()
    }
}

/// A gated MLP block with INT8 weights (per-row scales), skip-capable.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGatedMlp {
    gate: QuantizedMatrix,
    up: QuantizedMatrix,
    down_t: QuantizedMatrix,
    activation: Activation,
}

impl QuantizedGatedMlp {
    /// Quantizes an existing full-precision block (one-time, at load).
    pub fn quantize(mlp: &GatedMlp) -> Self {
        Self {
            gate: QuantizedMatrix::quantize(mlp.w_gate()),
            up: QuantizedMatrix::quantize(mlp.w_up()),
            down_t: QuantizedMatrix::quantize(mlp.w_down_t()),
            activation: mlp.activation(),
        }
    }

    /// Model dimension `d`.
    pub fn hidden_dim(&self) -> usize {
        self.gate.cols()
    }

    /// Intermediate dimension `k`.
    pub fn mlp_dim(&self) -> usize {
        self.gate.rows()
    }

    /// The quantized gate matrix (source of the predictor's sign bits).
    pub fn gate(&self) -> &QuantizedMatrix {
        &self.gate
    }

    /// Total INT8 weight bytes (with scales) — 4× smaller than FP32.
    pub fn size_bytes(&self) -> usize {
        self.gate.size_bytes() + self.up.size_bytes() + self.down_t.size_bytes()
    }

    /// Sparse forward pass under `predicted`, with the same step structure
    /// and actual-sparsity compensation as the FP32 path. Thin allocating
    /// wrapper over [`forward_sparse_into`](Self::forward_sparse_into).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `predicted` disagree with the block's dimensions.
    pub fn forward_sparse(
        &self,
        x: &Vector,
        predicted: &SkipMask,
        actual_sparsity: bool,
        ops: &mut OpCounter,
    ) -> Vector {
        let mut ws = Workspace::new();
        let mut effective = SkipMask::all_dense(0);
        let mut out = Vector::zeros(0);
        self.forward_sparse_into(
            x,
            predicted,
            actual_sparsity,
            &mut ws,
            &mut effective,
            ops,
            &mut out,
        );
        out
    }

    /// Workspace variant of [`forward_sparse`](Self::forward_sparse): all
    /// intermediates come from `ws`, the applied mask is built in place in
    /// `effective` (enter with any contents), and the block output lands in
    /// `out`. After warm-up the call performs zero heap allocations, and its
    /// output is bit-identical to the allocating wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `predicted` disagree with the block's dimensions.
    #[allow(clippy::too_many_arguments)] // the hot path threads every resource explicitly
    pub fn forward_sparse_into(
        &self,
        x: &Vector,
        predicted: &SkipMask,
        actual_sparsity: bool,
        ws: &mut Workspace,
        effective: &mut SkipMask,
        ops: &mut OpCounter,
        out: &mut Vector,
    ) {
        assert_eq!(x.len(), self.hidden_dim(), "input length mismatch");
        assert_eq!(predicted.len(), self.mlp_dim(), "mask length mismatch");
        let k = self.mlp_dim();
        let d = self.hidden_dim();
        let xs = x.as_slice();

        // Step 1: gate under the predicted mask. The recycled buffer arrives
        // with stale contents, so every slot is written exactly once.
        let mut h1 = ws.take(k);
        for (r, slot) in h1.as_mut_slice().iter_mut().enumerate() {
            *slot = if predicted.is_skipped(r) {
                0.0
            } else {
                self.gate.row_dot(r, xs)
            };
        }
        self.activation.apply_slice(h1.as_mut_slice());
        track_rows(ops, predicted, d, 1);

        // Actual-sparsity union, built in place.
        effective.copy_from(predicted);
        if actual_sparsity {
            effective.union_exact_zeros(&h1);
        }

        // Steps 2–3, in place: h1 becomes h3 = h1 ⊙ h2.
        for (r, slot) in h1.as_mut_slice().iter_mut().enumerate() {
            *slot = if effective.is_skipped(r) {
                0.0
            } else {
                *slot * self.up.row_dot(r, xs)
            };
        }
        track_rows(ops, effective, d, 1);

        // Step 4 over the transposed down projection.
        out.resize(d, 0.0);
        out.as_mut_slice().fill(0.0);
        for r in effective.active_rows() {
            let scale = h1[r];
            if scale == 0.0 {
                continue;
            }
            let srow = self.down_t.scales()[r] * scale;
            for (o, q) in out.as_mut_slice().iter_mut().zip(self.down_t.row(r)) {
                *o += f32::from(*q) * srow;
            }
        }
        track_rows(ops, effective, d, 1);
        ws.give(h1);
    }
}

fn track_rows(ops: &mut OpCounter, mask: &SkipMask, cols: usize, passes: u64) {
    let active = (mask.len() - mask.skip_count()) as u64;
    ops.macs += passes * active * cols as u64;
    // INT8 weights: 1 byte per element.
    ops.weight_bytes_loaded += passes * active * cols as u64;
    ops.rows_computed += passes * active;
    ops.rows_skipped += passes * mask.skip_count() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{sparse_mlp_forward, MlpOptions};
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_predictor::{
        AlphaSchedule, OraclePredictor, SignBitPredictor, SparsityPredictor,
    };
    use sparseinfer_tensor::sign::PackedSignMatrix;
    use sparseinfer_tensor::{Matrix, Prng};

    fn setup() -> (sparseinfer_model::Model, Vector) {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 41).build();
        let mut rng = Prng::seed(42);
        let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.5, 0.9) as f32);
        (model, x)
    }

    #[test]
    fn quantized_output_tracks_fp32_output() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = QuantizedGatedMlp::quantize(mlp);
        let mut oracle = OraclePredictor::from_model(&model);
        let mask = oracle.predict(0, &x);

        let mut ops = OpCounter::default();
        let q_out = qmlp.forward_sparse(&x, &mask, true, &mut ops);
        let f_out = sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops);

        let ref_norm = f_out.output.norm().max(1e-6);
        let mut err = 0.0f32;
        for (a, b) in q_out.iter().zip(f_out.output.iter()) {
            err += (a - b) * (a - b);
        }
        let rel = err.sqrt() / ref_norm;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn signbit_masks_from_int8_match_fp32_masks_closely() {
        let (model, x) = setup();
        let schedule = AlphaSchedule::uniform(1.0);
        let mut fp32 = SignBitPredictor::from_model(&model, schedule.clone());

        let packed: Vec<PackedSignMatrix> = model
            .layers()
            .iter()
            .map(|l| QuantizedGatedMlp::quantize(l.mlp()).gate().packed_signs())
            .collect();
        let mut int8 = SignBitPredictor::from_packed(packed, schedule);

        let mut agree = 0usize;
        let mut total = 0usize;
        for layer in 0..model.config().n_layers {
            let a = fp32.predict(layer, &x);
            let b = int8.predict(layer, &x);
            for r in 0..model.config().mlp_dim {
                total += 1;
                if a.is_skipped(r) == b.is_skipped(r) {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.98, "{agree}/{total}");
    }

    #[test]
    fn int8_weights_are_about_4x_smaller_than_fp32() {
        let (model, _) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = QuantizedGatedMlp::quantize(mlp);
        let fp32_bytes = 3 * mlp.mlp_dim() * mlp.hidden_dim() * std::mem::size_of::<f32>();
        let ratio = fp32_bytes as f64 / qmlp.size_bytes() as f64;
        assert!((3.5..4.01).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn int8_ops_accounting_counts_one_byte_per_weight() {
        let (model, x) = setup();
        let qmlp = QuantizedGatedMlp::quantize(model.layers()[0].mlp());
        let k = qmlp.mlp_dim();
        let mut ops = OpCounter::default();
        let _ = qmlp.forward_sparse(&x, &SkipMask::all_dense(k), false, &mut ops);
        assert_eq!(ops.weight_bytes_loaded, ops.macs); // 1 byte per MAC
    }

    #[test]
    fn all_skipped_is_zero_output_and_free() {
        let (model, x) = setup();
        let qmlp = QuantizedGatedMlp::quantize(model.layers()[0].mlp());
        let mut ops = OpCounter::default();
        let out = qmlp.forward_sparse(&x, &SkipMask::all_skipped(qmlp.mlp_dim()), true, &mut ops);
        assert!(out.iter().all(|v| *v == 0.0));
        assert_eq!(ops.macs, 0);
    }

    #[test]
    fn into_variant_is_bitwise_equal_to_the_allocating_wrapper() {
        let (model, x) = setup();
        let qmlp = QuantizedGatedMlp::quantize(model.layers()[0].mlp());
        let mask = SkipMask::from_fn(qmlp.mlp_dim(), |r| r % 3 == 0);

        let mut ops = OpCounter::default();
        let want = qmlp.forward_sparse(&x, &mask, true, &mut ops);

        let mut ws = Workspace::new();
        let mut effective = SkipMask::all_dense(0);
        // Stale buffer contents must not leak into the output.
        let mut out = Vector::from_vec(vec![f32::NAN; qmlp.hidden_dim()]);
        let mut ops2 = OpCounter::default();
        qmlp.forward_sparse_into(
            &x,
            &mask,
            true,
            &mut ws,
            &mut effective,
            &mut ops2,
            &mut out,
        );
        assert_eq!(out, want);
        assert_eq!(ops2.macs, ops.macs);

        // Steady state: a second call reuses the pooled buffer.
        qmlp.forward_sparse_into(
            &x,
            &mask,
            true,
            &mut ws,
            &mut effective,
            &mut ops2,
            &mut out,
        );
        assert_eq!(out, want);
        assert_eq!(ws.pooled(), 1, "h1 buffer returns to the workspace");
    }

    #[test]
    fn fused_quantized_mlp_is_about_4x_smaller_than_fp32() {
        let (model, _) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = FusedQuantizedMlp::quantize(mlp);
        let fp32_bytes = 3 * mlp.mlp_dim() * mlp.hidden_dim() * std::mem::size_of::<f32>();
        let ratio = fp32_bytes as f64 / qmlp.size_bytes() as f64;
        // Block scales (one f32 per 32 weights) cost a bit more than per-row
        // scales, but the ratio stays close to 4.
        assert!((3.4..4.01).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn quantize_preserves_dims() {
        let gate = Matrix::zeros(12, 8);
        let mlp = GatedMlp::new(gate.clone(), gate.clone(), gate, Activation::Relu);
        let q = QuantizedGatedMlp::quantize(&mlp);
        assert_eq!(q.hidden_dim(), 8);
        assert_eq!(q.mlp_dim(), 12);
    }
}
