//! INT8 sparse MLP execution (the quantization-portability story, end to
//! end).
//!
//! §IV-A argues the sign-bit predictor is "robust to various standard
//! quantization methods ... as long as the sign bit can be extracted". This
//! module closes the loop: a gated MLP whose three weight matrices are
//! stored in per-row symmetric INT8, executed sparsely under masks produced
//! from the *quantized* representation's sign bits. A trained predictor
//! would have to be retrained for this format (the paper's criticism of
//! DejaVu); here the packed-sign table is simply re-derived from the INT8
//! payloads at load time.

use sparseinfer_model::{Activation, GatedMlp};
use sparseinfer_predictor::SkipMask;
use sparseinfer_tensor::{QuantizedMatrix, Vector};

use crate::ops::OpCounter;

/// A gated MLP block with INT8 weights (per-row scales), skip-capable.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGatedMlp {
    gate: QuantizedMatrix,
    up: QuantizedMatrix,
    down_t: QuantizedMatrix,
    activation: Activation,
}

impl QuantizedGatedMlp {
    /// Quantizes an existing full-precision block (one-time, at load).
    pub fn quantize(mlp: &GatedMlp) -> Self {
        Self {
            gate: QuantizedMatrix::quantize(mlp.w_gate()),
            up: QuantizedMatrix::quantize(mlp.w_up()),
            down_t: QuantizedMatrix::quantize(mlp.w_down_t()),
            activation: mlp.activation(),
        }
    }

    /// Model dimension `d`.
    pub fn hidden_dim(&self) -> usize {
        self.gate.cols()
    }

    /// Intermediate dimension `k`.
    pub fn mlp_dim(&self) -> usize {
        self.gate.rows()
    }

    /// The quantized gate matrix (source of the predictor's sign bits).
    pub fn gate(&self) -> &QuantizedMatrix {
        &self.gate
    }

    /// Total INT8 weight bytes (with scales) — 4× smaller than FP32.
    pub fn size_bytes(&self) -> usize {
        self.gate.size_bytes() + self.up.size_bytes() + self.down_t.size_bytes()
    }

    /// Sparse forward pass under `predicted`, with the same step structure
    /// and actual-sparsity compensation as the FP32 path.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `predicted` disagree with the block's dimensions.
    pub fn forward_sparse(
        &self,
        x: &Vector,
        predicted: &SkipMask,
        actual_sparsity: bool,
        ops: &mut OpCounter,
    ) -> Vector {
        assert_eq!(x.len(), self.hidden_dim(), "input length mismatch");
        assert_eq!(predicted.len(), self.mlp_dim(), "mask length mismatch");
        let k = self.mlp_dim();
        let d = self.hidden_dim();

        // Step 1: gate under the predicted mask.
        let mut h1 = Vector::zeros(k);
        for r in predicted.active_rows() {
            h1[r] = self.gate.row_dot(r, x.as_slice());
        }
        self.activation.apply_slice(h1.as_mut_slice());
        track_rows(ops, predicted, d, 1);

        // Actual-sparsity union.
        let mut mask = predicted.clone();
        if actual_sparsity {
            mask.union_with(&SkipMask::from_exact_zeros(&h1));
        }

        // Steps 2–3.
        let mut h3 = Vector::zeros(k);
        for r in mask.active_rows() {
            h3[r] = h1[r] * self.up.row_dot(r, x.as_slice());
        }
        track_rows(ops, &mask, d, 1);

        // Step 4 over the transposed down projection.
        let mut out = vec![0.0f32; d];
        for r in mask.active_rows() {
            let scale = h3[r];
            if scale == 0.0 {
                continue;
            }
            let srow = self.down_t.scales()[r] * scale;
            for (o, q) in out.iter_mut().zip(self.down_t.row(r)) {
                *o += f32::from(*q) * srow;
            }
        }
        track_rows(ops, &mask, d, 1);
        Vector::from_vec(out)
    }
}

fn track_rows(ops: &mut OpCounter, mask: &SkipMask, cols: usize, passes: u64) {
    let active = (mask.len() - mask.skip_count()) as u64;
    ops.macs += passes * active * cols as u64;
    // INT8 weights: 1 byte per element.
    ops.weight_bytes_loaded += passes * active * cols as u64;
    ops.rows_computed += passes * active;
    ops.rows_skipped += passes * mask.skip_count() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{sparse_mlp_forward, MlpOptions};
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::ModelConfig;
    use sparseinfer_predictor::{
        AlphaSchedule, OraclePredictor, SignBitPredictor, SparsityPredictor,
    };
    use sparseinfer_tensor::sign::PackedSignMatrix;
    use sparseinfer_tensor::{Matrix, Prng};

    fn setup() -> (sparseinfer_model::Model, Vector) {
        let cfg = ModelConfig::tiny();
        let model = WeightGenerator::new(&cfg, 41).build();
        let mut rng = Prng::seed(42);
        let x = Vector::from_fn(cfg.hidden_dim, |_| rng.normal(0.5, 0.9) as f32);
        (model, x)
    }

    #[test]
    fn quantized_output_tracks_fp32_output() {
        let (model, x) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = QuantizedGatedMlp::quantize(mlp);
        let mut oracle = OraclePredictor::from_model(&model);
        let mask = oracle.predict(0, &x);

        let mut ops = OpCounter::default();
        let q_out = qmlp.forward_sparse(&x, &mask, true, &mut ops);
        let f_out = sparse_mlp_forward(mlp, &x, &mask, MlpOptions::default(), &mut ops);

        let ref_norm = f_out.output.norm().max(1e-6);
        let mut err = 0.0f32;
        for (a, b) in q_out.iter().zip(f_out.output.iter()) {
            err += (a - b) * (a - b);
        }
        let rel = err.sqrt() / ref_norm;
        assert!(rel < 0.1, "relative error {rel}");
    }

    #[test]
    fn signbit_masks_from_int8_match_fp32_masks_closely() {
        let (model, x) = setup();
        let schedule = AlphaSchedule::uniform(1.0);
        let mut fp32 = SignBitPredictor::from_model(&model, schedule.clone());

        let packed: Vec<PackedSignMatrix> = model
            .layers()
            .iter()
            .map(|l| QuantizedGatedMlp::quantize(l.mlp()).gate().packed_signs())
            .collect();
        let mut int8 = SignBitPredictor::from_packed(packed, schedule);

        let mut agree = 0usize;
        let mut total = 0usize;
        for layer in 0..model.config().n_layers {
            let a = fp32.predict(layer, &x);
            let b = int8.predict(layer, &x);
            for r in 0..model.config().mlp_dim {
                total += 1;
                if a.is_skipped(r) == b.is_skipped(r) {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 / total as f64 > 0.98, "{agree}/{total}");
    }

    #[test]
    fn int8_weights_are_about_4x_smaller_than_fp32() {
        let (model, _) = setup();
        let mlp = model.layers()[0].mlp();
        let qmlp = QuantizedGatedMlp::quantize(mlp);
        let fp32_bytes = 3 * mlp.mlp_dim() * mlp.hidden_dim() * std::mem::size_of::<f32>();
        let ratio = fp32_bytes as f64 / qmlp.size_bytes() as f64;
        assert!((3.5..4.01).contains(&ratio), "compression ratio {ratio}");
    }

    #[test]
    fn int8_ops_accounting_counts_one_byte_per_weight() {
        let (model, x) = setup();
        let qmlp = QuantizedGatedMlp::quantize(model.layers()[0].mlp());
        let k = qmlp.mlp_dim();
        let mut ops = OpCounter::default();
        let _ = qmlp.forward_sparse(&x, &SkipMask::all_dense(k), false, &mut ops);
        assert_eq!(ops.weight_bytes_loaded, ops.macs); // 1 byte per MAC
    }

    #[test]
    fn all_skipped_is_zero_output_and_free() {
        let (model, x) = setup();
        let qmlp = QuantizedGatedMlp::quantize(model.layers()[0].mlp());
        let mut ops = OpCounter::default();
        let out = qmlp.forward_sparse(&x, &SkipMask::all_skipped(qmlp.mlp_dim()), true, &mut ops);
        assert!(out.iter().all(|v| *v == 0.0));
        assert_eq!(ops.macs, 0);
    }

    #[test]
    fn quantize_preserves_dims() {
        let gate = Matrix::zeros(12, 8);
        let mlp = GatedMlp::new(gate.clone(), gate.clone(), gate, Activation::Relu);
        let q = QuantizedGatedMlp::quantize(&mlp);
        assert_eq!(q.hidden_dim(), 8);
        assert_eq!(q.mlp_dim(), 12);
    }
}
