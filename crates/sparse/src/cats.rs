//! CATS/TEAL-style threshold sparsification (related-work baseline).
//!
//! The paper's related work (§II) contrasts ReLUfication with a second
//! training-free family: keep SiLU, compute the gate *densely*, and zero
//! gate outputs whose magnitude falls below a calibrated, input-distribution
//! threshold (CATS for the FFN; TEAL extends it to attention). That family
//! needs no fine-tuning but delivers lower sparsity at comparable quality —
//! CATS reports a 15% speedup versus SparseInfer's ~21% over the trained
//! state of the art. This module implements the FFN variant so the
//! trade-off can be measured within the same engine framework.
//!
//! Note the structural difference: a CATS-style executor cannot skip the
//! *gate* GEMV (the threshold needs its exact outputs); it only skips the
//! up and down projections. SparseInfer's predictor skips all three.

use sparseinfer_model::{GatedMlp, MlpTrace};
use sparseinfer_predictor::SkipMask;
use sparseinfer_tensor::{gemv::gemv, Vector};

use crate::gemv::{sparse_down_proj, sparse_gemv};
use crate::ops::OpCounter;

/// Per-layer magnitude thresholds calibrated from an activation trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CatsThresholds {
    thresholds: Vec<f32>,
    target_sparsity: f64,
}

impl CatsThresholds {
    /// Calibrates per-layer thresholds so that `target_sparsity` of gate
    /// outputs (post-activation magnitudes) fall below the threshold —
    /// CATS's offline calibration step.
    ///
    /// # Panics
    ///
    /// Panics if `target_sparsity` is outside `(0, 1)` or the trace lacks
    /// samples for some layer.
    pub fn calibrate(
        trace: &MlpTrace,
        activation: sparseinfer_model::Activation,
        target_sparsity: f64,
    ) -> Self {
        assert!(
            target_sparsity > 0.0 && target_sparsity < 1.0,
            "target sparsity {target_sparsity} out of (0, 1)"
        );
        let mut thresholds = Vec::with_capacity(trace.n_layers());
        for layer in 0..trace.n_layers() {
            let mut magnitudes: Vec<f32> = trace
                .layer_samples(layer)
                .flat_map(|s| s.preact.iter().map(|z| activation.apply(*z).abs()))
                .collect();
            assert!(!magnitudes.is_empty(), "no trace samples for layer {layer}");
            magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let idx =
                ((magnitudes.len() as f64 * target_sparsity) as usize).min(magnitudes.len() - 1);
            thresholds.push(magnitudes[idx]);
        }
        Self {
            thresholds,
            target_sparsity,
        }
    }

    /// The calibrated threshold of `layer`.
    pub fn threshold(&self, layer: usize) -> f32 {
        self.thresholds[layer]
    }

    /// Number of calibrated layers.
    pub fn n_layers(&self) -> usize {
        self.thresholds.len()
    }

    /// The sparsity level the calibration targeted.
    pub fn target_sparsity(&self) -> f64 {
        self.target_sparsity
    }
}

/// Result of one CATS-style block execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CatsOutput {
    /// The block output.
    pub output: Vector,
    /// Fraction of gate outputs zeroed by the threshold.
    pub sparsity: f64,
}

/// Executes a gated MLP CATS-style: dense gate, threshold the activated
/// outputs, skip up/down rows for the zeroed positions.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn cats_mlp_forward(
    mlp: &GatedMlp,
    x: &Vector,
    threshold: f32,
    ops: &mut OpCounter,
) -> CatsOutput {
    assert_eq!(x.len(), mlp.hidden_dim(), "input length mismatch");
    let k = mlp.mlp_dim() as u64;
    let d = mlp.hidden_dim() as u64;

    // Dense gate GEMV — the structural cost of threshold-based methods.
    let mut h1 = gemv(mlp.w_gate(), x);
    ops.macs += k * d;
    ops.weight_bytes_loaded += k * d * OpCounter::WEIGHT_BYTES;
    ops.rows_computed += k;
    mlp.activation().apply_slice(h1.as_mut_slice());

    // Threshold: zero small-magnitude gate outputs.
    let mut zeroed = 0usize;
    for v in h1.as_mut_slice() {
        if v.abs() < threshold {
            *v = 0.0;
            zeroed += 1;
        }
    }
    let mask = SkipMask::from_exact_zeros(&h1);

    // Up and down projections skip the zeroed rows.
    let h2 = sparse_gemv(mlp.w_up(), x, &mask, ops);
    let h3 = h1.hadamard(&h2).expect("same length");
    let output = sparse_down_proj(mlp.w_down_t(), &h3, &mask, ops);

    CatsOutput {
        output,
        sparsity: zeroed as f64 / h1.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Activation, ModelConfig};
    use sparseinfer_tensor::Prng;

    fn silu_model() -> sparseinfer_model::Model {
        let mut cfg = ModelConfig::tiny();
        cfg.activation = Activation::Silu;
        WeightGenerator::new(&cfg, 51).build()
    }

    #[test]
    fn calibration_hits_target_sparsity_on_the_trace() {
        let model = silu_model();
        let trace = MlpTrace::capture(&model, &(1..16).collect::<Vec<u32>>(), 0);
        let thresholds = CatsThresholds::calibrate(&trace, Activation::Silu, 0.7);
        assert_eq!(thresholds.n_layers(), model.config().n_layers);

        // Applying the threshold back onto the trace reproduces the target.
        let layer = 0;
        let t = thresholds.threshold(layer);
        let (below, total) = trace.layer_samples(layer).fold((0usize, 0usize), |acc, s| {
            let below = s
                .preact
                .iter()
                .filter(|z| Activation::Silu.apply(**z).abs() < t)
                .count();
            (acc.0 + below, acc.1 + s.preact.len())
        });
        let measured = below as f64 / total as f64;
        assert!((measured - 0.7).abs() < 0.05, "measured {measured}");
    }

    #[test]
    fn cats_forward_is_dense_forward_with_small_terms_removed() {
        let model = silu_model();
        let mlp = model.layers()[0].mlp();
        let mut rng = Prng::seed(52);
        let x = Vector::from_fn(model.config().hidden_dim, |_| rng.normal(0.4, 1.0) as f32);

        // Zero threshold = exact dense computation.
        let mut ops = OpCounter::default();
        let exact = cats_mlp_forward(mlp, &x, 0.0, &mut ops);
        let dense = mlp.forward(&x);
        for (a, b) in exact.output.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }

        // A positive threshold trades a bounded output error for sparsity.
        let mut ops = OpCounter::default();
        let approx = cats_mlp_forward(mlp, &x, 0.01, &mut ops);
        assert!(approx.sparsity > 0.0);
        let err: f32 = approx
            .output
            .iter()
            .zip(dense.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(err > 0.0 && err / dense.norm().max(1e-6) < 0.5);
    }

    #[test]
    fn cats_cannot_skip_the_gate_gemv() {
        // The structural disadvantage vs SparseInfer: the gate is computed
        // densely regardless of threshold.
        let model = silu_model();
        let mlp = model.layers()[0].mlp();
        let x = Vector::from_fn(model.config().hidden_dim, |i| (i as f32 * 0.3).sin());
        let mut ops = OpCounter::default();
        let _ = cats_mlp_forward(mlp, &x, 10.0, &mut ops); // huge threshold
        let dk = (mlp.mlp_dim() * mlp.hidden_dim()) as u64;
        assert!(
            ops.macs >= dk,
            "gate GEMV must always run ({} < {dk})",
            ops.macs
        );
    }

    #[test]
    fn silu_without_threshold_has_no_exploitable_sparsity() {
        // The motivating observation: SiLU alone gives ~0% exact zeros.
        let model = silu_model();
        let mlp = model.layers()[0].mlp();
        let mut rng = Prng::seed(53);
        let x = Vector::from_fn(model.config().hidden_dim, |_| rng.normal(0.4, 1.0) as f32);
        let mut ops = OpCounter::default();
        let out = cats_mlp_forward(mlp, &x, 0.0, &mut ops);
        assert!(out.sparsity < 0.02, "SiLU sparsity {}", out.sparsity);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1)")]
    fn bad_target_sparsity_panics() {
        let model = silu_model();
        let trace = MlpTrace::capture(&model, &[1, 2], 0);
        let _ = CatsThresholds::calibrate(&trace, Activation::Silu, 1.0);
    }
}
