//! Row-skipping GEMV kernels (the CPU analogues of §IV-B3/4's CUDA kernels).

use sparseinfer_predictor::SkipMask;
use sparseinfer_tensor::{Matrix, Vector};

use crate::ops::OpCounter;

/// Sparse GEMV: `y[r] = W_r · x` for active rows, `y[r] = 0` for skipped
/// rows. Mirrors the paper's sparse GEMV kernel, where a warp assigned a
/// skipped row "immediately returns 0 without any computation" — in
/// particular the row's weights are never *loaded*, which is where the
/// memory-bound speedup comes from.
///
/// # Panics
///
/// Panics if `mask.len() != w.rows()` or `x.len() != w.cols()`.
pub fn sparse_gemv(w: &Matrix, x: &Vector, mask: &SkipMask, ops: &mut OpCounter) -> Vector {
    assert_eq!(mask.len(), w.rows(), "mask/rows mismatch");
    assert_eq!(x.len(), w.cols(), "input length mismatch");
    let xs = x.as_slice();
    let mut out = vec![0.0f32; w.rows()];
    let mut active_rows = 0u64;
    for (r, slot) in out.iter_mut().enumerate() {
        if mask.is_skipped(r) {
            continue;
        }
        active_rows += 1;
        let mut acc = 0.0f32;
        for (wi, xi) in w.row(r).iter().zip(xs) {
            acc += wi * xi;
        }
        *slot = acc;
    }
    ops.macs += active_rows * w.cols() as u64;
    ops.weight_bytes_loaded += active_rows * w.cols() as u64 * OpCounter::WEIGHT_BYTES;
    ops.rows_computed += active_rows;
    ops.rows_skipped += (w.rows() as u64) - active_rows;
    Vector::from_vec(out)
}

/// Sparse transposed-weight accumulation for the down projection (step 4):
/// `y += W_down_t[r] · h3[r]` for every *active* row `r`. `W_down` was
/// transposed at load time so sparsity skips whole rows; on the GPU each
/// active row's contribution is an `atomicAdd`, a skipped row simply returns
/// (§IV-B4).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn sparse_down_proj(
    w_down_t: &Matrix,
    h3: &Vector,
    mask: &SkipMask,
    ops: &mut OpCounter,
) -> Vector {
    assert_eq!(mask.len(), w_down_t.rows(), "mask/rows mismatch");
    assert_eq!(h3.len(), w_down_t.rows(), "h3 length mismatch");
    let mut out = vec![0.0f32; w_down_t.cols()];
    let mut active_rows = 0u64;
    for r in 0..w_down_t.rows() {
        if mask.is_skipped(r) {
            continue;
        }
        active_rows += 1;
        let scale = h3[r];
        for (o, wi) in out.iter_mut().zip(w_down_t.row(r)) {
            *o += wi * scale;
        }
    }
    ops.macs += active_rows * w_down_t.cols() as u64;
    ops.weight_bytes_loaded += active_rows * w_down_t.cols() as u64 * OpCounter::WEIGHT_BYTES;
    ops.atomic_adds += active_rows * w_down_t.cols() as u64;
    ops.rows_computed += active_rows;
    ops.rows_skipped += (w_down_t.rows() as u64) - active_rows;
    Vector::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::gemv::{gemv, gemv_transposed};
    use sparseinfer_tensor::Prng;

    fn random_case(seed: u64, k: usize, d: usize) -> (Matrix, Vector) {
        let mut rng = Prng::seed(seed);
        let w = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.0, 1.0) as f32);
        (w, x)
    }

    #[test]
    fn all_dense_mask_matches_dense_gemv() {
        let (w, x) = random_case(1, 12, 8);
        let mask = SkipMask::all_dense(12);
        let mut ops = OpCounter::default();
        let sparse = sparse_gemv(&w, &x, &mask, &mut ops);
        let dense = gemv(&w, &x);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(ops.macs, 12 * 8);
        assert_eq!(ops.rows_skipped, 0);
    }

    #[test]
    fn skipped_rows_are_exactly_zero_and_unloaded() {
        let (w, x) = random_case(2, 10, 8);
        let mask = SkipMask::from_fn(10, |r| r % 2 == 1);
        let mut ops = OpCounter::default();
        let y = sparse_gemv(&w, &x, &mask, &mut ops);
        let dense = gemv(&w, &x);
        for r in 0..10 {
            if r % 2 == 1 {
                assert_eq!(y[r], 0.0);
            } else {
                assert!((y[r] - dense[r]).abs() < 1e-6);
            }
        }
        assert_eq!(ops.macs, 5 * 8);
        assert_eq!(ops.weight_bytes_loaded, 5 * 8 * OpCounter::WEIGHT_BYTES);
        assert_eq!(ops.rows_skipped, 5);
    }

    #[test]
    fn all_skipped_gemv_is_free() {
        let (w, x) = random_case(3, 6, 4);
        let mut ops = OpCounter::default();
        let y = sparse_gemv(&w, &x, &SkipMask::all_skipped(6), &mut ops);
        assert!(y.iter().all(|v| *v == 0.0));
        assert_eq!(ops.macs, 0);
        assert_eq!(ops.weight_bytes_loaded, 0);
    }

    #[test]
    fn down_proj_matches_transposed_gemv_when_dense() {
        let (w, _) = random_case(4, 9, 5);
        let mut rng = Prng::seed(5);
        let h3 = Vector::from_fn(9, |_| rng.normal(0.0, 1.0) as f32);
        let mut ops = OpCounter::default();
        let sparse = sparse_down_proj(&w, &h3, &SkipMask::all_dense(9), &mut ops);
        let dense = gemv_transposed(&w, &h3);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(ops.atomic_adds, 9 * 5);
    }

    #[test]
    fn down_proj_with_mask_equals_dense_on_zeroed_h3() {
        // Skipping row r is mathematically identical to h3[r] = 0.
        let (w, _) = random_case(6, 9, 5);
        let mut rng = Prng::seed(7);
        let h3 = Vector::from_fn(9, |_| rng.normal(0.0, 1.0) as f32);
        let mask = SkipMask::from_fn(9, |r| r < 3);

        let mut ops = OpCounter::default();
        let masked = sparse_down_proj(&w, &h3, &mask, &mut ops);

        let mut h3_zeroed = h3.clone();
        for r in 0..3 {
            h3_zeroed[r] = 0.0;
        }
        let reference = gemv_transposed(&w, &h3_zeroed);
        for (a, b) in masked.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "mask/rows mismatch")]
    fn wrong_mask_length_panics() {
        let (w, x) = random_case(8, 4, 4);
        let mut ops = OpCounter::default();
        let _ = sparse_gemv(&w, &x, &SkipMask::all_dense(5), &mut ops);
    }
}
