//! Row-skipping GEMV kernels (the CPU analogues of §IV-B3/4's CUDA kernels).
//!
//! The `*_into` forms are the serving hot path: they write into
//! caller-provided buffers (recycled through a
//! [`Workspace`](sparseinfer_tensor::Workspace)), reduce through the
//! fixed-order chunked dot product of
//! [`tensor::gemv::dot`](sparseinfer_tensor::gemv::dot), and row/column-
//! partition across a [`ThreadPool`] with one writer per output element —
//! so dense vs sparse, sequential vs parallel, allocating vs workspace
//! paths are all bit-identical. The original allocating signatures survive
//! as thin wrappers.

use sparseinfer_predictor::SkipMask;
use sparseinfer_tensor::gemv::{dot, dot_q8, QUANT_BLOCK};
use sparseinfer_tensor::{BlockQuantizedMatrix, Matrix, ThreadPool, Vector};

use crate::ops::OpCounter;

/// Minimum rows per worker before the sparse GEMV fans out.
const MIN_ROWS_PER_WORKER: usize = 64;
/// Minimum output columns per worker before the down projection fans out.
const MIN_COLS_PER_WORKER: usize = 64;

/// Sparse GEMV: `y[r] = W_r · x` for active rows, `y[r] = 0` for skipped
/// rows. Mirrors the paper's sparse GEMV kernel, where a warp assigned a
/// skipped row "immediately returns 0 without any computation" — in
/// particular the row's weights are never *loaded*, which is where the
/// memory-bound speedup comes from. Thin wrapper over
/// [`sparse_gemv_into`].
///
/// # Panics
///
/// Panics if `mask.len() != w.rows()` or `x.len() != w.cols()`.
pub fn sparse_gemv(w: &Matrix, x: &Vector, mask: &SkipMask, ops: &mut OpCounter) -> Vector {
    let mut out = Vector::zeros(0);
    sparse_gemv_into(w, x, mask, &ThreadPool::single(), ops, &mut out);
    out
}

/// [`sparse_gemv`] into a caller-provided buffer, row-partitioned across
/// `pool`. Every output slot is written exactly once — the dot product for
/// active rows, `0.0` for skipped rows — fixing the seed's double write
/// (zero-fill then overwrite) of active slots.
///
/// # Panics
///
/// Panics if `mask.len() != w.rows()` or `x.len() != w.cols()`.
pub fn sparse_gemv_into(
    w: &Matrix,
    x: &Vector,
    mask: &SkipMask,
    pool: &ThreadPool,
    ops: &mut OpCounter,
    out: &mut Vector,
) {
    assert_eq!(mask.len(), w.rows(), "mask/rows mismatch");
    assert_eq!(x.len(), w.cols(), "input length mismatch");
    let xs = x.as_slice();
    out.resize(w.rows(), 0.0);
    pool.run_chunks(out.as_mut_slice(), MIN_ROWS_PER_WORKER, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let r = offset + i;
            *slot = if mask.is_skipped(r) {
                0.0
            } else {
                dot(w.row(r), xs)
            };
        }
    });
    let active_rows = (w.rows() - mask.skip_count()) as u64;
    ops.macs += active_rows * w.cols() as u64;
    ops.weight_bytes_loaded += active_rows * w.cols() as u64 * OpCounter::WEIGHT_BYTES;
    ops.rows_computed += active_rows;
    ops.rows_skipped += (w.rows() as u64) - active_rows;
}

/// [`sparse_gemv_into`] over int8 block-quantized weights: active rows
/// reduce through the fused block-dequant kernel
/// ([`sparseinfer_tensor::gemv::dot_q8`]), skipped rows write `0.0`
/// without loading a byte. Same row partitioning, same single-writer
/// discipline — bit-identical at every thread count. Weight traffic is
/// counted at one byte per int8 element (the 4× shrink is the point).
///
/// # Panics
///
/// Panics if `mask.len() != w.rows()` or `x.len() != w.cols()`.
pub fn sparse_gemv_q8_into(
    w: &BlockQuantizedMatrix,
    x: &Vector,
    mask: &SkipMask,
    pool: &ThreadPool,
    ops: &mut OpCounter,
    out: &mut Vector,
) {
    assert_eq!(mask.len(), w.rows(), "mask/rows mismatch");
    assert_eq!(x.len(), w.cols(), "input length mismatch");
    let xs = x.as_slice();
    out.resize(w.rows(), 0.0);
    pool.run_chunks(out.as_mut_slice(), MIN_ROWS_PER_WORKER, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let r = offset + i;
            *slot = if mask.is_skipped(r) {
                0.0
            } else {
                dot_q8(w.row(r), w.row_scales(r), xs)
            };
        }
    });
    let active_rows = (w.rows() - mask.skip_count()) as u64;
    ops.macs += active_rows * w.cols() as u64;
    // INT8 weights: 1 byte per element.
    ops.weight_bytes_loaded += active_rows * w.cols() as u64;
    ops.rows_computed += active_rows;
    ops.rows_skipped += (w.rows() as u64) - active_rows;
}

/// Sparse transposed-weight accumulation for the down projection (step 4):
/// `y += W_down_t[r] · h3[r]` for every *active* row `r`. `W_down` was
/// transposed at load time so sparsity skips whole rows; on the GPU each
/// active row's contribution is an `atomicAdd`, a skipped row simply returns
/// (§IV-B4). Thin wrapper over [`sparse_down_proj_into`].
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn sparse_down_proj(
    w_down_t: &Matrix,
    h3: &Vector,
    mask: &SkipMask,
    ops: &mut OpCounter,
) -> Vector {
    let mut out = Vector::zeros(0);
    sparse_down_proj_into(w_down_t, h3, mask, &ThreadPool::single(), ops, &mut out);
    out
}

/// [`sparse_down_proj`] into a caller-provided buffer, partitioned across
/// `pool` by *output column*: each worker accumulates its column range over
/// the active rows in ascending order, so every output element sees the
/// exact same addition sequence regardless of thread count (single writer,
/// fixed order — the CPU stand-in for the GPU's deterministic-sum concern
/// around `atomicAdd`).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn sparse_down_proj_into(
    w_down_t: &Matrix,
    h3: &Vector,
    mask: &SkipMask,
    pool: &ThreadPool,
    ops: &mut OpCounter,
    out: &mut Vector,
) {
    assert_eq!(mask.len(), w_down_t.rows(), "mask/rows mismatch");
    assert_eq!(h3.len(), w_down_t.rows(), "h3 length mismatch");
    out.resize(w_down_t.cols(), 0.0);
    pool.run_chunks(out.as_mut_slice(), MIN_COLS_PER_WORKER, |offset, chunk| {
        chunk.fill(0.0);
        // Active rows are applied in blocks of four per pass over the
        // output chunk: one load/store of each output element per four
        // rows instead of per row. The per-element addition chain stays
        // strictly row-ascending (acc += w_r·h3_r one row at a time), so
        // the result is bit-identical to the row-at-a-time form.
        let mut pending = [(0usize, 0.0f32); 4];
        let mut n = 0usize;
        let mut apply = |pending: &[(usize, f32)]| match *pending {
            [(r0, s0), (r1, s1), (r2, s2), (r3, s3)] => {
                let row0 = &w_down_t.row(r0)[offset..offset + chunk.len()];
                let row1 = &w_down_t.row(r1)[offset..offset + chunk.len()];
                let row2 = &w_down_t.row(r2)[offset..offset + chunk.len()];
                let row3 = &w_down_t.row(r3)[offset..offset + chunk.len()];
                for (i, o) in chunk.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += row0[i] * s0;
                    acc += row1[i] * s1;
                    acc += row2[i] * s2;
                    acc += row3[i] * s3;
                    *o = acc;
                }
            }
            ref rest => {
                for &(r, s) in rest {
                    let row = &w_down_t.row(r)[offset..offset + chunk.len()];
                    for (o, wi) in chunk.iter_mut().zip(row) {
                        *o += wi * s;
                    }
                }
            }
        };
        for r in 0..w_down_t.rows() {
            if mask.is_skipped(r) {
                continue;
            }
            pending[n] = (r, h3[r]);
            n += 1;
            if n == 4 {
                apply(&pending);
                n = 0;
            }
        }
        apply(&pending[..n]);
    });
    let active_rows = (w_down_t.rows() - mask.skip_count()) as u64;
    ops.macs += active_rows * w_down_t.cols() as u64;
    ops.weight_bytes_loaded += active_rows * w_down_t.cols() as u64 * OpCounter::WEIGHT_BYTES;
    ops.atomic_adds += active_rows * w_down_t.cols() as u64;
    ops.rows_computed += active_rows;
    ops.rows_skipped += (w_down_t.rows() as u64) - active_rows;
}

/// [`sparse_down_proj_into`] over int8 block-quantized weights. Each active
/// row's contribution is dequantized element-by-element with the scale
/// looked up by *global* column index (`col / QUANT_BLOCK`), so results are
/// independent of how the output range is chunked across workers. The
/// per-element addition chain is strictly row-ascending, exactly like the
/// f32 kernel — bit-identical at every thread count.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn sparse_down_proj_q8_into(
    w_down_t: &BlockQuantizedMatrix,
    h3: &Vector,
    mask: &SkipMask,
    pool: &ThreadPool,
    ops: &mut OpCounter,
    out: &mut Vector,
) {
    assert_eq!(mask.len(), w_down_t.rows(), "mask/rows mismatch");
    assert_eq!(h3.len(), w_down_t.rows(), "h3 length mismatch");
    out.resize(w_down_t.cols(), 0.0);
    pool.run_chunks(out.as_mut_slice(), MIN_COLS_PER_WORKER, |offset, chunk| {
        chunk.fill(0.0);
        // Same four-rows-per-pass blocking as the f32 kernel; the only
        // difference is the in-loop dequant `f32(q) * scale * h3_r`, with
        // the scale chosen by the element's global column so chunk
        // boundaries cannot change the arithmetic.
        let mut pending = [(0usize, 0.0f32); 4];
        let mut n = 0usize;
        let mut apply = |pending: &[(usize, f32)]| match *pending {
            [(r0, s0), (r1, s1), (r2, s2), (r3, s3)] => {
                let row0 = &w_down_t.row(r0)[offset..offset + chunk.len()];
                let row1 = &w_down_t.row(r1)[offset..offset + chunk.len()];
                let row2 = &w_down_t.row(r2)[offset..offset + chunk.len()];
                let row3 = &w_down_t.row(r3)[offset..offset + chunk.len()];
                let sc0 = w_down_t.row_scales(r0);
                let sc1 = w_down_t.row_scales(r1);
                let sc2 = w_down_t.row_scales(r2);
                let sc3 = w_down_t.row_scales(r3);
                for (i, o) in chunk.iter_mut().enumerate() {
                    let b = (offset + i) / QUANT_BLOCK;
                    let mut acc = *o;
                    acc += f32::from(row0[i]) * sc0[b] * s0;
                    acc += f32::from(row1[i]) * sc1[b] * s1;
                    acc += f32::from(row2[i]) * sc2[b] * s2;
                    acc += f32::from(row3[i]) * sc3[b] * s3;
                    *o = acc;
                }
            }
            ref rest => {
                for &(r, s) in rest {
                    let row = &w_down_t.row(r)[offset..offset + chunk.len()];
                    let scales = w_down_t.row_scales(r);
                    for (i, o) in chunk.iter_mut().enumerate() {
                        *o += f32::from(row[i]) * scales[(offset + i) / QUANT_BLOCK] * s;
                    }
                }
            }
        };
        for r in 0..w_down_t.rows() {
            if mask.is_skipped(r) {
                continue;
            }
            pending[n] = (r, h3[r]);
            n += 1;
            if n == 4 {
                apply(&pending);
                n = 0;
            }
        }
        apply(&pending[..n]);
    });
    let active_rows = (w_down_t.rows() - mask.skip_count()) as u64;
    ops.macs += active_rows * w_down_t.cols() as u64;
    // INT8 weights: 1 byte per element.
    ops.weight_bytes_loaded += active_rows * w_down_t.cols() as u64;
    ops.atomic_adds += active_rows * w_down_t.cols() as u64;
    ops.rows_computed += active_rows;
    ops.rows_skipped += (w_down_t.rows() as u64) - active_rows;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparseinfer_tensor::gemv::{gemv, gemv_transposed};
    use sparseinfer_tensor::Prng;

    fn random_case(seed: u64, k: usize, d: usize) -> (Matrix, Vector) {
        let mut rng = Prng::seed(seed);
        let w = Matrix::from_fn(k, d, |_, _| rng.normal(0.0, 1.0) as f32);
        let x = Vector::from_fn(d, |_| rng.normal(0.0, 1.0) as f32);
        (w, x)
    }

    #[test]
    fn all_dense_mask_matches_dense_gemv() {
        let (w, x) = random_case(1, 12, 8);
        let mask = SkipMask::all_dense(12);
        let mut ops = OpCounter::default();
        let sparse = sparse_gemv(&w, &x, &mask, &mut ops);
        let dense = gemv(&w, &x);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(ops.macs, 12 * 8);
        assert_eq!(ops.rows_skipped, 0);
    }

    #[test]
    fn skipped_rows_are_exactly_zero_and_unloaded() {
        let (w, x) = random_case(2, 10, 8);
        let mask = SkipMask::from_fn(10, |r| r % 2 == 1);
        let mut ops = OpCounter::default();
        let y = sparse_gemv(&w, &x, &mask, &mut ops);
        let dense = gemv(&w, &x);
        for r in 0..10 {
            if r % 2 == 1 {
                assert_eq!(y[r], 0.0);
            } else {
                assert!((y[r] - dense[r]).abs() < 1e-6);
            }
        }
        assert_eq!(ops.macs, 5 * 8);
        assert_eq!(ops.weight_bytes_loaded, 5 * 8 * OpCounter::WEIGHT_BYTES);
        assert_eq!(ops.rows_skipped, 5);
    }

    #[test]
    fn all_skipped_gemv_is_free() {
        let (w, x) = random_case(3, 6, 4);
        let mut ops = OpCounter::default();
        let y = sparse_gemv(&w, &x, &SkipMask::all_skipped(6), &mut ops);
        assert!(y.iter().all(|v| *v == 0.0));
        assert_eq!(ops.macs, 0);
        assert_eq!(ops.weight_bytes_loaded, 0);
    }

    #[test]
    fn down_proj_matches_transposed_gemv_when_dense() {
        let (w, _) = random_case(4, 9, 5);
        let mut rng = Prng::seed(5);
        let h3 = Vector::from_fn(9, |_| rng.normal(0.0, 1.0) as f32);
        let mut ops = OpCounter::default();
        let sparse = sparse_down_proj(&w, &h3, &SkipMask::all_dense(9), &mut ops);
        let dense = gemv_transposed(&w, &h3);
        for (a, b) in sparse.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(ops.atomic_adds, 9 * 5);
    }

    #[test]
    fn down_proj_with_mask_equals_dense_on_zeroed_h3() {
        // Skipping row r is mathematically identical to h3[r] = 0.
        let (w, _) = random_case(6, 9, 5);
        let mut rng = Prng::seed(7);
        let h3 = Vector::from_fn(9, |_| rng.normal(0.0, 1.0) as f32);
        let mask = SkipMask::from_fn(9, |r| r < 3);

        let mut ops = OpCounter::default();
        let masked = sparse_down_proj(&w, &h3, &mask, &mut ops);

        let mut h3_zeroed = h3.clone();
        for r in 0..3 {
            h3_zeroed[r] = 0.0;
        }
        let reference = gemv_transposed(&w, &h3_zeroed);
        for (a, b) in masked.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn into_variants_are_bitwise_identical_across_thread_counts() {
        use sparseinfer_tensor::ParallelOptions;
        let (w, x) = random_case(9, 300, 96);
        let mask = SkipMask::from_fn(300, |r| r % 3 == 0);
        let mut rng = Prng::seed(10);
        let h3 = Vector::from_fn(300, |_| rng.normal(0.0, 1.0) as f32);

        let mut ops = OpCounter::default();
        let gemv_seq = sparse_gemv(&w, &x, &mask, &mut ops);
        let down_seq = sparse_down_proj(&w, &h3, &mask, &mut ops);
        for threads in [2, 4] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut ops_p = OpCounter::default();
            let mut a = Vector::zeros(0);
            sparse_gemv_into(&w, &x, &mask, &pool, &mut ops_p, &mut a);
            assert_eq!(a, gemv_seq, "sparse_gemv @ {threads} threads");
            let mut b = Vector::zeros(0);
            sparse_down_proj_into(&w, &h3, &mask, &pool, &mut ops_p, &mut b);
            assert_eq!(b, down_seq, "sparse_down_proj @ {threads} threads");
        }
    }

    #[test]
    fn q8_into_variants_are_bitwise_identical_across_thread_counts() {
        use sparseinfer_tensor::ParallelOptions;
        let (w, x) = random_case(19, 300, 96);
        let q = BlockQuantizedMatrix::quantize(&w);
        let mask = SkipMask::from_fn(300, |r| r % 3 == 0);
        let mut rng = Prng::seed(20);
        let h3 = Vector::from_fn(300, |_| rng.normal(0.0, 1.0) as f32);

        let single = ThreadPool::single();
        let mut ops = OpCounter::default();
        let mut gemv_seq = Vector::zeros(0);
        sparse_gemv_q8_into(&q, &x, &mask, &single, &mut ops, &mut gemv_seq);
        let mut down_seq = Vector::zeros(0);
        sparse_down_proj_q8_into(&q, &h3, &mask, &single, &mut ops, &mut down_seq);
        for threads in [2, 4] {
            let pool = ThreadPool::new(ParallelOptions::threads(threads));
            let mut ops_p = OpCounter::default();
            let mut a = Vector::zeros(0);
            sparse_gemv_q8_into(&q, &x, &mask, &pool, &mut ops_p, &mut a);
            assert_eq!(a, gemv_seq, "sparse_gemv_q8 @ {threads} threads");
            let mut b = Vector::zeros(0);
            sparse_down_proj_q8_into(&q, &h3, &mask, &pool, &mut ops_p, &mut b);
            assert_eq!(b, down_seq, "sparse_down_proj_q8 @ {threads} threads");
        }
    }

    #[test]
    fn q8_kernels_are_bitwise_equal_to_f32_kernels_over_the_dequantized_weights() {
        // The determinism contract for the quantized route: each q8 kernel
        // produces exactly the result the f32 kernel would produce on the
        // dequantized weights — quantization changes *values* once, at
        // weight-prep time, never the reduction arithmetic.
        let (w, x) = random_case(21, 200, 96);
        let q = BlockQuantizedMatrix::quantize(&w);
        let deq = q.dequantize();
        let mask = SkipMask::from_fn(200, |r| r % 4 == 0);
        let mut rng = Prng::seed(22);
        let h3 = Vector::from_fn(200, |_| rng.normal(0.0, 1.0) as f32);

        let pool = ThreadPool::single();
        let mut ops = OpCounter::default();
        let mut got = Vector::zeros(0);
        sparse_gemv_q8_into(&q, &x, &mask, &pool, &mut ops, &mut got);
        let mut want = Vector::zeros(0);
        sparse_gemv_into(&deq, &x, &mask, &pool, &mut ops, &mut want);
        for r in 0..200 {
            assert_eq!(got[r].to_bits(), want[r].to_bits(), "gemv row {r}");
        }

        let mut got_d = Vector::zeros(0);
        sparse_down_proj_q8_into(&q, &h3, &mask, &pool, &mut ops, &mut got_d);
        let mut want_d = Vector::zeros(0);
        sparse_down_proj_into(&deq, &h3, &mask, &pool, &mut ops, &mut want_d);
        for c in 0..96 {
            assert_eq!(got_d[c].to_bits(), want_d[c].to_bits(), "down col {c}");
        }
    }

    #[test]
    fn q8_kernels_count_one_byte_per_weight() {
        let (w, x) = random_case(23, 128, 64);
        let q = BlockQuantizedMatrix::quantize(&w);
        let mask = SkipMask::from_fn(128, |r| r % 2 == 0);
        let mut rng = Prng::seed(24);
        let h3 = Vector::from_fn(128, |_| rng.normal(0.0, 1.0) as f32);
        let pool = ThreadPool::single();

        let mut ops = OpCounter::default();
        let mut out = Vector::zeros(0);
        sparse_gemv_q8_into(&q, &x, &mask, &pool, &mut ops, &mut out);
        assert_eq!(ops.weight_bytes_loaded, ops.macs, "gemv: 1 byte per MAC");

        let mut ops_d = OpCounter::default();
        sparse_down_proj_q8_into(&q, &h3, &mask, &pool, &mut ops_d, &mut out);
        assert_eq!(
            ops_d.weight_bytes_loaded, ops_d.macs,
            "down: 1 byte per MAC"
        );
    }

    #[test]
    fn into_variant_overwrites_stale_buffer_slots_once() {
        // A recycled workspace buffer arrives full of garbage; skipped rows
        // must still come out exactly zero.
        let (w, x) = random_case(11, 10, 8);
        let mask = SkipMask::from_fn(10, |r| r % 2 == 0);
        let mut out = Vector::from_vec(vec![f32::NAN; 10]);
        let mut ops = OpCounter::default();
        sparse_gemv_into(&w, &x, &mask, &ThreadPool::single(), &mut ops, &mut out);
        for r in 0..10 {
            if r % 2 == 0 {
                assert_eq!(out[r], 0.0, "skipped row {r} must be zeroed");
            } else {
                assert!(out[r].is_finite(), "active row {r} must be computed");
            }
        }
    }

    #[test]
    #[should_panic(expected = "mask/rows mismatch")]
    fn wrong_mask_length_panics() {
        let (w, x) = random_case(8, 4, 4);
        let mut ops = OpCounter::default();
        let _ = sparse_gemv(&w, &x, &SkipMask::all_dense(5), &mut ops);
    }
}
