//! Engine construction and request errors.

/// Errors surfaced by [`EngineBuilder`](crate::engine::EngineBuilder) and
/// the request layer. Configuration mistakes are data, not panics, so a
/// serving frontend can reject a bad request without dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The predictor covers a different number of layers than the model.
    LayerCountMismatch {
        /// Layers in the model.
        model_layers: usize,
        /// Layers the predictor covers.
        predictor_layers: usize,
    },
    /// A generate request arrived with an empty prompt.
    EmptyPrompt,
    /// The engine produced no logits to sample from (zero-sized
    /// vocabulary) — a degenerate model configuration, not a crash.
    EmptyVocab,
    /// Decode reached the sampling state without logits from a prior
    /// engine step — an engine-implementation bug surfaced as an error so
    /// a serving process drops the request instead of aborting.
    MissingLogits,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::LayerCountMismatch {
                model_layers,
                predictor_layers,
            } => write!(
                f,
                "predictor/model layer count mismatch: model has {model_layers} layers, \
                 predictor covers {predictor_layers}"
            ),
            EngineError::EmptyPrompt => write!(f, "prompt must be non-empty"),
            EngineError::EmptyVocab => {
                write!(
                    f,
                    "engine produced no logits to sample from (empty vocabulary)"
                )
            }
            EngineError::MissingLogits => {
                write!(
                    f,
                    "decode reached sampling without logits from an engine step"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_counts() {
        let e = EngineError::LayerCountMismatch {
            model_layers: 4,
            predictor_layers: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains('4') && msg.contains('1'), "{msg}");
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(EngineError::EmptyPrompt);
        assert_eq!(e.to_string(), "prompt must be non-empty");
    }
}
