//! Engine construction and request errors.

/// Errors surfaced by [`EngineBuilder`](crate::engine::EngineBuilder) and
/// the request layer. Configuration mistakes are data, not panics, so a
/// serving frontend can reject a bad request without dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The predictor covers a different number of layers than the model.
    LayerCountMismatch {
        /// Layers in the model.
        model_layers: usize,
        /// Layers the predictor covers.
        predictor_layers: usize,
    },
    /// A generate request arrived with an empty prompt.
    EmptyPrompt,
    /// The engine produced no logits to sample from (zero-sized
    /// vocabulary) — a degenerate model configuration, not a crash.
    EmptyVocab,
    /// Decode reached the sampling state without logits from a prior
    /// engine step — an engine-implementation bug surfaced as an error so
    /// a serving process drops the request instead of aborting.
    MissingLogits,
    /// A request's worst-case KV footprint (`prompt + max_new` tokens
    /// across every layer) exceeds the scheduler's total block budget: it
    /// could never be admitted, so [`submit`](crate::scheduler::Scheduler::submit)
    /// rejects it up front instead of queueing it forever. (Prefix
    /// sharing does not relax this bound — shared blocks dedupe memory
    /// *across* requests, but one request's shared-plus-private blocks
    /// all exist physically. Defensively, the same error can also
    /// surface as a [`FinishReason::Failed`](crate::request::FinishReason)
    /// if an accounting gap ever left an admitted head request unable to
    /// fit — failing one request instead of deadlocking the queue.)
    KvBudgetExceeded {
        /// Blocks the request needs in the worst case.
        required_blocks: usize,
        /// The scheduler's total KV block budget.
        budget_blocks: usize,
    },
    /// A speculative draft/verify pairing was invalid: the two engines
    /// must execute the *same* model (same weights, same tokenizer — the
    /// lossless-acceleration contract compares their logits position by
    /// position) and the draft length `k` must be at least 1.
    SpeculativeConfig {
        /// What was wrong with the pairing.
        reason: &'static str,
    },
    /// A shared quantized-weight set
    /// ([`QuantizedWeights`](crate::engine::QuantizedWeights)) was built
    /// from a different model than the engine executes — layer count or
    /// MLP dimensions disagree.
    QuantizedWeightsMismatch {
        /// What disagreed.
        reason: &'static str,
    },
    /// A [`SchedulerConfig`](crate::scheduler::SchedulerConfig) assembled
    /// through [`SchedulerConfig::builder`](crate::scheduler::SchedulerConfig::builder)
    /// failed validation: a zero capacity knob, or a feature knob set
    /// while its feature is disabled (e.g. a swap budget without
    /// preemption). Surfaced as data so a serving frontend can reject a
    /// bad flag combination with a message instead of panicking at
    /// construction.
    SchedulerConfig {
        /// What was wrong with the configuration.
        reason: &'static str,
    },
    /// The engine's model uses a different KV dimension than the models
    /// already submitted to this scheduler. One scheduler pages every
    /// session out of one fixed-block-size [`KvBlockPool`](sparseinfer_model::kv::KvBlockPool),
    /// so all of its models must agree on the per-position KV width;
    /// [`submit`](crate::scheduler::Scheduler::submit) rejects the
    /// mismatch up front instead of panicking mid-decode.
    KvDimensionMismatch {
        /// KV dimension the scheduler's pool serves.
        scheduler_dim: usize,
        /// KV dimension of the submitted engine's model.
        model_dim: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::LayerCountMismatch {
                model_layers,
                predictor_layers,
            } => write!(
                f,
                "predictor/model layer count mismatch: model has {model_layers} layers, \
                 predictor covers {predictor_layers}"
            ),
            EngineError::EmptyPrompt => write!(f, "prompt must be non-empty"),
            EngineError::EmptyVocab => {
                write!(
                    f,
                    "engine produced no logits to sample from (empty vocabulary)"
                )
            }
            EngineError::MissingLogits => {
                write!(
                    f,
                    "decode reached sampling without logits from an engine step"
                )
            }
            EngineError::KvBudgetExceeded {
                required_blocks,
                budget_blocks,
            } => write!(
                f,
                "request needs up to {required_blocks} KV blocks but the scheduler's \
                 budget is {budget_blocks}: it can never be admitted"
            ),
            EngineError::SpeculativeConfig { reason } => {
                write!(f, "invalid speculative draft/verify pairing: {reason}")
            }
            EngineError::QuantizedWeightsMismatch { reason } => {
                write!(
                    f,
                    "shared quantized weights do not fit this model: {reason}"
                )
            }
            EngineError::SchedulerConfig { reason } => {
                write!(f, "invalid scheduler configuration: {reason}")
            }
            EngineError::KvDimensionMismatch {
                scheduler_dim,
                model_dim,
            } => write!(
                f,
                "engine's model has KV dimension {model_dim} but this scheduler's \
                 pool serves dimension {scheduler_dim}: one scheduler pages one \
                 KV width"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_counts() {
        let e = EngineError::LayerCountMismatch {
            model_layers: 4,
            predictor_layers: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains('4') && msg.contains('1'), "{msg}");
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(EngineError::EmptyPrompt);
        assert_eq!(e.to_string(), "prompt must be non-empty");
    }
}
