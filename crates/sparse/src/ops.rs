//! Operation and memory-traffic accounting.
//!
//! Every sparse/dense kernel in this crate reports into an [`OpCounter`].
//! Besides verifying kernels against each other, the counters regenerate
//! Table I of the paper (operation counts for prediction and for the MLP
//! block) and feed the GPU cost model, whose latency estimates are driven by
//! bytes moved and operations executed.

use sparseinfer_model::ModelConfig;

/// Accumulated operation and traffic counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Multiply–accumulate operations executed (weight-precision math).
    pub macs: u64,
    /// 32-bit XOR+popcount pairs executed by the sign-bit predictor.
    pub xor_popc: u64,
    /// Predictor MACs (DejaVu-style low-rank projections).
    pub predictor_macs: u64,
    /// Weight bytes actually loaded from "DRAM".
    pub weight_bytes_loaded: u64,
    /// Activation bytes loaded or stored (inter-kernel traffic; kernel
    /// fusion reduces this term).
    pub activation_bytes: u64,
    /// Elementwise atomic additions (the transposed down projection).
    pub atomic_adds: u64,
    /// Gate/up/down rows skipped thanks to sparsity.
    pub rows_skipped: u64,
    /// Rows computed.
    pub rows_computed: u64,
}

impl OpCounter {
    /// Bytes per weight element (FP16 storage, as on the paper's GPU).
    pub const WEIGHT_BYTES: u64 = 2;
    /// Bytes per activation element (FP32 intermediate, llama.cpp default).
    pub const ACTIVATION_BYTES: u64 = 4;

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.macs += other.macs;
        self.xor_popc += other.xor_popc;
        self.predictor_macs += other.predictor_macs;
        self.weight_bytes_loaded += other.weight_bytes_loaded;
        self.activation_bytes += other.activation_bytes;
        self.atomic_adds += other.atomic_adds;
        self.rows_skipped += other.rows_skipped;
        self.rows_computed += other.rows_computed;
    }

    /// Fraction of rows skipped among all rows seen.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.rows_skipped + self.rows_computed;
        if total == 0 {
            0.0
        } else {
            self.rows_skipped as f64 / total as f64
        }
    }
}

/// Analytic Table I rows: operation counts per MLP block for the three
/// engines, computed from the paper dimensions (no simulation involved).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Engine label.
    pub engine: &'static str,
    /// Prediction operations per block.
    pub prediction_ops: u64,
    /// MLP block operations per block.
    pub mlp_ops: u64,
}

/// Computes the three rows of Table I for `config` at activation sparsity
/// `sparsity` and DejaVu rank `rank`.
///
/// # Example
///
/// ```
/// use sparseinfer_model::ModelConfig;
/// use sparseinfer_sparse::ops::table1;
///
/// let rows = table1(&ModelConfig::prosparse_13b_paper(), 0.92, 1024);
/// assert_eq!(rows[0].engine, "llama.cpp (dense)");
/// assert_eq!(rows[0].prediction_ops, 0);
/// assert_eq!(rows[2].prediction_ops, 2_211_840); // 2.211e6
/// ```
pub fn table1(config: &ModelConfig, sparsity: f64, rank: usize) -> [Table1Row; 3] {
    [
        Table1Row {
            engine: "llama.cpp (dense)",
            prediction_ops: 0,
            mlp_ops: config.mlp_macs_per_block(),
        },
        Table1Row {
            engine: "PowerInfer",
            prediction_ops: config.dejavu_predictor_ops_per_block(rank),
            mlp_ops: config.sparse_mlp_macs_per_block(sparsity),
        },
        Table1Row {
            engine: "SparseInfer (proposed)",
            prediction_ops: config.signbit_predictor_ops_per_block(),
            mlp_ops: config.sparse_mlp_macs_per_block(sparsity),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = OpCounter {
            macs: 1,
            xor_popc: 2,
            ..Default::default()
        };
        let b = OpCounter {
            macs: 10,
            atomic_adds: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.macs, 11);
        assert_eq!(a.xor_popc, 2);
        assert_eq!(a.atomic_adds, 5);
    }

    #[test]
    fn skip_fraction_handles_zero() {
        assert_eq!(OpCounter::default().skip_fraction(), 0.0);
        let c = OpCounter {
            rows_skipped: 9,
            rows_computed: 1,
            ..Default::default()
        };
        assert!((c.skip_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn table1_matches_paper_13b() {
        let rows = table1(&ModelConfig::prosparse_13b_paper(), 0.92, 1024);
        // llama.cpp dense: 2.123e8.
        assert_eq!(rows[0].mlp_ops, 212_336_640);
        // PowerInfer prediction: 1.940e7.
        assert_eq!(rows[1].prediction_ops, 19_398_656);
        // Both sparse engines: 1.699e7 MLP ops.
        assert_eq!(rows[1].mlp_ops, rows[2].mlp_ops);
        assert!((rows[1].mlp_ops as f64 - 1.699e7).abs() / 1.699e7 < 0.01);
        // SparseInfer prediction: 2.211e6, an order of magnitude below
        // PowerInfer's.
        assert_eq!(rows[2].prediction_ops, 2_211_840);
        assert!(rows[1].prediction_ops / rows[2].prediction_ops >= 8);
    }

    #[test]
    fn powerinfer_prediction_exceeds_its_own_mlp_ops() {
        // The paper's observation: the trained predictor costs more than the
        // sparse MLP itself.
        let rows = table1(&ModelConfig::prosparse_13b_paper(), 0.92, 1024);
        assert!(rows[1].prediction_ops > rows[1].mlp_ops);
    }
}
