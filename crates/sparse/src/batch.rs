//! Batched multi-session decoding: one scheduler, many concurrent requests.
//!
//! A [`Batch`] owns a set of (engine, request) pairs — dense and sparse
//! engines mix freely because everything is `Box<dyn Engine>` — and
//! advances them in round-robin order, one model step per request per
//! [`tick`](Batch::tick). Every request keeps its own
//! [`DecodeSession`](sparseinfer_model::model::DecodeSession), sampler
//! stream and op counters, so interleaving changes *scheduling* only: the
//! tokens of each request are bit-identical to running it alone (proven by
//! the workspace integration tests).
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer_predictor::AlphaSchedule;
//! use sparseinfer_sparse::batch::Batch;
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::GenerateRequest;
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 3).build();
//! let mut batch = Batch::new();
//! for (i, prompt) in [[1u32, 2], [3, 4], [5, 6]].iter().enumerate() {
//!     let engine = if i % 2 == 0 {
//!         EngineBuilder::new(&model).build().unwrap()
//!     } else {
//!         EngineBuilder::new(&model).signbit(AlphaSchedule::uniform(1.0)).build().unwrap()
//!     };
//!     batch.push(engine, &GenerateRequest::new(prompt).max_new(4)).unwrap();
//! }
//! let outputs = batch.run();
//! assert_eq!(outputs.len(), 3);
//! assert!(outputs.iter().all(|o| o.tokens.len() == 4));
//! ```

use sparseinfer_tensor::{ParallelOptions, ThreadPool};

use crate::engine::{Engine, MemoryEstimate, SparsityStats};
use crate::error::EngineError;
use crate::ops::OpCounter;
use crate::request::{FinishReason, GenerateRequest, RequestRun, TokenEvent};

/// A token emitted by one request inside a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// The request id returned by [`Batch::push`].
    pub request: usize,
    /// Zero-based position in that request's continuation.
    pub index: usize,
    /// The token id.
    pub token: u32,
}

/// The finished result of one batched request, with per-request accounting.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// The request id returned by [`Batch::push`].
    pub id: usize,
    /// The generated tokens.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Operations this request executed (prefill through the bare model is
    /// not counted, matching the single-request path).
    pub ops: OpCounter,
    /// Sparsity statistics, for sparse engines.
    pub stats: Option<SparsityStats>,
    /// The engine configuration name that served the request.
    pub engine: String,
}

struct Slot<'m> {
    id: usize,
    state: SlotState<'m>,
    /// Event produced by the most recent tick (drained in slot order so
    /// streaming callbacks see a deterministic sequence even when slots
    /// advance on worker threads).
    last_event: Option<TokenEvent>,
}

/// A slot's decode memory lives only while the request does: the moment a
/// run finishes, the slot **retires** — engine scratch (workspace pool,
/// predictor scratch, masks) and the session's KV cache are dropped, and
/// only the finished [`BatchOutput`] stays resident. A batch with N
/// finished and one live request therefore costs what a 1-slot batch costs,
/// within the size of the outputs themselves (asserted by the serving
/// integration tests via [`Batch::memory_estimate`]).
enum SlotState<'m> {
    Live {
        engine: Box<dyn Engine + 'm>,
        run: RequestRun,
    },
    Done(BatchOutput),
}

impl<'m> Slot<'m> {
    /// Converts a finished live run into its output, dropping the engine's
    /// per-session scratch and the run's KV cache.
    fn retire_if_finished(&mut self) {
        let finished = matches!(&self.state, SlotState::Live { run, .. } if run.finished());
        if !finished {
            return;
        }
        // Two-step replace: the placeholder is overwritten before anyone
        // can observe it.
        let state = std::mem::replace(
            &mut self.state,
            SlotState::Done(BatchOutput {
                id: self.id,
                tokens: Vec::new(),
                finish: FinishReason::MaxTokens,
                ops: OpCounter::default(),
                stats: None,
                engine: String::new(),
            }),
        );
        if let SlotState::Live { engine, run } = state {
            let generation = run.into_generation();
            self.state = SlotState::Done(BatchOutput {
                id: self.id,
                tokens: generation.tokens,
                finish: generation.finish,
                ops: *engine.ops(),
                stats: engine.stats().cloned(),
                engine: engine.name().to_string(),
            });
        }
    }
}

/// A round-robin scheduler over concurrent decode sessions.
///
/// Fairness is strict: each [`tick`](Batch::tick) advances every live
/// request by exactly one model step, so short prompts start decoding while
/// long prompts are still prefilling, and no request starves.
///
/// With [`parallel`](Batch::parallel), each tick advances independent
/// sessions on worker threads (sessions share no mutable state — engines
/// behind shared `Arc` predictors read them concurrently); tokens and
/// callback order are bit-identical to the sequential schedule.
#[derive(Default)]
pub struct Batch<'m> {
    slots: Vec<Slot<'m>>,
    pool: ThreadPool,
}

impl std::fmt::Debug for Batch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch")
            .field("requests", &self.slots.len())
            .field("active", &self.active_requests())
            .finish()
    }
}

impl<'m> Batch<'m> {
    /// An empty batch.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            pool: ThreadPool::single(),
        }
    }

    /// Sets the scheduler's slot-level parallelism: each tick advances up
    /// to `parallel.threads` sessions concurrently. Token streams are
    /// bit-identical to the sequential schedule.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.pool = ThreadPool::new(parallel);
        self
    }

    /// Adds a request served by `engine`, returning its id. The engine's
    /// counters are reset so the eventual [`BatchOutput::ops`] is exactly
    /// this request's work.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the request's prompt is empty.
    pub fn push(
        &mut self,
        mut engine: Box<dyn Engine + 'm>,
        req: &GenerateRequest,
    ) -> Result<usize, EngineError> {
        let run = RequestRun::new(req, engine.as_ref())?;
        engine.reset_ops();
        let id = self.slots.len();
        self.slots.push(Slot {
            id,
            state: SlotState::Live { engine, run },
            last_event: None,
        });
        Ok(id)
    }

    /// Shared-vs-per-session memory of the batch's execution state: shared
    /// predictor bytes are counted **once per distinct predictor**
    /// (deduplicated by `Arc` identity), per-session bytes once per *live*
    /// slot — the measurable form of the O(1)-batch-memory property.
    /// Finished slots have already dropped their engine scratch and KV
    /// cache, so they contribute nothing.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        let mut seen = Vec::new();
        let mut total = MemoryEstimate::default();
        for slot in &self.slots {
            let SlotState::Live { engine, .. } = &slot.state else {
                continue;
            };
            let est = engine.memory_estimate();
            total.per_session_bytes += est.per_session_bytes;
            match engine.shared_state_id() {
                Some(id) if seen.contains(&id) => {}
                Some(id) => {
                    seen.push(id);
                    total.shared_bytes += est.shared_bytes;
                }
                None => total.shared_bytes += est.shared_bytes,
            }
        }
        total
    }

    /// Number of requests in the batch (finished or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of requests still decoding.
    pub fn active_requests(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(&s.state, SlotState::Live { run, .. } if !run.finished()))
            .count()
    }

    /// Advances every live request by one model step — concurrently when
    /// the batch was built with [`parallel`](Batch::parallel) — invoking
    /// `on_token` in slot order for each token emitted this round. Returns
    /// the number of requests still active afterwards.
    ///
    /// A slot whose engine fails mid-decode ([`EngineError`]) finishes with
    /// [`FinishReason::Failed`] and retires like any other; the batch keeps
    /// serving its remaining requests. Slots that finish this tick release
    /// their decode memory (engine scratch, workspace, KV cache)
    /// immediately rather than when the batch is dropped.
    pub fn tick(&mut self, mut on_token: impl FnMut(BatchEvent)) -> usize {
        self.pool.run_tasks(&mut self.slots, |_, slot| {
            if let SlotState::Live { engine, run } = &mut slot.state {
                // An Err has already marked the run finished with a
                // Failed reason; retirement below records it.
                slot.last_event = run.advance(engine.as_mut()).unwrap_or(None);
            }
            slot.retire_if_finished();
        });
        for slot in &mut self.slots {
            if let Some(TokenEvent { index, token }) = slot.last_event.take() {
                on_token(BatchEvent {
                    request: slot.id,
                    index,
                    token,
                });
            }
        }
        self.active_requests()
    }

    /// Runs every request to completion and returns the outputs in push
    /// order.
    pub fn run(self) -> Vec<BatchOutput> {
        self.run_streaming(|_| {})
    }

    /// Runs every request to completion, streaming each token through
    /// `on_token` as it is produced, interleaved across requests.
    pub fn run_streaming(mut self, mut on_token: impl FnMut(BatchEvent)) -> Vec<BatchOutput> {
        while self.tick(&mut on_token) > 0 {}
        self.slots
            .into_iter()
            .map(|mut slot| {
                slot.retire_if_finished();
                match slot.state {
                    SlotState::Done(output) => output,
                    SlotState::Live { .. } => {
                        unreachable!("every run has finished when the tick loop exits")
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Model, ModelConfig};
    use sparseinfer_predictor::AlphaSchedule;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 13).build()
    }

    #[test]
    fn empty_batch_runs_to_nothing() {
        let batch = Batch::new();
        assert!(batch.is_empty());
        assert!(batch.run().is_empty());
    }

    #[test]
    fn push_rejects_empty_prompts() {
        let m = model();
        let mut batch = Batch::new();
        let engine = EngineBuilder::new(&m).build().unwrap();
        let err = batch.push(engine, &GenerateRequest::new(&[])).unwrap_err();
        assert_eq!(err, EngineError::EmptyPrompt);
        assert!(batch.is_empty());
    }

    #[test]
    fn outputs_keep_push_order_and_ids() {
        let m = model();
        let mut batch = Batch::new();
        for p in [[1u32, 2], [9, 8], [4, 4]] {
            let e = EngineBuilder::new(&m).build().unwrap();
            batch.push(e, &GenerateRequest::new(&p).max_new(3)).unwrap();
        }
        let out = batch.run();
        assert_eq!(out.iter().map(|o| o.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn per_request_ops_are_isolated() {
        let m = model();
        let mut batch = Batch::new();
        for max_new in [2usize, 8] {
            let e = EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            batch
                .push(e, &GenerateRequest::new(&[1, 2]).max_new(max_new))
                .unwrap();
        }
        let out = batch.run();
        assert!(
            out[1].ops.macs > out[0].ops.macs,
            "8-token request must cost more than the 2-token one"
        );
        assert_eq!(out[0].stats.as_ref().unwrap().tokens(), 2);
        assert_eq!(out[1].stats.as_ref().unwrap().tokens(), 8);
    }

    #[test]
    fn streaming_interleaves_requests() {
        let m = model();
        let mut batch = Batch::new();
        for p in [[1u32, 2], [3, 4]] {
            let e = EngineBuilder::new(&m).build().unwrap();
            batch.push(e, &GenerateRequest::new(&p).max_new(3)).unwrap();
        }
        let mut order = Vec::new();
        let _ = batch.run_streaming(|ev| order.push(ev.request));
        // Equal-length prompts: tokens alternate 0,1,0,1,0,1.
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn finished_slots_release_their_decode_memory() {
        fn build<'m>(m: &'m Model, max_new: usize, batch: &mut Batch<'m>) {
            let e = EngineBuilder::new(m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            batch
                .push(e, &GenerateRequest::new(&[1, 2]).max_new(max_new))
                .unwrap();
        }
        let m = model();
        // Seven requests that finish quickly + one that keeps decoding.
        let mut batch = Batch::new();
        for _ in 0..7 {
            build(&m, 2, &mut batch);
        }
        build(&m, 24, &mut batch);
        let full = batch.memory_estimate().total();
        while batch.active_requests() > 1 {
            batch.tick(|_| {});
        }
        let drained = batch.memory_estimate().total();

        // A fresh 1-slot batch over the same engine kind, advanced the same
        // number of steps, is the floor the drained batch must be near.
        let mut solo = Batch::new();
        build(&m, 24, &mut solo);
        for _ in 0..(2 + 2 + 2) {
            solo.tick(|_| {});
        }
        let solo_total = solo.memory_estimate().total();
        assert!(
            drained <= solo_total + solo_total / 4 + 1024,
            "7 finished + 1 live ({drained} B) must be within a small \
             constant of a 1-slot batch ({solo_total} B)"
        );
        assert!(
            full > drained,
            "retiring slots must shrink the estimate ({full} -> {drained})"
        );
        // The retired outputs are still delivered.
        let out = batch.run();
        assert_eq!(out.len(), 8);
        assert!(out.iter().take(7).all(|o| o.tokens.len() == 2));
    }

    /// An engine that never produces logits: the first decode step fails.
    #[derive(Debug)]
    struct BrokenEngine<'m> {
        model: &'m sparseinfer_model::Model,
        ops: OpCounter,
    }

    impl Engine for BrokenEngine<'_> {
        fn model(&self) -> &sparseinfer_model::Model {
            self.model
        }

        fn step_into(
            &mut self,
            _token: u32,
            session: &mut sparseinfer_model::model::DecodeSession,
            logits: &mut sparseinfer_tensor::Vector,
        ) {
            session.position += 1;
            *logits = sparseinfer_tensor::Vector::zeros(0);
        }

        fn ops(&self) -> &OpCounter {
            &self.ops
        }

        fn reset_ops(&mut self) {}

        fn name(&self) -> &str {
            "broken"
        }
    }

    #[test]
    fn failed_slot_retires_without_poisoning_the_batch() {
        let m = model();
        let mut batch = Batch::new();
        let healthy = EngineBuilder::new(&m).build().unwrap();
        batch
            .push(healthy, &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let broken = Box::new(BrokenEngine {
            model: &m,
            ops: OpCounter::default(),
        });
        batch
            .push(broken, &GenerateRequest::new(&[5]).max_new(3))
            .unwrap();
        let out = batch.run();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tokens.len(), 3, "healthy request completes");
        assert_eq!(out[0].finish, FinishReason::MaxTokens);
        assert_eq!(
            out[1].finish,
            FinishReason::Failed(EngineError::EmptyVocab),
            "broken request fails as data, not a panic"
        );
        assert!(out[1].tokens.is_empty());
    }

    #[test]
    fn mixed_engine_kinds_share_one_scheduler() {
        let m = model();
        let mut batch = Batch::new();
        let dense = EngineBuilder::new(&m).build().unwrap();
        let sparse = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        batch
            .push(dense, &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        batch
            .push(sparse, &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        let out = batch.run();
        assert_eq!(out[0].engine, "dense");
        assert_eq!(out[1].engine, "sparse:sparseinfer");
        assert!(out[0].stats.is_none());
        assert!(out[1].stats.is_some());
    }
}
