//! Closed-batch decoding: the offline-evaluation face of the
//! [`Scheduler`].
//!
//! A [`Batch`] is a thin wrapper over a pre-loaded continuous-batching
//! scheduler with admission limits disabled
//! ([`SchedulerConfig::unbounded`]): every pushed request is admitted on
//! the first tick and advances round-robin, one model step per request per
//! [`tick`](Batch::tick) — exactly the closed push-everything-then-`run()`
//! model the evaluation harness and the paper experiments want. Everything
//! load-bearing — slot advancement, retirement, paged KV reclamation,
//! per-request accounting, deterministic event order — lives in the
//! scheduler; this wrapper only pins the closed-world configuration and
//! the push-order output contract. Serving paths that need mid-run
//! admission, capacity control or cancellation use the scheduler directly.
//!
//! Every request keeps its own
//! [`DecodeSession`](sparseinfer_model::model::DecodeSession), sampler
//! stream and op counters, so interleaving changes *scheduling* only: the
//! tokens of each request are bit-identical to running it alone (proven by
//! the workspace integration tests).
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{generator::WeightGenerator, ModelConfig};
//! use sparseinfer_predictor::AlphaSchedule;
//! use sparseinfer_sparse::batch::Batch;
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::GenerateRequest;
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 3).build();
//! let mut batch = Batch::new();
//! for (i, prompt) in [[1u32, 2], [3, 4], [5, 6]].iter().enumerate() {
//!     let engine = if i % 2 == 0 {
//!         EngineBuilder::new(&model).build().unwrap()
//!     } else {
//!         EngineBuilder::new(&model).signbit(AlphaSchedule::uniform(1.0)).build().unwrap()
//!     };
//!     batch.push(engine, &GenerateRequest::new(prompt).max_new(4)).unwrap();
//! }
//! let outputs = batch.run();
//! assert_eq!(outputs.len(), 3);
//! assert!(outputs.iter().all(|o| o.tokens.len() == 4));
//! ```

use sparseinfer_tensor::ParallelOptions;

use crate::engine::{Engine, MemoryEstimate};
use crate::error::EngineError;
use crate::request::GenerateRequest;
use crate::scheduler::{Scheduler, SchedulerConfig};

pub use crate::scheduler::{BatchEvent, BatchOutput};

/// A closed round-robin batch over concurrent decode sessions.
///
/// Fairness is strict: each [`tick`](Batch::tick) advances every live
/// request by exactly one model step, so short prompts start decoding while
/// long prompts are still prefilling, and no request starves.
///
/// With [`parallel`](Batch::parallel), each tick advances independent
/// sessions on worker threads (sessions share no mutable state — engines
/// behind shared `Arc` predictors read them concurrently); tokens and
/// callback order are bit-identical to the sequential schedule.
pub struct Batch<'m> {
    scheduler: Scheduler<'m>,
}

impl Default for Batch<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Batch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batch")
            .field("requests", &self.len())
            .field("active", &self.active_requests())
            .finish()
    }
}

impl<'m> Batch<'m> {
    /// An empty batch (an unbounded scheduler: no slot cap, no KV budget).
    pub fn new() -> Self {
        Self {
            scheduler: Scheduler::new(SchedulerConfig::unbounded()),
        }
    }

    /// Sets the scheduler's slot-level parallelism: each tick advances up
    /// to `parallel.threads` sessions concurrently. Token streams are
    /// bit-identical to the sequential schedule.
    pub fn parallel(mut self, parallel: ParallelOptions) -> Self {
        self.scheduler = self.scheduler.parallel(parallel);
        self
    }

    /// Adds a request served by `engine`, returning its id. The engine's
    /// counters are reset so the eventual [`BatchOutput::ops`] is exactly
    /// this request's work.
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyPrompt`] if the request's prompt is empty;
    /// [`EngineError::KvDimensionMismatch`] if the engine's model uses a
    /// different KV dimension than earlier pushes — all of a batch's
    /// sessions page out of one shared block pool, so one batch serves
    /// models of one KV width (mixed engine *kinds* over one model, and
    /// distinct models agreeing on `hidden_dim`, mix freely as before).
    pub fn push(
        &mut self,
        engine: Box<dyn Engine + 'm>,
        req: &GenerateRequest,
    ) -> Result<usize, EngineError> {
        self.scheduler.submit(engine, req).map(|handle| handle.id())
    }

    /// Shared-vs-per-session memory of the batch's execution state: shared
    /// predictor bytes are counted **once per distinct predictor**
    /// (deduplicated by `Arc` identity), per-session bytes — engine
    /// scratch plus the KV blocks live sessions hold — once per unfinished
    /// request. Finished requests have already dropped their engine
    /// scratch and returned their KV blocks, so they contribute nothing.
    pub fn memory_estimate(&self) -> MemoryEstimate {
        self.scheduler.memory_estimate()
    }

    /// Number of requests in the batch (finished or not).
    pub fn len(&self) -> usize {
        self.scheduler.submitted()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of requests still decoding (or awaiting their first tick).
    pub fn active_requests(&self) -> usize {
        self.scheduler.unfinished_requests()
    }

    /// Advances every live request by one model step — concurrently when
    /// the batch was built with [`parallel`](Batch::parallel) — invoking
    /// `on_token` in slot order for each token emitted this round. Returns
    /// the number of requests still active afterwards.
    ///
    /// A slot whose engine fails mid-decode ([`EngineError`]) finishes with
    /// [`crate::request::FinishReason::Failed`] and retires like any other;
    /// the batch keeps serving its remaining requests. Slots that finish
    /// this tick release their decode memory (engine scratch, workspace,
    /// KV blocks) immediately rather than when the batch is dropped.
    pub fn tick(&mut self, on_token: impl FnMut(BatchEvent)) -> usize {
        self.scheduler.tick(on_token)
    }

    /// Runs every request to completion and returns the outputs in push
    /// order.
    pub fn run(self) -> Vec<BatchOutput> {
        self.scheduler.run()
    }

    /// Runs every request to completion, streaming each token through
    /// `on_token` as it is produced, interleaved across requests. Outputs
    /// are returned in push order.
    pub fn run_streaming(self, on_token: impl FnMut(BatchEvent)) -> Vec<BatchOutput> {
        self.scheduler.run_streaming(on_token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crate::ops::OpCounter;
    use crate::request::FinishReason;
    use sparseinfer_model::generator::WeightGenerator;
    use sparseinfer_model::{Model, ModelConfig};
    use sparseinfer_predictor::AlphaSchedule;

    fn model() -> Model {
        WeightGenerator::new(&ModelConfig::tiny(), 13).build()
    }

    #[test]
    fn empty_batch_runs_to_nothing() {
        let batch = Batch::new();
        assert!(batch.is_empty());
        assert!(batch.run().is_empty());
    }

    #[test]
    fn push_rejects_empty_prompts() {
        let m = model();
        let mut batch = Batch::new();
        let engine = EngineBuilder::new(&m).build().unwrap();
        let err = batch.push(engine, &GenerateRequest::new(&[])).unwrap_err();
        assert_eq!(err, EngineError::EmptyPrompt);
        assert!(batch.is_empty());
    }

    #[test]
    fn outputs_keep_push_order_and_ids() {
        let m = model();
        let mut batch = Batch::new();
        for p in [[1u32, 2], [9, 8], [4, 4]] {
            let e = EngineBuilder::new(&m).build().unwrap();
            batch.push(e, &GenerateRequest::new(&p).max_new(3)).unwrap();
        }
        let out = batch.run();
        assert_eq!(out.iter().map(|o| o.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn per_request_ops_are_isolated() {
        let m = model();
        let mut batch = Batch::new();
        for max_new in [2usize, 8] {
            let e = EngineBuilder::new(&m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            batch
                .push(e, &GenerateRequest::new(&[1, 2]).max_new(max_new))
                .unwrap();
        }
        let out = batch.run();
        assert!(
            out[1].ops.macs > out[0].ops.macs,
            "8-token request must cost more than the 2-token one"
        );
        assert_eq!(out[0].stats.as_ref().unwrap().tokens(), 2);
        assert_eq!(out[1].stats.as_ref().unwrap().tokens(), 8);
    }

    #[test]
    fn streaming_interleaves_requests() {
        let m = model();
        let mut batch = Batch::new();
        for p in [[1u32, 2], [3, 4]] {
            let e = EngineBuilder::new(&m).build().unwrap();
            batch.push(e, &GenerateRequest::new(&p).max_new(3)).unwrap();
        }
        let mut order = Vec::new();
        let _ = batch.run_streaming(|ev| order.push(ev.request));
        // Equal-length prompts: tokens alternate 0,1,0,1,0,1.
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn finished_slots_release_their_decode_memory() {
        fn build<'m>(m: &'m Model, max_new: usize, batch: &mut Batch<'m>) {
            let e = EngineBuilder::new(m)
                .signbit(AlphaSchedule::uniform(1.0))
                .build()
                .unwrap();
            batch
                .push(e, &GenerateRequest::new(&[1, 2]).max_new(max_new))
                .unwrap();
        }
        let m = model();
        // Seven requests that finish quickly + one that keeps decoding.
        let mut batch = Batch::new();
        for _ in 0..7 {
            build(&m, 2, &mut batch);
        }
        build(&m, 24, &mut batch);
        let full = {
            // Warm every slot first so the estimate sees live buffers.
            batch.tick(|_| {});
            batch.memory_estimate().total()
        };
        while batch.active_requests() > 1 {
            batch.tick(|_| {});
        }
        let drained = batch.memory_estimate().total();

        // A fresh 1-slot batch over the same engine kind, advanced the same
        // number of steps, is the floor the drained batch must be near.
        let mut solo = Batch::new();
        build(&m, 24, &mut solo);
        for _ in 0..(2 + 2 + 2) {
            solo.tick(|_| {});
        }
        let solo_total = solo.memory_estimate().total();
        assert!(
            drained <= solo_total + solo_total / 4 + 1024,
            "7 finished + 1 live ({drained} B) must be within a small \
             constant of a 1-slot batch ({solo_total} B)"
        );
        assert!(
            full > drained,
            "retiring slots must shrink the estimate ({full} -> {drained})"
        );
        // The retired outputs are still delivered.
        let out = batch.run();
        assert_eq!(out.len(), 8);
        assert!(out.iter().take(7).all(|o| o.tokens.len() == 2));
    }

    /// An engine that never produces logits: the first decode step fails.
    #[derive(Debug)]
    struct BrokenEngine<'m> {
        model: &'m sparseinfer_model::Model,
        ops: OpCounter,
    }

    impl Engine for BrokenEngine<'_> {
        fn model(&self) -> &sparseinfer_model::Model {
            self.model
        }

        fn score_block_into(
            &mut self,
            tokens: &[u32],
            session: &mut sparseinfer_model::model::DecodeSession,
            logits: &mut [sparseinfer_tensor::Vector],
        ) {
            assert_eq!(tokens.len(), logits.len(), "one logit vector per token");
            session.position += tokens.len();
            for out in logits {
                *out = sparseinfer_tensor::Vector::zeros(0);
            }
        }

        fn ops(&self) -> &OpCounter {
            &self.ops
        }

        fn reset_ops(&mut self) {}

        fn name(&self) -> &str {
            "broken"
        }
    }

    #[test]
    fn failed_slot_retires_without_poisoning_the_batch() {
        let m = model();
        let mut batch = Batch::new();
        let healthy = EngineBuilder::new(&m).build().unwrap();
        batch
            .push(healthy, &GenerateRequest::new(&[1, 2]).max_new(3))
            .unwrap();
        let broken = Box::new(BrokenEngine {
            model: &m,
            ops: OpCounter::default(),
        });
        batch
            .push(broken, &GenerateRequest::new(&[5]).max_new(3))
            .unwrap();
        let out = batch.run();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].tokens.len(), 3, "healthy request completes");
        assert_eq!(out[0].finish, FinishReason::MaxTokens);
        assert_eq!(
            out[1].finish,
            FinishReason::Failed(EngineError::EmptyVocab),
            "broken request fails as data, not a panic"
        );
        assert!(out[1].tokens.is_empty());
    }

    #[test]
    fn mixed_engine_kinds_share_one_scheduler() {
        let m = model();
        let mut batch = Batch::new();
        let dense = EngineBuilder::new(&m).build().unwrap();
        let sparse = EngineBuilder::new(&m)
            .signbit(AlphaSchedule::uniform(1.0))
            .build()
            .unwrap();
        batch
            .push(dense, &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        batch
            .push(sparse, &GenerateRequest::new(&[1, 2]).max_new(4))
            .unwrap();
        let out = batch.run();
        assert_eq!(out[0].engine, "dense");
        assert_eq!(out[1].engine, "sparse:sparseinfer");
        assert!(out[0].stats.is_none());
        assert!(out[1].stats.is_some());
    }
}
