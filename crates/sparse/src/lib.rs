//! Sparse execution engine: exploiting predicted activation sparsity in the
//! gated MLP (paper §IV, §IV-B3/4).
//!
//! Given a per-token [`SkipMask`](sparseinfer_predictor::SkipMask) from any
//! predictor, this crate executes the four MLP steps while skipping masked
//! rows of `W_gate`, `W_up` and (transposed) `W_down`:
//!
//! * [`gemv`](mod@crate::gemv) — row-skipping GEMV kernels mirroring the CUDA
//!   kernels of §IV-B3/4 (skipped row ⇒ the "warp" returns zero / skips its
//!   `atomicAdd`).
//! * [`mlp`](mod@crate::mlp) — the sparse gated-MLP executor with the paper's two
//!   compensation/optimization switches: **actual sparsity** (union exact
//!   zeros found after step 1 into the mask used by steps 2–4) and **kernel
//!   fusion** (steps 1–3 in one kernel; affects memory traffic, which the
//!   [`ops`](mod@crate::ops) accounting and the GPU cost model track).
//! * [`engine`](mod@crate::engine) — whole-model decoding frontends:
//!   [`DenseEngine`] (the llama.cpp baseline) and
//!   [`SparseEngine`] (SparseInfer when driven
//!   by the sign-bit predictor, PowerInfer-style when driven by the DejaVu
//!   predictor).
//! * [`ops`](mod@crate::ops) — operation and byte accounting that regenerates
//!   Table I.
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{ModelConfig, generator::WeightGenerator};
//! use sparseinfer_predictor::{AlphaSchedule, SignBitPredictor};
//! use sparseinfer_sparse::engine::{EngineOptions, SparseEngine};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 1).build();
//! let predictor = SignBitPredictor::from_model(&model, AlphaSchedule::uniform(1.0));
//! let mut engine = SparseEngine::new(&model, predictor, EngineOptions::sparseinfer());
//! let tokens = engine.generate_greedy(&[1, 2], 4, u32::MAX);
//! assert_eq!(tokens.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cats;
pub mod engine;
pub mod gemv;
pub mod mlp;
pub mod ops;
pub mod quantized;

pub use engine::{DenseEngine, EngineOptions, SparseEngine};
pub use mlp::SparseMlpOutput;
pub use ops::OpCounter;
pub use quantized::QuantizedGatedMlp;
