//! Sparse execution engine: exploiting predicted activation sparsity in the
//! gated MLP (paper §IV, §IV-B3/4), fronted by a unified serving-grade
//! engine API.
//!
//! Given a per-token [`SkipMask`](sparseinfer_predictor::SkipMask) from any
//! predictor, this crate executes the four MLP steps while skipping masked
//! rows of `W_gate`, `W_up` and (transposed) `W_down`:
//!
//! * [`gemv`](mod@crate::gemv) — row-skipping GEMV kernels mirroring the CUDA
//!   kernels of §IV-B3/4 (skipped row ⇒ the "warp" returns zero / skips its
//!   `atomicAdd`).
//! * [`mlp`](mod@crate::mlp) — the sparse gated-MLP executor with the paper's two
//!   compensation/optimization switches: **actual sparsity** (union exact
//!   zeros found after step 1 into the mask used by steps 2–4) and **kernel
//!   fusion** (steps 1–3 in one kernel; affects memory traffic, which the
//!   [`ops`](mod@crate::ops) accounting and the GPU cost model track).
//! * [`engine`](mod@crate::engine) — the [`Engine`] trait (one object-safe
//!   interface for dense, sign-bit, DejaVu, oracle and random execution)
//!   and the [`EngineBuilder`] that constructs every configuration,
//!   returning [`EngineError`] values instead of panicking.
//! * [`request`](mod@crate::request) — [`GenerateRequest`]s, seeded
//!   [`Sampler`](sparseinfer_model::Sampler) policies, streaming per-token
//!   callbacks.
//! * [`scheduler`](mod@crate::scheduler) — **the serving entry point**: a
//!   continuous-batching [`Scheduler`] over a paged KV cache
//!   ([`KvBlockPool`](sparseinfer_model::kv::KvBlockPool)). Requests
//!   [`submit`](Scheduler::submit) at any time (including mid-run), are
//!   admitted FIFO under `max_slots` and a KV-block budget, can be
//!   cancelled through a [`RequestHandle`], and release their KV blocks
//!   the moment they finish. Requests sharing a prompt prefix share its
//!   KV blocks (copy-on-write, refcounted) through a
//!   [`PrefixIndex`](sparseinfer_model::kv::PrefixIndex), skipping the
//!   shared prefill work — bit-identically to cold decode.
//! * [`batch`](mod@crate::batch) — the closed round-robin [`Batch`]
//!   wrapper over a pre-loaded, unbounded scheduler, for offline
//!   evaluation workloads.
//! * [`ops`](mod@crate::ops) — operation and byte accounting that regenerates
//!   Table I.
//!
//! # Example
//!
//! ```
//! use sparseinfer_model::{ModelConfig, generator::WeightGenerator};
//! use sparseinfer_predictor::AlphaSchedule;
//! use sparseinfer_sparse::engine::EngineBuilder;
//! use sparseinfer_sparse::request::{generate, GenerateRequest};
//!
//! let model = WeightGenerator::new(&ModelConfig::tiny(), 1).build();
//! let mut engine = EngineBuilder::new(&model)
//!     .signbit(AlphaSchedule::uniform(1.0))
//!     .build()
//!     .unwrap();
//! let gen = generate(engine.as_mut(), &GenerateRequest::new(&[1, 2]).max_new(4)).unwrap();
//! assert_eq!(gen.tokens.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cats;
pub mod engine;
pub mod error;
pub mod gemv;
pub mod mlp;
pub mod ops;
pub mod quantized;
pub mod request;
pub mod scheduler;

pub use batch::Batch;
pub use engine::{
    DenseEngine, Engine, EngineBuilder, EngineOptions, MemoryEstimate, QuantizedWeights,
    SparseEngine, SparsityStats, SpeculativeEngine, SpeculativeStats, StepBlock, WeightFormat,
};
pub use error::EngineError;
pub use mlp::SparseMlpOutput;
pub use ops::OpCounter;
pub use quantized::{FusedQuantizedMlp, QuantizedGatedMlp};
pub use request::{FinishReason, GenerateRequest, Generation, TokenEvent};
pub use scheduler::{
    BatchEvent, BatchOutput, PrefixCacheStats, RequestHandle, Scheduler, SchedulerConfig,
};
